"""Cache-aware, thread-safe query serving on top of :class:`MVQueryEngine`.

A :class:`QuerySession` wraps an engine (freshly built, or cold-started from
a saved artifact via :mod:`repro.serving.artifact`) with the machinery a
long-lived serving process needs:

* an **LRU result cache** and an **LRU lineage cache**, both keyed on
  canonicalized UCQs (:mod:`repro.serving.canonical`), so repeated queries —
  even re-phrased ones — skip the relational round trip and the index
  intersection entirely;
* **prepared queries** (:class:`PreparedQuery`): the relational round trip
  happens once at prepare time, after which the handle can be executed under
  any evaluation method;
* a **batch API** (:meth:`QuerySession.query_batch`) that deduplicates the
  conjunctive disjuncts of all queries in the batch and evaluates each
  distinct one exactly once — a single relational evaluation pass shared by
  the whole batch — before intersecting every lineage against the MV-index;
* **thread safety**: all public methods may be called from concurrent
  threads; an optional worker pool parallelises the per-query intersection
  stage of a batch.

Counters for all of this live in :class:`SessionStatistics`, which the
experiment harness uses to report cold-versus-warm serving behaviour.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from repro.core.engine import MVQueryEngine
from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.mvindex.cc_intersect import prewarm_flat_encodings
from repro.mvindex.intersect import IntersectStatistics
from repro.mvindex.summaries import SkipAnalysis
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import QueryResult as RelationalResult
from repro.query.evaluator import evaluate_cq
from repro.query.ucq import UCQ, as_ucq
from repro.results import Answer, QueryResult
from repro.serving.canonical import canonical_cq_key, canonical_key

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.methods import InferenceMethod

#: Default capacity of the result and lineage LRU caches.
DEFAULT_CACHE_SIZE = 256


@dataclass
class SessionStatistics:
    """Counters describing the work a session performed."""

    #: Queries answered straight from the result cache.
    result_hits: int = 0
    #: Queries whose probabilities had to be computed.
    result_misses: int = 0
    #: Lineage look-ups served from the lineage cache.
    lineage_hits: int = 0
    #: Lineage look-ups that required relational evaluation.
    lineage_misses: int = 0
    #: Relational evaluation passes over the data (one per uncached single
    #: query; exactly one per batch regardless of the batch size).
    relational_passes: int = 0
    #: Distinct conjunctive disjuncts evaluated inside those passes.
    evaluated_disjuncts: int = 0
    #: Calls to :meth:`QuerySession.query_batch`.
    batches: int = 0
    #: In-batch duplicate queries resolved by sharing the batch's own
    #: computation (not served from the result cache).
    deduplicated: int = 0
    #: Entries dropped from either LRU cache.
    evictions: int = 0
    #: Skip analyses run against the component summaries (one per uncached
    #: single query; exactly one per batch with uncached queries).
    skip_analyses: int = 0
    #: Components those analyses proved irrelevant (summed over analyses).
    skipped_components: int = 0
    #: Components those analyses could not rule out (summed over analyses).
    relevant_components: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dictionary (for reports and tests)."""
        return dict(vars(self))


class _LruCache:
    """A small LRU map.  Not thread-safe: callers hold the session lock."""

    def __init__(self, capacity: int, statistics: SessionStatistics) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._statistics = statistics

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._statistics.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class _Computed:
    """A cache entry: typed answers plus the aggregate work counters."""

    answers: tuple[Answer, ...]
    obdd_nodes: int = 0
    steps: int = 0
    touched_components: int = 0
    skipped_components: int = 0
    skip_analysis_ms: float = 0.0


@dataclass
class PreparedQuery:
    """A handle to a query whose relational round trip has been paid.

    Obtained from :meth:`QuerySession.prepare`.  The handle pins the query's
    canonical key and its per-answer lineages; :meth:`execute` then only
    performs (cached) probability computation, under any evaluation method.
    """

    session: "QuerySession"
    ucq: UCQ
    key: str
    lineages: dict[tuple[Any, ...], DNF] = field(repr=False, default_factory=dict)

    def execute(self, method: str = "mvindex") -> QueryResult:
        """Typed answers for the prepared query (result-cached)."""
        return self.session._run_prepared(self, method)

    def run(self, method: str = "mvindex") -> dict[tuple[Any, ...], float]:
        """Answer probabilities as the legacy ``{answer: probability}`` map."""
        return self.execute(method).to_dict()

    def boolean_probability(self, method: str = "mvindex") -> float:
        """``P(Q)`` for a prepared Boolean query (0.0 without derivations)."""
        if not self.ucq.is_boolean:
            raise InferenceError(
                f"boolean_probability requires a Boolean query, but {self.ucq.name!r} "
                f"has free head variables {tuple(v.name for v in self.ucq.head)}"
            )
        return self.execute(method).probability(())


class QuerySession:
    """A thread-safe, cache-aware serving session over one engine.

    Parameters
    ----------
    engine:
        The query engine to serve from.  Typically restored from an artifact
        (:func:`repro.serving.artifact.load_engine`) in a serving process.
    cache_size:
        Capacity of each LRU cache (results and lineages).
    """

    def __init__(self, engine: MVQueryEngine, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.engine = engine
        self.statistics = SessionStatistics()
        self._lock = threading.RLock()
        self._results = _LruCache(cache_size, self.statistics)
        self._lineages = _LruCache(cache_size, self.statistics)
        self._warmed = False
        #: Monotonic invalidation epoch.  Bumped by :meth:`invalidate`; every
        #: cache write is guarded by it, so a computation that started before
        #: an engine mutation can never re-pollute the fresh caches with a
        #: probability from the old view set.  Served to clients (e.g. the
        #: HTTP dispatcher) so layered caches can share the invalidation path.
        self.generation = 0

    # ----------------------------------------------------------------- warmup
    def warm(self) -> None:
        """Precompute everything lazy so concurrent queries only read.

        Computes ``P0(W)`` and the flat (cache-conscious) encoding of every
        index component.  Called automatically before a parallel batch; safe
        to call any number of times.
        """
        with self._lock:
            if self._warmed:
                return
            self.engine.p0_w()
            if self.engine.mv_index is not None:
                prewarm_flat_encodings(self.engine.mv_index)
            self._warmed = True

    # ---------------------------------------------------------------- queries
    def execute(self, query: UCQ | ConjunctiveQuery, method: str = "mvindex") -> QueryResult:
        """Typed answers of ``query`` (cached, thread-safe).

        The session lock only guards the caches and statistics; relational
        evaluation and probability inference run outside it, so concurrent
        cached queries are never serialized behind a cold one.  Concurrent
        misses on the same query may duplicate work; both compute identical
        values.
        """
        start = time.perf_counter()
        ucq = as_ucq(query)
        resolved = self.engine.resolve_method(method)
        self.engine.validate_query(ucq)
        key = canonical_key(ucq)
        with self._lock:
            generation = self.generation
            cached = self._results.get((key, resolved.name))
            if cached is not None:
                self.statistics.result_hits += 1
                return self._typed_result(cached, resolved, cached_hit=True, start=start)
            self.statistics.result_misses += 1
        lineages = self._lineages_for(key, ucq)
        self.warm()
        skip = self._skip_for([ucq], resolved)
        computed = self._typed_probabilities(lineages, resolved, skip=skip)
        with self._lock:
            if self.generation == generation:
                self._results.put((key, resolved.name), computed)
        return self._typed_result(computed, resolved, cached_hit=False, start=start)

    def query(
        self, query: UCQ | ConjunctiveQuery, method: str = "mvindex"
    ) -> dict[tuple[Any, ...], float]:
        """Like :meth:`execute`, as the legacy ``{answer: probability}`` map."""
        return self.execute(query, method=method).to_dict()

    def boolean_probability(self, query: UCQ | ConjunctiveQuery, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations)."""
        ucq = as_ucq(query)
        if not ucq.is_boolean:
            raise InferenceError(
                f"boolean_probability requires a Boolean query, but {ucq.name!r} has "
                f"free head variables {tuple(v.name for v in ucq.head)}"
            )
        return self.execute(ucq, method=method).probability(())

    def prepare(self, query: UCQ | ConjunctiveQuery) -> PreparedQuery:
        """Pay the relational round trip now; return a reusable handle."""
        ucq = as_ucq(query)
        self.engine.validate_query(ucq)
        key = canonical_key(ucq)
        lineages = self._lineages_for(key, ucq)
        return PreparedQuery(session=self, ucq=ucq, key=key, lineages=lineages)

    def answer_lineages(self, query: UCQ | ConjunctiveQuery) -> dict[tuple[Any, ...], DNF]:
        """Per-answer lineage DNFs of ``query``, via the lineage cache.

        Used by the subscription evaluator to record which variables a
        standing query's answers depend on (its component signature).  After
        an :meth:`execute_batch` that included the query this is a cache
        hit; a miss pays one single-query relational pass.
        """
        ucq = as_ucq(query)
        self.engine.validate_query(ucq)
        return self._lineages_for(canonical_key(ucq), ucq)

    def execute_batch(
        self,
        queries: Sequence[UCQ | ConjunctiveQuery],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer many queries with one shared relational evaluation pass.

        All uncached queries in the batch contribute their conjunctive
        disjuncts to a single pool; each *distinct* disjunct (after
        canonicalization) is evaluated exactly once against the data, and the
        per-query lineages are assembled from the shared results.  The
        subsequent index-intersection stage runs sequentially, or on a thread
        pool when ``workers`` is given (the session is warmed first, making
        the MV-index strictly read-only, so the intersections are
        independent; with the GIL this mainly overlaps work, but the
        structure is ready for free-threaded interpreters).  The heavy
        computation happens outside the session lock, so concurrent cached
        queries are not serialized behind a cold batch.

        Returns one :class:`~repro.results.QueryResult` per input query, in
        input order.  A result computed in this batch reports the time its
        own probability stage took as ``wall_time`` and ``cached=False``;
        in-batch duplicates share the computing occurrence's result (and
        its wall time — do not sum ``wall_time`` across a batch with
        duplicates); result-cache hits report ``cached=True`` and 0.0.
        """
        ucqs = [as_ucq(query) for query in queries]
        resolved_method = self.engine.resolve_method(method)
        for ucq in ucqs:
            self.engine.validate_query(ucq)
        keys = [canonical_key(ucq) for ucq in ucqs]
        # The expensive work below runs OUTSIDE the session lock so that a
        # long cold batch does not serialize concurrent cached queries; the
        # engine/index are strictly read-only after warm().  The lock only
        # guards cache reads/writes and statistics.  Two concurrent cold
        # batches may duplicate some work; both compute identical values.
        self.warm()
        with self._lock:
            generation = self.generation
            self.statistics.batches += 1
            # Answers are accumulated locally so the batch stays correct even
            # when it holds more distinct queries than the LRU caches do.
            resolved: dict[str, tuple[_Computed, bool, float]] = {}
            pending: "OrderedDict[str, UCQ]" = OrderedDict()
            for key, ucq in zip(keys, ucqs):
                if key in pending:
                    self.statistics.deduplicated += 1
                    continue
                if key in resolved:
                    self.statistics.result_hits += 1
                    continue
                cached = self._results.get((key, resolved_method.name))
                if cached is not None:
                    self.statistics.result_hits += 1
                    resolved[key] = (cached, True, 0.0)
                else:
                    self.statistics.result_misses += 1
                    pending[key] = ucq
            lineage_map: dict[str, dict[tuple[Any, ...], DNF]] = {}
            missing_lineages: "OrderedDict[str, UCQ]" = OrderedDict()
            for key, ucq in pending.items():
                cached_lineages = self._lineages.get(key)
                if cached_lineages is not None:
                    self.statistics.lineage_hits += 1
                    lineage_map[key] = cached_lineages
                else:
                    missing_lineages[key] = ucq
        if missing_lineages:
            fresh, distinct = self._evaluate_shared(missing_lineages)
            lineage_map.update(fresh)
            with self._lock:
                self.statistics.lineage_misses += len(missing_lineages)
                self.statistics.relational_passes += 1
                self.statistics.evaluated_disjuncts += distinct
                if self.generation == generation:
                    for key, lineages in fresh.items():
                        self._lineages.put(key, lineages)
        items = [(key, lineage_map[key]) for key in pending]
        # One skip analysis shared by every query in the batch: the union of
        # the batch's atoms only widens the relevant set, so the shared
        # analysis is sound for each member while costing a single pass.
        skip = self._skip_for(list(pending.values()), resolved_method) if pending else None

        def timed(lineages: dict[tuple[Any, ...], DNF]) -> tuple[_Computed, float]:
            stage_start = time.perf_counter()
            computed = self._typed_probabilities(lineages, resolved_method, skip=skip)
            return computed, time.perf_counter() - stage_start

        if workers is not None and workers > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                computed_all = list(pool.map(lambda item: timed(item[1]), items))
        else:
            computed_all = [timed(lineages) for __, lineages in items]
        with self._lock:
            for (key, __), (computed, seconds) in zip(items, computed_all):
                if self.generation == generation:
                    self._results.put((key, resolved_method.name), computed)
                resolved[key] = (computed, False, seconds)
        return [
            self._typed_result(
                resolved[key][0],
                resolved_method,
                cached_hit=resolved[key][1],
                wall_time=resolved[key][2],
            )
            for key in keys
        ]

    def query_batch(
        self,
        queries: Sequence[UCQ | ConjunctiveQuery],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[dict[tuple[Any, ...], float]]:
        """Like :meth:`execute_batch`, as legacy ``{answer: probability}`` maps."""
        return [
            result.to_dict()
            for result in self.execute_batch(queries, method=method, workers=workers)
        ]

    # -------------------------------------------------------------- internals
    def _lineages_for(self, key: str, ucq: UCQ) -> dict[tuple[Any, ...], DNF]:
        """Per-answer lineages of one query, via the lineage cache.

        Takes the session lock only around cache/statistics access; the
        relational evaluation itself runs unlocked.
        """
        with self._lock:
            generation = self.generation
            cached = self._lineages.get(key)
            if cached is not None:
                self.statistics.lineage_hits += 1
                return cached
        fresh, distinct = self._evaluate_shared({key: ucq})
        with self._lock:
            self.statistics.lineage_misses += 1
            self.statistics.relational_passes += 1
            self.statistics.evaluated_disjuncts += distinct
            if self.generation == generation:
                self._lineages.put(key, fresh[key])
        return fresh[key]

    def _evaluate_shared(
        self, pending: "dict[str, UCQ] | OrderedDict[str, UCQ]"
    ) -> tuple[dict[str, dict[tuple[Any, ...], DNF]], int]:
        """One relational evaluation pass shared by all queries in ``pending``.

        Every distinct conjunctive disjunct across the pending queries is
        evaluated exactly once; per-query lineages are then assembled by
        merging the shared per-disjunct results.  Pure computation — no cache
        or statistics access, so it may run outside the session lock.
        Returns the per-key lineage maps and the number of distinct disjuncts
        evaluated.
        """
        engine = self.engine
        distinct: "OrderedDict[str, ConjunctiveQuery]" = OrderedDict()
        memberships: dict[str, list[str]] = {}
        for key, ucq in pending.items():
            disjunct_keys = []
            for cq in ucq.disjuncts:
                cq_key = canonical_cq_key(cq)
                distinct.setdefault(cq_key, cq)
                disjunct_keys.append(cq_key)
            memberships[key] = disjunct_keys
        evaluated = {
            cq_key: evaluate_cq(cq, engine.indb.database, engine.indb)
            for cq_key, cq in distinct.items()
        }
        assembled: dict[str, dict[tuple[Any, ...], DNF]] = {}
        for key, ucq in pending.items():
            result = RelationalResult(ucq.head)
            for cq_key in memberships[key]:
                result.merge(evaluated[cq_key])
            assembled[key] = result.lineages()
        return assembled, len(distinct)

    def _skip_for(
        self, ucqs: "list[UCQ]", method: "InferenceMethod"
    ) -> "SkipAnalysis | None":
        """One skip analysis for ``ucqs`` (None when not applicable).

        Skipping applies only when the method opts in and the engine carries
        summaries; statistics are updated under the session lock.
        """
        if not method.supports_skip:
            return None
        skip = self.engine.skip_analysis(ucqs)
        if skip is None:
            return None
        with self._lock:
            self.statistics.skip_analyses += 1
            self.statistics.skipped_components += skip.skipped_count
            self.statistics.relevant_components += skip.relevant_count
        return skip

    def _typed_probabilities(
        self,
        lineages: dict[tuple[Any, ...], DNF],
        method: "InferenceMethod",
        skip: "SkipAnalysis | None" = None,
    ) -> _Computed:
        """Intersect every answer lineage against the index, keeping counters."""
        engine = self.engine
        answers: list[Answer] = []
        obdd_nodes = steps = touched = 0
        for values, lineage in lineages.items():
            statistics = IntersectStatistics()
            if skip is not None:
                probability = method.probability(engine, lineage, statistics, skip=skip)
            else:
                probability = method.probability(engine, lineage, statistics)
            answers.append(
                Answer(
                    values=values,
                    probability=probability,
                    lineage_size=0 if lineage.is_false else len(lineage),
                )
            )
            obdd_nodes += statistics.query_obdd_nodes
            steps += statistics.pair_expansions
            touched += statistics.touched_components
        return _Computed(
            answers=tuple(answers),
            obdd_nodes=obdd_nodes,
            steps=steps,
            touched_components=touched,
            skipped_components=0 if skip is None else skip.skipped_count,
            skip_analysis_ms=0.0 if skip is None else skip.elapsed_ms,
        )

    def _typed_result(
        self,
        computed: _Computed,
        method: "InferenceMethod",
        cached_hit: bool,
        start: float | None = None,
        wall_time: float | None = None,
    ) -> QueryResult:
        if wall_time is None:
            wall_time = 0.0 if start is None else time.perf_counter() - start
        return QueryResult(
            answers=computed.answers,
            method=method.name,
            exact=method.exact,
            cached=cached_hit,
            wall_time=wall_time,
            obdd_nodes=computed.obdd_nodes,
            steps=computed.steps,
            touched_components=computed.touched_components,
            skipped_components=computed.skipped_components,
            skip_analysis_ms=computed.skip_analysis_ms,
        )

    def _run_prepared(self, prepared: PreparedQuery, method: str) -> QueryResult:
        start = time.perf_counter()
        resolved = self.engine.resolve_method(method)
        with self._lock:
            generation = self.generation
            cached = self._results.get((prepared.key, resolved.name))
            if cached is not None:
                self.statistics.result_hits += 1
                return self._typed_result(cached, resolved, cached_hit=True, start=start)
            self.statistics.result_misses += 1
        self.warm()
        skip = self._skip_for([prepared.ucq], resolved)
        computed = self._typed_probabilities(prepared.lineages, resolved, skip=skip)
        with self._lock:
            if self.generation == generation:
                self._results.put((prepared.key, resolved.name), computed)
        return self._typed_result(computed, resolved, cached_hit=False, start=start)

    # ----------------------------------------------------------- invalidation
    def invalidate(self) -> None:
        """Drop every cached result and lineage (and the warm flag).

        Called by :meth:`repro.ProbDB.extend` (and by the HTTP dispatcher's
        ``/v1/extend`` path) after the underlying engine mutates — cached
        probabilities computed against the old view set would otherwise be
        served for the extended database.  Bumps :attr:`generation`, so a
        concurrent computation that started before the mutation refuses to
        write its (stale) result back into the fresh caches: this is the one
        invalidation path shared by every caching tier above the engine.
        """
        with self._lock:
            self.generation += 1
            self._results = _LruCache(self._results.capacity, self.statistics)
            self._lineages = _LruCache(self._lineages.capacity, self.statistics)
            self._warmed = False

    # ------------------------------------------------------------- inspection
    def cache_info(self) -> dict[str, int]:
        """Sizes of both caches plus every statistics counter."""
        with self._lock:
            info = {
                "result_entries": len(self._results),
                "lineage_entries": len(self._lineages),
                "generation": self.generation,
            }
            info.update(self.statistics.as_dict())
            return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuerySession({self.engine!r}, {len(self._results)} cached results, "
            f"{len(self._lineages)} cached lineages)"
        )
