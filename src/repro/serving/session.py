"""Cache-aware, thread-safe query serving on top of :class:`MVQueryEngine`.

A :class:`QuerySession` wraps an engine (freshly built, or cold-started from
a saved artifact via :mod:`repro.serving.artifact`) with the machinery a
long-lived serving process needs:

* an **LRU result cache** and an **LRU lineage cache**, both keyed on
  canonicalized UCQs (:mod:`repro.serving.canonical`), so repeated queries —
  even re-phrased ones — skip the relational round trip and the index
  intersection entirely;
* **prepared queries** (:class:`PreparedQuery`): the relational round trip
  happens once at prepare time, after which the handle can be executed under
  any evaluation method;
* a **batch API** (:meth:`QuerySession.query_batch`) that deduplicates the
  conjunctive disjuncts of all queries in the batch and evaluates each
  distinct one exactly once — a single relational evaluation pass shared by
  the whole batch — before intersecting every lineage against the MV-index;
* **thread safety**: all public methods may be called from concurrent
  threads; an optional worker pool parallelises the per-query intersection
  stage of a batch.

Counters for all of this live in :class:`SessionStatistics`, which the
experiment harness uses to report cold-versus-warm serving behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from repro.core.engine import MVQueryEngine
from repro.lineage.dnf import DNF
from repro.mvindex.cc_intersect import prewarm_flat_encodings
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import QueryResult, evaluate_cq
from repro.query.ucq import UCQ, as_ucq
from repro.serving.canonical import canonical_cq_key, canonical_key

#: Default capacity of the result and lineage LRU caches.
DEFAULT_CACHE_SIZE = 256


@dataclass
class SessionStatistics:
    """Counters describing the work a session performed."""

    #: Queries answered straight from the result cache.
    result_hits: int = 0
    #: Queries whose probabilities had to be computed.
    result_misses: int = 0
    #: Lineage look-ups served from the lineage cache.
    lineage_hits: int = 0
    #: Lineage look-ups that required relational evaluation.
    lineage_misses: int = 0
    #: Relational evaluation passes over the data (one per uncached single
    #: query; exactly one per batch regardless of the batch size).
    relational_passes: int = 0
    #: Distinct conjunctive disjuncts evaluated inside those passes.
    evaluated_disjuncts: int = 0
    #: Calls to :meth:`QuerySession.query_batch`.
    batches: int = 0
    #: In-batch duplicate queries resolved by sharing the batch's own
    #: computation (not served from the result cache).
    deduplicated: int = 0
    #: Entries dropped from either LRU cache.
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dictionary (for reports and tests)."""
        return dict(vars(self))


class _LruCache:
    """A small LRU map.  Not thread-safe: callers hold the session lock."""

    def __init__(self, capacity: int, statistics: SessionStatistics) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._statistics = statistics

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._statistics.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class PreparedQuery:
    """A handle to a query whose relational round trip has been paid.

    Obtained from :meth:`QuerySession.prepare`.  The handle pins the query's
    canonical key and its per-answer lineages; :meth:`run` then only performs
    (cached) probability computation, under any evaluation method.
    """

    session: "QuerySession"
    ucq: UCQ
    key: str
    lineages: dict[tuple[Any, ...], DNF] = field(repr=False, default_factory=dict)

    def run(self, method: str = "mvindex") -> dict[tuple[Any, ...], float]:
        """Answer probabilities for the prepared query (result-cached)."""
        return self.session._run_prepared(self, method)

    def boolean_probability(self, method: str = "mvindex") -> float:
        """``P(Q)`` for a prepared Boolean query (0.0 without derivations)."""
        return self.run(method).get((), 0.0)


class QuerySession:
    """A thread-safe, cache-aware serving session over one engine.

    Parameters
    ----------
    engine:
        The query engine to serve from.  Typically restored from an artifact
        (:func:`repro.serving.artifact.load_engine`) in a serving process.
    cache_size:
        Capacity of each LRU cache (results and lineages).
    """

    def __init__(self, engine: MVQueryEngine, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.engine = engine
        self.statistics = SessionStatistics()
        self._lock = threading.RLock()
        self._results = _LruCache(cache_size, self.statistics)
        self._lineages = _LruCache(cache_size, self.statistics)
        self._warmed = False

    # ----------------------------------------------------------------- warmup
    def warm(self) -> None:
        """Precompute everything lazy so concurrent queries only read.

        Computes ``P0(W)`` and the flat (cache-conscious) encoding of every
        index component.  Called automatically before a parallel batch; safe
        to call any number of times.
        """
        with self._lock:
            if self._warmed:
                return
            self.engine.p0_w()
            if self.engine.mv_index is not None:
                prewarm_flat_encodings(self.engine.mv_index)
            self._warmed = True

    # ---------------------------------------------------------------- queries
    def query(
        self, query: UCQ | ConjunctiveQuery, method: str = "mvindex"
    ) -> dict[tuple[Any, ...], float]:
        """Probability of every answer of ``query`` (cached, thread-safe).

        The session lock only guards the caches and statistics; relational
        evaluation and probability inference run outside it, so concurrent
        cached queries are never serialized behind a cold one.  Concurrent
        misses on the same query may duplicate work; both compute identical
        values.
        """
        ucq = as_ucq(query)
        self.engine.validate_method(method)
        self.engine.validate_query(ucq)
        key = canonical_key(ucq)
        with self._lock:
            cached = self._results.get((key, method))
            if cached is not None:
                self.statistics.result_hits += 1
                return dict(cached)
            self.statistics.result_misses += 1
        lineages = self._lineages_for(key, ucq)
        self.warm()
        answers = self._probabilities(lineages, method)
        with self._lock:
            self._results.put((key, method), answers)
        return dict(answers)

    def boolean_probability(self, query: UCQ | ConjunctiveQuery, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations)."""
        return self.query(query, method=method).get((), 0.0)

    def prepare(self, query: UCQ | ConjunctiveQuery) -> PreparedQuery:
        """Pay the relational round trip now; return a reusable handle."""
        ucq = as_ucq(query)
        self.engine.validate_query(ucq)
        key = canonical_key(ucq)
        lineages = self._lineages_for(key, ucq)
        return PreparedQuery(session=self, ucq=ucq, key=key, lineages=lineages)

    def query_batch(
        self,
        queries: Sequence[UCQ | ConjunctiveQuery],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[dict[tuple[Any, ...], float]]:
        """Answer many queries with one shared relational evaluation pass.

        All uncached queries in the batch contribute their conjunctive
        disjuncts to a single pool; each *distinct* disjunct (after
        canonicalization) is evaluated exactly once against the data, and the
        per-query lineages are assembled from the shared results.  The
        subsequent index-intersection stage runs sequentially, or on a thread
        pool when ``workers`` is given (the session is warmed first, making
        the MV-index strictly read-only, so the intersections are
        independent; with the GIL this mainly overlaps work, but the
        structure is ready for free-threaded interpreters).  The heavy
        computation happens outside the session lock, so concurrent cached
        queries are not serialized behind a cold batch.

        Returns one ``{answer: probability}`` dictionary per input query, in
        input order.
        """
        ucqs = [as_ucq(query) for query in queries]
        self.engine.validate_method(method)
        for ucq in ucqs:
            self.engine.validate_query(ucq)
        keys = [canonical_key(ucq) for ucq in ucqs]
        # The expensive work below runs OUTSIDE the session lock so that a
        # long cold batch does not serialize concurrent cached queries; the
        # engine/index are strictly read-only after warm().  The lock only
        # guards cache reads/writes and statistics.  Two concurrent cold
        # batches may duplicate some work; both compute identical values.
        self.warm()
        with self._lock:
            self.statistics.batches += 1
            # Answers are accumulated locally so the batch stays correct even
            # when it holds more distinct queries than the LRU caches do.
            resolved: dict[str, dict[tuple[Any, ...], float]] = {}
            pending: "OrderedDict[str, UCQ]" = OrderedDict()
            for key, ucq in zip(keys, ucqs):
                if key in pending:
                    self.statistics.deduplicated += 1
                    continue
                if key in resolved:
                    self.statistics.result_hits += 1
                    continue
                cached = self._results.get((key, method))
                if cached is not None:
                    self.statistics.result_hits += 1
                    resolved[key] = cached
                else:
                    self.statistics.result_misses += 1
                    pending[key] = ucq
            lineage_map: dict[str, dict[tuple[Any, ...], DNF]] = {}
            missing_lineages: "OrderedDict[str, UCQ]" = OrderedDict()
            for key, ucq in pending.items():
                cached_lineages = self._lineages.get(key)
                if cached_lineages is not None:
                    self.statistics.lineage_hits += 1
                    lineage_map[key] = cached_lineages
                else:
                    missing_lineages[key] = ucq
        if missing_lineages:
            fresh, distinct = self._evaluate_shared(missing_lineages)
            lineage_map.update(fresh)
            with self._lock:
                self.statistics.lineage_misses += len(missing_lineages)
                self.statistics.relational_passes += 1
                self.statistics.evaluated_disjuncts += distinct
                for key, lineages in fresh.items():
                    self._lineages.put(key, lineages)
        items = [(key, lineage_map[key]) for key in pending]
        if workers is not None and workers > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                computed = list(
                    pool.map(lambda item: self._probabilities(item[1], method), items)
                )
        else:
            computed = [self._probabilities(lineages, method) for __, lineages in items]
        with self._lock:
            for (key, __), answers in zip(items, computed):
                self._results.put((key, method), answers)
                resolved[key] = answers
        return [dict(resolved[key]) for key in keys]

    # -------------------------------------------------------------- internals
    def _lineages_for(self, key: str, ucq: UCQ) -> dict[tuple[Any, ...], DNF]:
        """Per-answer lineages of one query, via the lineage cache.

        Takes the session lock only around cache/statistics access; the
        relational evaluation itself runs unlocked.
        """
        with self._lock:
            cached = self._lineages.get(key)
            if cached is not None:
                self.statistics.lineage_hits += 1
                return cached
        fresh, distinct = self._evaluate_shared({key: ucq})
        with self._lock:
            self.statistics.lineage_misses += 1
            self.statistics.relational_passes += 1
            self.statistics.evaluated_disjuncts += distinct
            self._lineages.put(key, fresh[key])
        return fresh[key]

    def _evaluate_shared(
        self, pending: "dict[str, UCQ] | OrderedDict[str, UCQ]"
    ) -> tuple[dict[str, dict[tuple[Any, ...], DNF]], int]:
        """One relational evaluation pass shared by all queries in ``pending``.

        Every distinct conjunctive disjunct across the pending queries is
        evaluated exactly once; per-query lineages are then assembled by
        merging the shared per-disjunct results.  Pure computation — no cache
        or statistics access, so it may run outside the session lock.
        Returns the per-key lineage maps and the number of distinct disjuncts
        evaluated.
        """
        engine = self.engine
        distinct: "OrderedDict[str, ConjunctiveQuery]" = OrderedDict()
        memberships: dict[str, list[str]] = {}
        for key, ucq in pending.items():
            disjunct_keys = []
            for cq in ucq.disjuncts:
                cq_key = canonical_cq_key(cq)
                distinct.setdefault(cq_key, cq)
                disjunct_keys.append(cq_key)
            memberships[key] = disjunct_keys
        evaluated = {
            cq_key: evaluate_cq(cq, engine.indb.database, engine.indb)
            for cq_key, cq in distinct.items()
        }
        assembled: dict[str, dict[tuple[Any, ...], DNF]] = {}
        for key, ucq in pending.items():
            result = QueryResult(ucq.head)
            for cq_key in memberships[key]:
                result.merge(evaluated[cq_key])
            assembled[key] = result.lineages()
        return assembled, len(distinct)

    def _probabilities(
        self, lineages: dict[tuple[Any, ...], DNF], method: str
    ) -> dict[tuple[Any, ...], float]:
        """Intersect every answer lineage against the index."""
        engine = self.engine
        return {
            answer: engine._lineage_probability(lineage, method)
            for answer, lineage in lineages.items()
        }

    def _run_prepared(self, prepared: PreparedQuery, method: str) -> dict[tuple[Any, ...], float]:
        self.engine.validate_method(method)
        with self._lock:
            cached = self._results.get((prepared.key, method))
            if cached is not None:
                self.statistics.result_hits += 1
                return dict(cached)
            self.statistics.result_misses += 1
        self.warm()
        answers = self._probabilities(prepared.lineages, method)
        with self._lock:
            self._results.put((prepared.key, method), answers)
        return dict(answers)

    # ------------------------------------------------------------- inspection
    def cache_info(self) -> dict[str, int]:
        """Sizes of both caches plus every statistics counter."""
        with self._lock:
            info = {
                "result_entries": len(self._results),
                "lineage_entries": len(self._lineages),
            }
            info.update(self.statistics.as_dict())
            return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuerySession({self.engine!r}, {len(self._results)} cached results, "
            f"{len(self._lineages)} cached lineages)"
        )
