"""Canonical cache keys for UCQs.

The serving layer caches lineages and results across queries, so two queries
that differ only in presentation — variable names, atom order, disjunct
order — must map to the same cache key.  :func:`canonical_key` renders a UCQ
into a canonical string:

1. inside each conjunctive query, atoms are sorted by their *skeleton* (the
   relation name plus the positions and values of constants, with variables
   blanked out);
2. variables are renamed ``v0, v1, ...`` in order of first occurrence — head
   variables first, then body variables in sorted-atom order;
3. comparisons are rendered with the canonical names and sorted;
4. the disjuncts of the UCQ are rendered independently and sorted.

The renaming is greedy rather than a full graph canonicalisation, so some
pairs of isomorphic queries (e.g. self-joins whose atoms have identical
skeletons) may still receive different keys.  That only costs a cache miss;
it can never cause a wrong cache hit, because two queries with the same key
are syntactically identical up to variable renaming and therefore have the
same answers.
"""

from __future__ import annotations

from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Term, Variable, is_variable
from repro.query.ucq import UCQ, as_ucq

#: Placeholder used for variables when sorting atoms by skeleton.
_BLANK = "\x00var"


def _skeleton(term: Term) -> tuple[str, str]:
    """A sort key for one atom argument that ignores variable names."""
    if is_variable(term):
        return ("v", _BLANK)
    value = term.value  # type: ignore[union-attr]
    return ("c", f"{type(value).__name__}:{value!r}")


def canonical_cq_key(cq: ConjunctiveQuery) -> str:
    """Canonical string for a single conjunctive query (one UCQ disjunct)."""
    atoms = sorted(
        cq.atoms, key=lambda atom: (atom.relation, tuple(_skeleton(t) for t in atom.terms))
    )
    names: dict[Variable, str] = {}

    def rename(variable: Variable) -> str:
        if variable not in names:
            names[variable] = f"v{len(names)}"
        return names[variable]

    def render(term: Term) -> str:
        if is_variable(term):
            return rename(term)
        return repr(term.value)  # type: ignore[union-attr]

    head = [rename(variable) for variable in cq.head]
    rendered_atoms = []
    for atom in atoms:
        terms = ", ".join(render(term) for term in atom.terms)
        rendered_atoms.append(f"{atom.relation}({terms})")
    # Safety guarantees every comparison variable occurs in some atom, so by
    # now all of them already carry canonical names.
    rendered_comparisons = sorted(
        f"{render(comparison.left)} {comparison.op} {render(comparison.right)}"
        for comparison in cq.comparisons
    )
    body = ", ".join(rendered_atoms + rendered_comparisons)
    return f"({', '.join(head)}) :- {body}"


def canonical_key(query: UCQ | ConjunctiveQuery) -> str:
    """Canonical cache key of a UCQ (or CQ): sorted canonical disjuncts."""
    ucq = as_ucq(query)
    return " ∨ ".join(sorted(canonical_cq_key(cq) for cq in ucq.disjuncts))
