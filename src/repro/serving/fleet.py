"""A fleet of forked replica processes, each serving the same engine.

:class:`ReplicaFleet` turns one compiled :class:`~repro.core.engine.MVQueryEngine`
into ``N`` independent serving processes.  The parent builds (or loads) the
engine **once**; each replica is then created with the ``fork`` start method,
so the engine's compiled MV-index is inherited copy-on-write — ``N`` replicas
do not cost ``N×`` the build time or anywhere near ``N×`` the memory.  Each
child wraps the inherited engine in its own
:class:`~repro.serving.server.ProbServer` on an ephemeral port; the parent
never serves queries itself (the front :class:`~repro.serving.router.Router`
relays to the children).

Responsibilities:

* **lifecycle** — :meth:`start` forks every replica and returns only once all
  of them answer their first ``/healthz`` probe, so callers can print the
  bound URL without racing a half-up fleet; :meth:`stop` SIGTERMs the
  children (each drains in-flight requests before exiting) and escalates to
  SIGKILL after a grace period;
* **health-checking** — a monitor thread probes every replica's ``/healthz``
  on a fixed interval, and the router can :meth:`note_failure` a replica to
  trigger an immediate re-probe; a replica whose process died, or that fails
  two consecutive probes, is killed and restarted with a fresh fork;
* **mutation replay** — every accepted mutation (``/v1/extend``,
  ``/v1/append``) is appended to a replay log (:meth:`record_extend`) as
  ``{"kind", "spec"/"facts", "artifact"}``, where ``artifact`` is the
  leader-compiled sealed delta.  A restarted replica forks from the
  parent's *original* engine and replays the log before serving by
  **importing** each sealed artifact
  (:meth:`~repro.serving.dispatch.Dispatcher.apply_sealed`) — no
  recompilation, and the restarted replica is byte-identical to its peers
  (legacy raw-spec entries without an artifact are still replayed through
  the extender).  Subscription ops (``subscribe``/``unsubscribe``) are
  interleaved in the same log, so a restarted replica also re-arms every
  standing query in the original order and regenerates the identical
  notification stream.  The monitor restarts any replica whose applied log
  length falls behind — a replica can never serve a stale view set for
  longer than one health interval.

The fleet requires the ``fork`` start method (POSIX); on platforms without
it, construction raises :class:`~repro.errors.ServingError` — use a single
:class:`~repro.serving.server.ProbServer` there instead.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
import urllib.request
from typing import Any, Callable

from repro.core.engine import MVQueryEngine
from repro.core.mvdb import MVDB
from repro.errors import ServingError

#: Default replica count (1 keeps single-process semantics, behind a router).
DEFAULT_REPLICAS = 1
#: Seconds between periodic health probes of each replica.
DEFAULT_HEALTH_INTERVAL = 1.0
#: Seconds the monitor waits before re-forking a crashed replica.
DEFAULT_RESTART_BACKOFF = 0.5
#: Seconds a fork gets to come up (replay extends, bind, pass /healthz).
DEFAULT_READY_TIMEOUT = 120.0
#: Per-probe HTTP timeout, seconds.
_PROBE_TIMEOUT = 2.0
#: Consecutive failed probes of a live process before it is restarted.
_SUSPECT_THRESHOLD = 2


def replay_entry(
    dispatcher: Any,
    extender: Callable[[dict[str, Any]], MVDB] | None,
    entry: dict[str, Any],
) -> None:
    """Replay one mutation-log entry into a dispatcher.

    New-form entries carry the leader's sealed compiled delta and are
    imported as-is (byte-identical replicas, no recompile); an ``extend``
    artifact that attaches views additionally needs the extender to
    rebuild the spec MVDB the view names resolve against.  Legacy entries
    (raw extend specs, pre-artifact logs) fall back to a full
    extend-and-recompile through the extender.

    The log also interleaves subscription ops (``{"kind": "subscribe",
    "subscription": spec}`` / ``{"kind": "unsubscribe", "id": ...}``) in
    the exact order the router accepted them; replaying them through the
    dispatcher's attached subscription service makes a restarted replica
    regenerate the same notification stream (same seq numbers, same
    payloads) its peers hold.
    """
    if entry.get("kind") in ("subscribe", "unsubscribe"):
        service = getattr(dispatcher, "subscription_service", None)
        if service is None:
            raise ServingError(
                "mutation log holds a subscription op but no subscription "
                "service is attached to the dispatcher"
            )
        service.apply_log_entry(entry)
        return
    artifact = entry.get("artifact")
    if artifact is None:
        if extender is None:
            raise ServingError(
                "mutation log holds a raw extend spec but no extender was configured"
            )
        dispatcher.extend(extender(dict(entry)))
        return
    mvdb = None
    if artifact.get("kind") == "extend" and artifact.get("new_view_names"):
        if extender is None:
            raise ServingError(
                "mutation log holds an extend artifact but no extender was configured"
            )
        mvdb = extender(dict(entry["spec"]))
    dispatcher.apply_sealed(artifact, mvdb=mvdb)


def _replica_main(
    engine: MVQueryEngine,
    host: str,
    server_kwargs: dict[str, Any],
    extender: Callable[[dict[str, Any]], MVDB] | None,
    extend_specs: list[dict[str, Any]],
    ready_conn: Any,
) -> None:
    """Child-process entry point: serve the fork-inherited engine.

    Replays the mutation log *before* binding, reports the bound port
    through ``ready_conn``, then parks until SIGTERM, which triggers a
    graceful drain.  Exits via ``os._exit`` so the inherited parent state
    (router sockets, monitor thread bookkeeping) is never torn down twice.
    """
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # The parent owns Ctrl-C: a foreground ^C hits the whole process group,
    # and the drain must be driven by the parent's SIGTERM, not a racing
    # KeyboardInterrupt in every child.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.serving.server import ProbServer

    exit_code = 0
    try:
        server = ProbServer(engine, host=host, port=0, extender=extender, **server_kwargs)
        for entry in extend_specs:
            replay_entry(server.dispatcher, extender, entry)
        server.start()
        ready_conn.send(server.port)
        ready_conn.close()
        stop.wait()
        server.stop()
    except BaseException:  # pragma: no cover - crash path, parent restarts us
        exit_code = 1
    os._exit(exit_code)


class _Slot:
    """Parent-side bookkeeping for one replica position in the fleet."""

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.process: Any = None
        self.port: int | None = None
        self.alive = False
        self.suspect = False
        self.incarnation = 0
        self.restarts = 0
        self.consecutive_failures = 0
        #: How many entries of the extend log this replica has applied
        #: (replayed at fork time or delivered by the router's broadcast).
        self.applied_len = 0


class ReplicaFleet:
    """Forks, health-checks, and restarts ``replicas`` serving processes.

    Parameters
    ----------
    engine:
        The compiled engine every replica serves (inherited via fork).
    replicas:
        Number of worker processes.
    host:
        Interface each replica binds (always on an ephemeral port).
    extender:
        Optional ``spec -> MVDB`` callable, forwarded to every replica's
        :class:`~repro.serving.server.ProbServer` and used to replay the
        extend log on restart.
    server_kwargs:
        Extra keyword arguments for each replica's ``ProbServer``
        (``workers``, ``max_queue``, ``cache_size``, ``verbose``).
    health_interval / restart_backoff / ready_timeout:
        Monitor cadence, re-fork delay, and per-fork startup budget.
    on_death:
        Callback ``(slot_id) -> None`` invoked just before a replica is
        restarted or the fleet stops tracking it — the router uses this to
        fold the replica's last-seen counters into its retired baseline and
        to drop pooled connections to the dead process.
    """

    def __init__(
        self,
        engine: MVQueryEngine,
        replicas: int = DEFAULT_REPLICAS,
        *,
        host: str = "127.0.0.1",
        extender: Callable[[dict[str, Any]], MVDB] | None = None,
        server_kwargs: dict[str, Any] | None = None,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
        on_death: Callable[[int], None] | None = None,
    ) -> None:
        if replicas < 1:
            raise ServingError(f"a fleet needs at least one replica, got {replicas}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServingError(
                "replica fleets require the 'fork' start method (POSIX); "
                "use a single ProbServer on this platform"
            )
        self._ctx = multiprocessing.get_context("fork")
        self.engine = engine
        self.host = host
        self.extender = extender
        self.server_kwargs = dict(server_kwargs or {})
        self.health_interval = health_interval
        self.restart_backoff = restart_backoff
        self.ready_timeout = ready_timeout
        self.on_death = on_death
        self._slots = [_Slot(slot_id) for slot_id in range(replicas)]
        self._extend_log: list[dict[str, Any]] = []
        self._lock = threading.RLock()
        self._poke = threading.Event()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------ views
    @property
    def slots(self) -> list[int]:
        """All replica slot ids (stable across restarts — the ring hashes these)."""
        return [slot.slot_id for slot in self._slots]

    @property
    def replicas(self) -> int:
        return len(self._slots)

    def is_alive(self, slot_id: int) -> bool:
        return self._slots[slot_id].alive

    def alive_slots(self) -> list[int]:
        return [slot.slot_id for slot in self._slots if slot.alive]

    def address(self, slot_id: int) -> tuple[str, int]:
        """The (host, port) a slot's current incarnation is serving on."""
        port = self._slots[slot_id].port
        if port is None:
            raise ServingError(f"replica {slot_id} has no bound port (not started)")
        return (self.host, port)

    @property
    def restarts_total(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    def applied_len(self, slot_id: int) -> int:
        with self._lock:
            return self._slots[slot_id].applied_len

    def pid(self, slot_id: int) -> int | None:
        """The slot's current process id (None before start / mid-restart).

        Public so chaos tests can SIGKILL a specific replica and assert the
        fleet's replay-based recovery.
        """
        with self._lock:
            process = self._slots[slot_id].process
            return None if process is None else process.pid

    def stats(self) -> dict[str, Any]:
        """Fleet-level process bookkeeping (merged into the router's stats)."""
        with self._lock:
            return {
                "replicas": len(self._slots),
                "replicas_alive": len(self.alive_slots()),
                "restarts_total": self.restarts_total,
                "extend_log_len": len(self._extend_log),
                "slots": [
                    {
                        "slot": slot.slot_id,
                        "port": slot.port,
                        "alive": slot.alive,
                        "incarnation": slot.incarnation,
                        "restarts": slot.restarts,
                        "applied_len": slot.applied_len,
                    }
                    for slot in self._slots
                ],
            }

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "ReplicaFleet":
        """Fork every replica and block until all pass a first health-check."""
        if self._started:
            raise ServingError("fleet is already running")
        self._started = True
        try:
            for slot in self._slots:
                self._launch(slot)
        except BaseException:
            self._started = False
            self._terminate_all()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, grace: float = 5.0) -> None:
        """SIGTERM every replica (graceful drain), escalate to SIGKILL."""
        self._stopping.set()
        self._poke.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.health_interval + 5.0)
            self._monitor = None
        self._terminate_all(grace=grace)
        self._started = False

    def _terminate_all(self, grace: float = 5.0) -> None:
        for slot in self._slots:
            process = slot.process
            slot.alive = False
            if process is None or not process.is_alive():
                continue
            process.terminate()  # SIGTERM: the child drains, then exits
        deadline = time.monotonic() + grace
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck drain
                process.kill()
                process.join(timeout=1.0)
            slot.process = None

    # ------------------------------------------------------------ extend log
    def record_extend(self, spec: dict[str, Any]) -> int:
        """Append one accepted mutation entry to the replay log; returns its length.

        Entries are either new-form ``{"kind", "spec"/"facts", "artifact"}``
        documents (see :func:`replay_entry`) or legacy raw extend specs.
        """
        with self._lock:
            self._extend_log.append(json.loads(json.dumps(spec)))  # defensive copy
            return len(self._extend_log)

    @property
    def extend_log_len(self) -> int:
        with self._lock:
            return len(self._extend_log)

    def note_extend_applied(self, slot_id: int, applied_len: int) -> None:
        """Router callback: ``slot_id`` has applied the first ``applied_len`` specs."""
        with self._lock:
            slot = self._slots[slot_id]
            slot.applied_len = max(slot.applied_len, applied_len)

    # ---------------------------------------------------------------- health
    def note_failure(self, slot_id: int) -> None:
        """Router callback on a transport failure: re-probe this slot *now*."""
        self._slots[slot_id].suspect = True
        self._poke.set()

    def force_restart(self, slot_id: int) -> None:
        """Mark a slot dead (e.g. it rejected an extend) so the monitor re-forks it."""
        slot = self._slots[slot_id]
        slot.alive = False
        slot.consecutive_failures = _SUSPECT_THRESHOLD
        slot.suspect = True
        self._poke.set()

    def _probe(self, slot: _Slot) -> bool:
        if slot.port is None:
            return False
        try:
            url = f"http://{self.host}:{slot.port}/healthz"
            with urllib.request.urlopen(url, timeout=_PROBE_TIMEOUT) as response:
                document = json.loads(response.read().decode("utf-8"))
            return document.get("status") == "ok"
        except Exception:
            return False

    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            self._poke.wait(timeout=self.health_interval)
            self._poke.clear()
            if self._stopping.is_set():
                return
            for slot in self._slots:
                if self._stopping.is_set():
                    return
                try:
                    self._check(slot)
                except Exception:  # pragma: no cover - monitor must survive
                    pass

    def _check(self, slot: _Slot) -> None:
        process = slot.process
        if process is None or not process.is_alive():
            self._restart(slot)
            return
        if slot.alive and not slot.suspect:
            # Consistency check: a replica forked before the latest extend
            # was recorded, and skipped by the broadcast because it was mid
            # launch, is behind the log — re-fork it (the replay catches up).
            with self._lock:
                behind = slot.applied_len < len(self._extend_log)
            if behind:
                self._restart(slot)
                return
        if self._probe(slot):
            slot.consecutive_failures = 0
            slot.suspect = False
            slot.alive = True
            return
        slot.consecutive_failures += 1
        if slot.consecutive_failures >= _SUSPECT_THRESHOLD:
            self._restart(slot)
        else:
            slot.alive = slot.alive and slot.process is not None
            self._poke.set()  # re-probe promptly rather than a full interval

    def _restart(self, slot: _Slot) -> None:
        slot.alive = False
        if self.on_death is not None:
            try:
                self.on_death(slot.slot_id)
            except Exception:  # pragma: no cover - callback must not kill monitor
                pass
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()  # it failed health checks; no point draining it
        if process is not None:
            process.join(timeout=5.0)
        slot.process = None
        if self._stopping.wait(timeout=self.restart_backoff):
            return
        slot.incarnation += 1
        slot.restarts += 1
        try:
            self._launch(slot)
        except ServingError:
            # Leave the slot dead; the next monitor cycle tries again.
            slot.consecutive_failures = 0
            self._poke.set()

    def _launch(self, slot: _Slot) -> None:
        """Fork one replica and wait until it is serving and healthy."""
        with self._lock:
            extend_specs = list(self._extend_log)
            slot.applied_len = len(extend_specs)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_replica_main,
            args=(
                self.engine,
                self.host,
                self.server_kwargs,
                self.extender,
                extend_specs,
                child_conn,
            ),
            name=f"repro-replica-{slot.slot_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.port = None
        deadline = time.monotonic() + self.ready_timeout
        try:
            while time.monotonic() < deadline:
                if parent_conn.poll(0.05):
                    slot.port = parent_conn.recv()
                    break
                if not process.is_alive():
                    raise ServingError(
                        f"replica {slot.slot_id} exited with code {process.exitcode} "
                        "before binding"
                    )
            if slot.port is None:
                raise ServingError(
                    f"replica {slot.slot_id} did not bind within {self.ready_timeout}s"
                )
        finally:
            parent_conn.close()
        while not self._probe(slot):
            if time.monotonic() >= deadline or not process.is_alive():
                process.kill()
                process.join(timeout=1.0)
                slot.process = None
                raise ServingError(
                    f"replica {slot.slot_id} never passed its first health check"
                )
            time.sleep(0.02)
        slot.consecutive_failures = 0
        slot.suspect = False
        slot.alive = True

    # ------------------------------------------------------------- ergonomics
    def __enter__(self) -> "ReplicaFleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaFleet({len(self.alive_slots())}/{len(self._slots)} alive, "
            f"restarts={self.restarts_total})"
        )
