"""Persistent, cache-aware query serving on top of the MV-index engine.

This package turns the paper's offline/online split into an operational
serving story:

* :mod:`repro.serving.artifact` — persist the offline pipeline products
  (translated INDB, variable order, lineage of ``W``, compiled MV-index with
  its OBDD node tables) to disk and cold-start engines from the saved
  artifact instead of recompiling;
* :mod:`repro.serving.canonical` — canonical cache keys for UCQs, so
  re-phrased queries share cache entries;
* :mod:`repro.serving.session` — a thread-safe :class:`QuerySession` with
  LRU result/lineage caches, prepared-query handles, and a batch API that
  shares one relational evaluation pass across many queries;
* :mod:`repro.serving.dispatch` — admission control (bounded queue →
  429), per-worker session affinity, coalescing of identical in-flight
  queries, a raw-text cache tier, and the serving metrics registry;
* :mod:`repro.serving.server` — the stdlib-only JSON-over-HTTP server
  (``python -m repro serve``; see ``docs/serving.md``);
* :mod:`repro.serving.loadgen` — closed- and open-loop load generation
  with a zipf-skewed DBLP workload mix (``python -m repro loadtest``).

.. deprecated::
    Package-level re-exports from ``repro.serving`` (``QuerySession``,
    ``load_engine``, ``save_engine``, ...) are deprecated in favour of the
    unified facade: :func:`repro.connect` builds a cached client,
    :meth:`repro.ProbDB.save` / :func:`repro.open` replace
    ``save_engine`` / ``load_engine``.  The submodules themselves remain
    importable without a warning.
"""

from __future__ import annotations

import importlib
import warnings

#: Deprecated package-level names: source module and blessed replacement.
_DEPRECATED = {
    "ARTIFACT_FORMAT": ("repro.serving.artifact", "repro.serving.artifact.ARTIFACT_FORMAT"),
    "ARTIFACT_VERSION": ("repro.serving.artifact", "repro.serving.artifact.ARTIFACT_VERSION"),
    "DEFAULT_CACHE_SIZE": (
        "repro.serving.session",
        "repro.serving.session.DEFAULT_CACHE_SIZE",
    ),
    "PreparedQuery": ("repro.serving.session", "repro.ProbDB.prepare()"),
    "QuerySession": ("repro.serving.session", "repro.connect() (ProbDB.session)"),
    "SessionStatistics": ("repro.serving.session", "repro.ProbDB.stats()"),
    "canonical_cq_key": ("repro.serving.canonical", "repro.serving.canonical.canonical_cq_key"),
    "canonical_key": ("repro.serving.canonical", "repro.serving.canonical.canonical_key"),
    "engine_from_state": ("repro.serving.artifact", "repro.serving.artifact.engine_from_state"),
    "engine_state": ("repro.serving.artifact", "repro.serving.artifact.engine_state"),
    "load_engine": ("repro.serving.artifact", "repro.open()"),
    "save_engine": ("repro.serving.artifact", "repro.ProbDB.save()"),
}

__all__ = sorted(_DEPRECATED)


def __getattr__(name: str):
    try:
        module_name, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module 'repro.serving' has no attribute {name!r}") from None
    warnings.warn(
        f"importing {name!r} from 'repro.serving' is deprecated; "
        f"use {replacement} (see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
