"""Persistent, cache-aware query serving on top of the MV-index engine.

This package turns the paper's offline/online split into an operational
serving story:

* :mod:`repro.serving.artifact` — persist the offline pipeline products
  (translated INDB, variable order, lineage of ``W``, compiled MV-index with
  its OBDD node tables) to disk and cold-start engines from the saved
  artifact instead of recompiling;
* :mod:`repro.serving.canonical` — canonical cache keys for UCQs, so
  re-phrased queries share cache entries;
* :mod:`repro.serving.session` — a thread-safe :class:`QuerySession` with
  LRU result/lineage caches, prepared-query handles, and a batch API that
  shares one relational evaluation pass across many queries.
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    engine_from_state,
    engine_state,
    load_engine,
    save_engine,
)
from repro.serving.canonical import canonical_cq_key, canonical_key
from repro.serving.session import (
    DEFAULT_CACHE_SIZE,
    PreparedQuery,
    QuerySession,
    SessionStatistics,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "DEFAULT_CACHE_SIZE",
    "PreparedQuery",
    "QuerySession",
    "SessionStatistics",
    "canonical_cq_key",
    "canonical_key",
    "engine_from_state",
    "engine_state",
    "load_engine",
    "save_engine",
]
