"""Persistence of the offline pipeline products (the MV-index artifact).

The whole point of the paper's architecture is that the expensive work —
translating the MVDB into an INDB (Theorem 1), computing the lineage of the
view query ``W``, and compiling it into an MV-index — happens *offline* so
that online queries are fast.  This module makes the offline/online split
real across process boundaries: :func:`save_engine` serializes every product
a query-serving engine needs into a single JSON document (optionally
gzip-compressed), and :func:`load_engine` rebuilds a fully functional
:class:`~repro.core.engine.MVQueryEngine` from it without re-running any of
the offline pipeline.

The artifact stores:

* the translated INDB — every relation's schema, the deterministic rows, and
  every probabilistic tuple with its weight and its Boolean variable id;
* the variable order Π of the index;
* the lineage of ``W`` as a sorted list of sorted clauses;
* the MV-index: the OBDD node tables (children-first, stable ids — see
  :meth:`repro.obdd.manager.ObddManager.export_nodes`) and each component's
  key, root and tuple variables.

Restoration is *bit-identical*: variable ids, node ids, component order and
therefore every floating-point annotation and query probability match the
engine that was saved (``tests/test_serving.py`` asserts exact equality).

The document is written by Python's :mod:`json` with its default
``allow_nan=True``, because certain tuples carry weight ``+Infinity``; read
it back with Python rather than a strict JSON parser.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Mapping

import repro
from repro.core.engine import MVQueryEngine
from repro.errors import ArtifactError, ReproError
from repro.indb.database import TupleIndependentDatabase
from repro.lineage.dnf import DNF
from repro.mvindex.index import MVIndex
from repro.mvindex.summaries import SummaryStore
from repro.obdd.order import VariableOrder

#: Identifier written into (and required from) every artifact document.
ARTIFACT_FORMAT = "repro-mv-index"
#: Version of the artifact layout; bumped on incompatible changes.
#: Version 2 added the per-component skip summaries; version-1 artifacts are
#: still readable — their summaries are recomputed from the index on load.
ARTIFACT_VERSION = 2
#: Artifact layout versions this library can restore.
SUPPORTED_ARTIFACT_VERSIONS = frozenset({1, 2})


def engine_state(engine: MVQueryEngine) -> dict[str, Any]:
    """Serialize an engine's offline products into JSON-compatible data.

    The source MVDB is *not* stored — online query answering only needs the
    translated products.  Engines built with ``build_index=False`` are
    supported; their state simply carries ``index: None``.
    """
    indb = engine.indb
    relations = []
    for table in indb.database:
        name = table.name
        entry: dict[str, Any] = {
            "name": name,
            "attributes": list(table.schema.attribute_names),
            "probabilistic": indb.is_probabilistic(name),
        }
        if not entry["probabilistic"]:
            entry["rows"] = [list(row) for row in table.rows()]
        relations.append(entry)
    # Restoring in increasing variable order reproduces the original ids,
    # because the INDB hands them out sequentially from zero.
    tuples = sorted(
        ([relation, list(row), weight, variable]
         for relation, row, weight, variable in indb.probabilistic_tuples()),
        key=lambda item: item[3],
    )
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "library_version": repro.__version__,
        "construction": engine.construction,
        "relations": relations,
        "tuples": tuples,
        "order": engine.order.variables(),
        "w_lineage": sorted(sorted(clause) for clause in engine.w_lineage.clauses),
        "index": engine.mv_index.export_state() if engine.mv_index is not None else None,
        "summaries": (
            engine.summaries.export_state() if engine.summaries is not None else None
        ),
    }


def engine_from_state(state: Mapping[str, Any]) -> MVQueryEngine:
    """Rebuild a query-serving engine from :func:`engine_state` output."""
    if state.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"not an MV-index artifact: format {state.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT!r})"
        )
    if state.get("version") not in SUPPORTED_ARTIFACT_VERSIONS:
        raise ArtifactError(
            f"unsupported artifact version {state.get('version')!r} "
            f"(this library reads versions "
            f"{sorted(SUPPORTED_ARTIFACT_VERSIONS)})"
        )
    try:
        return _restore_engine(state)
    except ReproError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        # A well-versioned but structurally mangled document (missing keys,
        # out-of-range node ids, wrong shapes) must surface as a corrupt
        # artifact, not as a raw traceback.
        raise ArtifactError(
            f"corrupt MV-index artifact: {type(exc).__name__}: {exc}"
        ) from exc


def _restore_engine(state: Mapping[str, Any]) -> MVQueryEngine:
    indb = TupleIndependentDatabase()
    for relation in state["relations"]:
        if relation["probabilistic"]:
            indb.add_probabilistic_table(relation["name"], relation["attributes"])
        else:
            indb.add_deterministic_table(
                relation["name"],
                relation["attributes"],
                [tuple(row) for row in relation["rows"]],
            )
    for name, row, weight, variable in state["tuples"]:
        assigned = indb.add_probabilistic_tuple(name, tuple(row), weight)
        if assigned != variable:
            raise ArtifactError(
                f"corrupt artifact: tuple {name}{tuple(row)} restored as variable "
                f"{assigned}, expected {variable}"
            )

    order = VariableOrder(state["order"])
    clauses = state["w_lineage"]
    w_lineage = DNF(clauses) if clauses else DNF.false()
    mv_index = None
    if state["index"] is not None:
        mv_index = MVIndex.from_state(
            state["index"],
            indb.probabilities(),
            order,
            construction=state.get("construction", "concat"),
        )
    summaries = None
    if mv_index is not None and state.get("summaries") is not None:
        summaries = SummaryStore.from_state(state["summaries"])
    # Version-1 artifacts carry no summaries; from_parts recomputes them from
    # the restored index, so upgraded processes still skip.
    return MVQueryEngine.from_parts(
        indb,
        w_lineage,
        order,
        mv_index=mv_index,
        construction=state.get("construction", "concat"),
        summaries=summaries,
    )


def save_engine(engine: MVQueryEngine, path: str | Path) -> Path:
    """Write an engine's offline products to ``path`` and return the path.

    Paths ending in ``.gz`` are gzip-compressed (the node tables compress
    extremely well).  The parent directory is created if needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(engine_state(engine), separators=(",", ":"))
    if path.suffix == ".gz":
        # mtime=0 and an empty FNAME header field keep the artifact bytes a
        # pure function of the engine state: identical engines produce
        # identical artifacts regardless of when or under what file name
        # they are saved (the parallel-build equivalence test relies on it).
        with path.open("wb") as raw:
            with gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as handle:
                handle.write(payload.encode("utf-8"))
    else:
        path.write_text(payload, encoding="utf-8")
    return path


def load_engine(path: str | Path) -> MVQueryEngine:
    """Load an engine from an artifact previously written by :func:`save_engine`."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no MV-index artifact at {path}")
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                state = json.load(handle)
        else:
            with path.open("rt", encoding="utf-8") as handle:
                state = json.load(handle)
    except (OSError, EOFError, ValueError) as exc:
        # gzip reports truncated streams as EOFError, malformed JSON as
        # ValueError; both mean the artifact on disk is unusable.
        raise ArtifactError(f"cannot read MV-index artifact {path}: {exc}") from exc
    return engine_from_state(state)
