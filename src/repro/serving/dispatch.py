"""Admission-controlled request dispatch for the HTTP serving tier.

The :class:`Dispatcher` sits between the HTTP handlers and the query
engine and adds everything a network-facing serving process needs that a
bare :class:`~repro.serving.session.QuerySession` does not have:

* a **bounded request queue with admission control** — when the number of
  queued-plus-running requests reaches ``max_queue``, new submissions are
  refused with :class:`~repro.errors.AdmissionError` (surfaced as HTTP 429
  with a ``Retry-After`` estimate) instead of building an unbounded backlog;
* **per-worker session affinity** — each worker thread owns its own
  :class:`QuerySession`; requests are routed by a stable hash of their
  canonical UCQ key, so repeats of the same (or a re-phrased) query always
  land on the worker whose caches are hot for it;
* **request coalescing** — identical in-flight canonical queries share one
  computation: followers attach to the leader's future instead of queueing
  duplicate work;
* a **string-tier result cache** — an LRU from the raw query text to the
  finished :class:`~repro.results.QueryResult`, which skips even the
  datalog parse on exact-text repeats (the hottest path under skewed
  traffic).  Tiers below it are the session's canonical result cache and
  lineage cache, giving three cache tiers with per-tier hit accounting;
* a **non-blocking write path with epoch-swap publication** — mutations
  (``extend``, ``append_facts``) are serialized by a single-writer mutex
  and split in two: the expensive half (view evaluation, lineage diffing,
  delta OBDD compilation) runs *off* the read/write lock against an
  immutable snapshot of the engine, producing a sealed
  :class:`~repro.core.pending.PendingExtend`; publication then takes the
  writer side of the lock only for an O(delta) patch — splice the tuples
  and lineage, import the pre-compiled node block, bump the generation,
  clear the string tier and the coalescing table, and invalidate every
  session.  Readers never wait on a compile, only on the pointer flip.
  Each request snapshots the generation before computing and re-checks it
  before publishing to a cache, so a mutation racing a query can never
  leave a stale probability behind — the generation guard is the
  correctness substrate the epoch swap stands on;
* a **metrics registry** — qps, latency percentiles, per-tier cache hit
  ratios, queue depth and rejection counts, exposed as a JSON document
  (``/v1/stats``) and as Prometheus-style text (``/metrics``).
"""

from __future__ import annotations

import dataclasses
import math
import queue
import threading
import time
import zlib
from collections import OrderedDict, deque
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.core.engine import MVQueryEngine
from repro.core.mvdb import MVDB
from repro.core.pending import PendingExtend
from repro.errors import AdmissionError, ServingError
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.ucq import UCQ, as_ucq
from repro.results import QueryResult
from repro.serving.canonical import canonical_key
from repro.serving.session import DEFAULT_CACHE_SIZE, QuerySession

#: Default number of worker threads (each owns one QuerySession).
DEFAULT_WORKERS = 4
#: Default admission limit: queued + running requests beyond this are 429'd.
DEFAULT_MAX_QUEUE = 64
#: Default seconds a caller waits for its future before giving up.
DEFAULT_TIMEOUT = 120.0
#: Entries of the raw-query-text result cache (tier 0).
DEFAULT_STRING_CACHE_SIZE = 1024
#: Latency reservoir size for the percentile estimates.
_LATENCY_WINDOW = 4096
#: Sliding window (seconds) over which instantaneous qps is measured.
_QPS_WINDOW = 10.0

#: The cache tiers reported by :meth:`Dispatcher.stats`, hottest first.
CACHE_TIERS = ("string", "result", "lineage")

#: The "subscriptions" section of /v1/stats when no service is attached.
#: Every replica of a fleet carries an identical replicated copy of the
#: subscription state, so merge_stats takes the per-field MAX (summing
#: would count the same subscription N times).
EMPTY_SUBSCRIPTION_STATS: dict[str, Any] = {
    "active": 0,
    "ticks_total": 0,
    "evaluations_total": 0,
    "skips_total": 0,
    "skips_signature_total": 0,
    "skips_bitmap_total": 0,
    "notifications_total": 0,
    "delivered_total": 0,
    "delivery_failures_total": 0,
    "dead_letter_total": 0,
    "seq_head": 0,
    "last_tick_ms": 0.0,
}

#: The "skipping" section of /v1/stats when no analysis has run yet.  Query
#: work is sharded across workers (and replicas), so merge_stats SUMS these
#: counters, unlike the replicated subscription state above.
EMPTY_SKIPPING_STATS: dict[str, Any] = {
    "analyses_total": 0,
    "skipped_components_total": 0,
    "relevant_components_total": 0,
    "skip_ratio": 0.0,
}


def render_metrics(stats: dict[str, Any], extra_lines: Sequence[str] = ()) -> str:
    """Render a ``/v1/stats``-shaped document as Prometheus exposition text.

    One definition for both a single :class:`Dispatcher` and the router's
    cluster roll-up (which merges many dispatcher documents with
    :func:`merge_stats` first), so the two expositions cannot drift apart.
    ``extra_lines`` are appended verbatim (the router adds fleet gauges).
    """
    lines = [
        "# HELP repro_requests_total Queries served since process start.",
        "# TYPE repro_requests_total counter",
        f"repro_requests_total {stats['throughput']['requests_total']}",
        "# HELP repro_rejected_total Requests refused by admission control.",
        "# TYPE repro_rejected_total counter",
        f"repro_rejected_total {stats['admission']['rejected_total']}",
        "# HELP repro_coalesced_total Requests coalesced onto an in-flight twin.",
        "# TYPE repro_coalesced_total counter",
        f"repro_coalesced_total {stats['admission']['coalesced_total']}",
        "# HELP repro_errors_total Requests that raised instead of answering.",
        "# TYPE repro_errors_total counter",
        f"repro_errors_total {stats['errors']['total']}",
        "# HELP repro_qps Requests per second over the trailing window.",
        "# TYPE repro_qps gauge",
        f"repro_qps {stats['throughput']['qps']:.6f}",
        "# HELP repro_queue_depth Requests queued or running right now.",
        "# TYPE repro_queue_depth gauge",
        f"repro_queue_depth {stats['queue_depth']}",
        "# HELP repro_generation Invalidation epoch (bumped by /v1/extend).",
        "# TYPE repro_generation gauge",
        f"repro_generation {stats['generation']}",
        "# HELP repro_request_latency_ms Request latency quantiles.",
        "# TYPE repro_request_latency_ms summary",
    ]
    latency = stats["latency_ms"]
    for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms")):
        lines.append(f'repro_request_latency_ms{{quantile="{quantile}"}} {latency[key]:.6f}')
    lines += [
        "# HELP repro_cache_hits_total Cache hits by tier.",
        "# TYPE repro_cache_hits_total counter",
    ]
    for tier in CACHE_TIERS:
        lines.append(f'repro_cache_hits_total{{tier="{tier}"}} {stats["cache"][tier]["hits"]}')
    lines += [
        "# HELP repro_cache_misses_total Cache misses by tier.",
        "# TYPE repro_cache_misses_total counter",
    ]
    for tier in CACHE_TIERS:
        lines.append(f'repro_cache_misses_total{{tier="{tier}"}} {stats["cache"][tier]["misses"]}')
    lines += [
        "# HELP repro_responses_total HTTP responses by status code.",
        "# TYPE repro_responses_total counter",
    ]
    for status, count in sorted(stats["errors"]["responses_by_status"].items()):
        lines.append(f'repro_responses_total{{status="{status}"}} {count}')
    subscriptions = stats.get("subscriptions", EMPTY_SUBSCRIPTION_STATS)
    lines += [
        "# HELP repro_subscriptions_active Standing queries currently registered.",
        "# TYPE repro_subscriptions_active gauge",
        f"repro_subscriptions_active {subscriptions['active']}",
        "# HELP repro_subscription_ticks_total Delta ticks processed.",
        "# TYPE repro_subscription_ticks_total counter",
        f"repro_subscription_ticks_total {subscriptions['ticks_total']}",
        "# HELP repro_subscription_evals_total Subscriptions re-evaluated by a tick.",
        "# TYPE repro_subscription_evals_total counter",
        f"repro_subscription_evals_total {subscriptions['evaluations_total']}",
        "# HELP repro_subscription_skips_total Subscriptions provably unaffected and skipped.",
        "# TYPE repro_subscription_skips_total counter",
        f"repro_subscription_skips_total {subscriptions['skips_total']}",
        "# HELP repro_subscription_skip_attribution_total Tick skips by the summary that proved them.",
        "# TYPE repro_subscription_skip_attribution_total counter",
        'repro_subscription_skip_attribution_total{summary="signature"} '
        f"{subscriptions.get('skips_signature_total', 0)}",
        'repro_subscription_skip_attribution_total{summary="bitmap"} '
        f"{subscriptions.get('skips_bitmap_total', 0)}",
        "# HELP repro_notifications_total Notifications appended to the stream.",
        "# TYPE repro_notifications_total counter",
        f"repro_notifications_total {subscriptions['notifications_total']}",
        "# HELP repro_notification_dead_letter_total Deliveries abandoned after retries.",
        "# TYPE repro_notification_dead_letter_total counter",
        f"repro_notification_dead_letter_total {subscriptions['dead_letter_total']}",
    ]
    skipping = stats.get("skipping", EMPTY_SKIPPING_STATS)
    lines += [
        "# HELP repro_skip_analyses_total Summary matches run against the MV-index.",
        "# TYPE repro_skip_analyses_total counter",
        f"repro_skip_analyses_total {skipping['analyses_total']}",
        "# HELP repro_skipped_components_total Components proved irrelevant before OBDD work.",
        "# TYPE repro_skipped_components_total counter",
        f"repro_skipped_components_total {skipping['skipped_components_total']}",
        "# HELP repro_skip_ratio Fraction of analyzed components skipped (lifetime).",
        "# TYPE repro_skip_ratio gauge",
        f"repro_skip_ratio {skipping['skip_ratio']:.6f}",
    ]
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


def merge_stats(documents: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-replica ``/v1/stats`` documents into one cluster document.

    Counters (requests, answers, rejections, errors, cache hits/misses,
    responses by status) add up exactly.  Gauges compose by their natural
    operation: queue depths and worker counts sum, uptime takes the oldest
    replica.  ``generation`` is the **minimum** across replicas — the epoch
    every replica is guaranteed to have reached (during an extend broadcast
    replicas disagree briefly; ``generation_max`` exposes the frontier).
    Latency percentiles cannot be merged exactly from summaries, so they are
    count-weighted averages (and ``max_ms`` the true max) — an approximation
    that is documented in the metrics glossary of ``docs/serving.md``.
    """
    if not documents:
        return {
            "generation": 0,
            "generation_max": 0,
            "subscriptions": EMPTY_SUBSCRIPTION_STATS.copy(),
            "skipping": EMPTY_SKIPPING_STATS.copy(),
            "workers": 0,
            "max_queue": 0,
            "queue_depth": 0,
            "in_flight": 0,
            "throughput": {"qps": 0.0, "lifetime_qps": 0.0, "requests_total": 0,
                           "answers_total": 0},
            "latency_ms": latency_summary([]),
            "admission": {"queue_depth": 0, "max_queue": 0, "rejected_total": 0,
                          "coalesced_total": 0},
            "errors": {"total": 0, "responses_by_status": {}},
            "cache": {tier: {"hits": 0, "misses": 0, "hit_ratio": 0.0, "entries": 0}
                      for tier in CACHE_TIERS},
            "uptime_s": 0.0,
        }

    def total(*path: str) -> float:
        values = []
        for document in documents:
            value: Any = document
            for part in path:
                value = value.get(part, 0) if isinstance(value, dict) else 0
            values.append(value or 0)
        return sum(values)

    statuses: dict[str, int] = {}
    for document in documents:
        for status, count in document.get("errors", {}).get("responses_by_status", {}).items():
            statuses[status] = statuses.get(status, 0) + count

    counts = [document.get("latency_ms", {}).get("count", 0) for document in documents]
    weight_total = sum(counts) or 1
    latency: dict[str, float] = {"count": sum(counts)}
    for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
        latency[key] = sum(
            document.get("latency_ms", {}).get(key, 0.0) * count
            for document, count in zip(documents, counts)
        ) / weight_total
    latency["max_ms"] = max(
        (document.get("latency_ms", {}).get("max_ms", 0.0) for document in documents),
        default=0.0,
    )

    generations = [document.get("generation", 0) for document in documents]
    cache = {
        tier: {
            "hits": int(total("cache", tier, "hits")),
            "misses": int(total("cache", tier, "misses")),
            "entries": int(total("cache", tier, "entries")),
        }
        for tier in CACHE_TIERS
    }
    for tier_stats in cache.values():
        touched = tier_stats["hits"] + tier_stats["misses"]
        tier_stats["hit_ratio"] = tier_stats["hits"] / touched if touched else 0.0

    # Subscription state is *replicated*, not sharded: every replica holds
    # an identical registry and produces an identical notification stream,
    # so the cluster view is the per-field MAX (the most caught-up replica),
    # never a sum.
    subscriptions: dict[str, Any] = {}
    for key, default in EMPTY_SUBSCRIPTION_STATS.items():
        subscriptions[key] = max(
            (document.get("subscriptions", {}).get(key, default) for document in documents),
            default=default,
        )

    # Skip analyses are per-replica work (sharded, not replicated): sum.
    skipped_total = int(total("skipping", "skipped_components_total"))
    relevant_total = int(total("skipping", "relevant_components_total"))
    analyzed_total = skipped_total + relevant_total
    skipping = {
        "analyses_total": int(total("skipping", "analyses_total")),
        "skipped_components_total": skipped_total,
        "relevant_components_total": relevant_total,
        "skip_ratio": skipped_total / analyzed_total if analyzed_total else 0.0,
    }

    return {
        "generation": min(generations),
        "generation_max": max(generations),
        "subscriptions": subscriptions,
        "skipping": skipping,
        "workers": int(total("workers")),
        "max_queue": int(total("max_queue")),
        "queue_depth": int(total("queue_depth")),
        "in_flight": int(total("in_flight")),
        "throughput": {
            "qps": total("throughput", "qps"),
            "lifetime_qps": total("throughput", "lifetime_qps"),
            "requests_total": int(total("throughput", "requests_total")),
            "answers_total": int(total("throughput", "answers_total")),
        },
        "latency_ms": latency,
        "admission": {
            "queue_depth": int(total("queue_depth")),
            "max_queue": int(total("max_queue")),
            "rejected_total": int(total("admission", "rejected_total")),
            "coalesced_total": int(total("admission", "coalesced_total")),
        },
        "errors": {"total": int(total("errors", "total")), "responses_by_status": statuses},
        "cache": cache,
        "uptime_s": max(document.get("uptime_s", 0.0) for document in documents),
    }


class _ReadWriteLock:
    """A writer-preferring read/write lock.

    Readers share the lock (queries keep flowing past each other); a writer
    (``extend``) excludes readers and other writers.  Writer preference
    keeps a steady read load from starving the writer forever.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if not self._readers:
                    self._condition.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


def percentile(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0.0 if empty).

    Shared by the dispatcher's metrics registry and the load generator's
    report summaries.
    """
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
    return ordered[rank]


def latency_summary(ordered_seconds: Sequence[float]) -> dict[str, float]:
    """The standard latency document over an already-sorted seconds list.

    One definition for both ``/v1/stats`` and the load generator's reports,
    so the smoke test always compares like with like.
    """
    mean = sum(ordered_seconds) / len(ordered_seconds) if ordered_seconds else 0.0
    return {
        "count": len(ordered_seconds),
        "p50_ms": percentile(ordered_seconds, 0.50) * 1000.0,
        "p95_ms": percentile(ordered_seconds, 0.95) * 1000.0,
        "p99_ms": percentile(ordered_seconds, 0.99) * 1000.0,
        "mean_ms": mean * 1000.0,
        "max_ms": (ordered_seconds[-1] if ordered_seconds else 0.0) * 1000.0,
    }


class MetricsRegistry:
    """Thread-safe serving metrics: counters, latency reservoir, qps window.

    All latencies are recorded in seconds and reported in milliseconds.
    Counters are monotonic for the life of the process — the CI load smoke
    polls ``/v1/stats`` and fails if any of them ever decreases.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests_total = 0
        self.answers_total = 0
        self.rejected_total = 0
        self.coalesced_total = 0
        self.errors_total = 0
        self.responses_by_status: dict[int, int] = {}
        # Only the dispatcher's own string tier is counted here; the result
        # and lineage tiers keep their counters in the per-session
        # statistics (aggregated by Dispatcher.cache_stats), so mirroring
        # them here would just create a second, disagreeing copy.
        self.tier_hits: dict[str, int] = {}
        self.tier_misses: dict[str, int] = {}
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._completions: deque[float] = deque(maxlen=65536)

    # ------------------------------------------------------------- recording
    def observe_request(self, latency_s: float, answers: int = 0) -> None:
        """Record one successfully served query (or batch member)."""
        with self._lock:
            self.requests_total += 1
            self.answers_total += answers
            self._latencies.append(latency_s)
            self._completions.append(time.monotonic())

    def observe_rejected(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def observe_coalesced(self) -> None:
        with self._lock:
            self.coalesced_total += 1

    def observe_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def observe_response(self, status: int) -> None:
        """Record the HTTP status of one response (called by the server)."""
        with self._lock:
            self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1

    def observe_tier(self, tier: str, hit: bool) -> None:
        with self._lock:
            if hit:
                self.tier_hits[tier] = self.tier_hits.get(tier, 0) + 1
            else:
                self.tier_misses[tier] = self.tier_misses.get(tier, 0) + 1

    # ------------------------------------------------------------- reporting
    def uptime_s(self) -> float:
        """Seconds since the registry was created (cheap; for liveness)."""
        return max(time.monotonic() - self.started, 1e-6)

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99/mean/max over the reservoir, in milliseconds."""
        with self._lock:
            sample = sorted(self._latencies)
        return latency_summary(sample)

    def qps(self) -> float:
        """Requests per second over the trailing measurement window."""
        now = time.monotonic()
        with self._lock:
            while self._completions and now - self._completions[0] > _QPS_WINDOW:
                self._completions.popleft()
            recent = len(self._completions)
        window = min(_QPS_WINDOW, max(now - self.started, 1e-6))
        return recent / window

    def snapshot(self) -> dict[str, Any]:
        """All counters plus derived rates, as one JSON-safe document."""
        uptime = self.uptime_s()
        with self._lock:
            statuses = {str(status): count for status, count in self.responses_by_status.items()}
            counters = {
                "requests_total": self.requests_total,
                "answers_total": self.answers_total,
                "rejected_total": self.rejected_total,
                "coalesced_total": self.coalesced_total,
                "errors_total": self.errors_total,
            }
        return {
            "uptime_s": uptime,
            "qps": self.qps(),
            "lifetime_qps": counters["requests_total"] / uptime,
            **counters,
            "responses_by_status": statuses,
            "latency": self.latency_percentiles(),
        }


@dataclasses.dataclass
class _Job:
    """One unit of work queued to a dispatch worker."""

    kind: str  # "query" | "batch"
    payload: Any
    method: str
    raw: str | None
    coalesce_key: tuple[Any, ...] | None
    future: "Future[tuple[Any, int]]"


class Dispatcher:
    """Admission control, affinity, coalescing and metrics over one engine.

    Parameters
    ----------
    engine:
        The (shared, read-mostly) query engine to serve from.
    workers:
        Worker threads; each owns a :class:`QuerySession` whose caches stay
        hot thanks to canonical-key affinity routing.
    max_queue:
        Admission limit on queued-plus-running requests; beyond it,
        :meth:`submit` raises :class:`~repro.errors.AdmissionError`.
    cache_size:
        Capacity of each per-worker session LRU (results and lineages).
    string_cache_size:
        Capacity of the shared raw-text result cache (tier 0).
    """

    def __init__(
        self,
        engine: MVQueryEngine,
        workers: int = DEFAULT_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        cache_size: int = DEFAULT_CACHE_SIZE,
        string_cache_size: int = DEFAULT_STRING_CACHE_SIZE,
    ) -> None:
        if workers < 1:
            raise ServingError(f"dispatcher needs at least one worker, got {workers}")
        self.engine = engine
        self.max_queue = max_queue
        self.metrics = MetricsRegistry()
        self.sessions = [QuerySession(engine, cache_size=cache_size) for _ in range(workers)]
        self._rwlock = _ReadWriteLock()
        self._write_mutex = threading.Lock()
        self._state = threading.Lock()
        self._generation = 0
        self._pending = 0
        self._inflight: dict[tuple[Any, ...], Future] = {}
        self._retry_hint: tuple[float, float] = (-10.0, 0.0)  # (refreshed_at, p50_s)
        self._string_cache: "OrderedDict[tuple[Any, ...], QueryResult]" = OrderedDict()
        self._string_cache_size = string_cache_size
        #: Set by SubscriptionService.attach(); provides the "subscriptions"
        #: section of stats() and handles replayed subscription log entries.
        self.subscription_service: Any | None = None
        self._delta_listeners: list[Any] = []
        self._queues: list["queue.SimpleQueue[_Job | None]"] = [
            queue.SimpleQueue() for _ in range(workers)
        ]
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(index,), daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ---------------------------------------------------------------- basics
    @property
    def generation(self) -> int:
        """The invalidation epoch; bumped by every :meth:`extend`."""
        with self._state:
            return self._generation

    @property
    def queue_depth(self) -> int:
        """Requests currently queued or running."""
        with self._state:
            return self._pending

    def warm(self) -> None:
        """Warm every worker session so first requests only read."""
        for session in self.sessions:
            session.warm()

    def add_delta_listener(self, listener: Any) -> None:
        """Register a callable invoked after every published mutation.

        The listener receives the delta descriptor (the document of
        :meth:`PendingExtend.delta_descriptor` plus a ``"generation"`` key)
        *inside* the single-writer critical section, after the read/write
        lock has been released: readers are already flowing against the new
        epoch, but the next mutation cannot start until the listener
        returns.  That ordering is what makes subscription evaluation
        deterministic — every replica observes the same (mutation, tick)
        interleaving.
        """
        self._delta_listeners.append(listener)

    @contextmanager
    def read_pinned(self) -> Iterator[int]:
        """Hold the reader side of the epoch lock; yields the pinned generation.

        While the context is held no mutation can publish, so everything
        computed inside is valid for exactly the yielded generation.  Used
        by the subscription evaluator to guarantee fired answers are
        bit-identical to a fresh query at the same generation.
        """
        with self._rwlock.read_locked():
            with self._state:
                generation = self._generation
            yield generation

    @contextmanager
    def mutation_locked(self) -> Iterator[None]:
        """Hold the single-writer mutex without mutating anything.

        Serializes a non-mutating critical section (e.g. evaluating a new
        subscription's baseline) against the write path, so the baseline
        can never be computed halfway through a publish."""
        with self._write_mutex:
            yield

    def close(self) -> None:
        """Stop the worker threads (idempotent)."""
        with self._state:
            if self._closed:
                return
            self._closed = True
        for worker_queue in self._queues:
            worker_queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------ submission
    def _as_ucq(self, query: "str | UCQ | ConjunctiveQuery") -> UCQ:
        if isinstance(query, str):
            return as_ucq(parse_query(query))
        return as_ucq(query)

    def _worker_for(self, key: str) -> int:
        # A stable (process-independent) hash so a canonical query always
        # lands on the session whose caches already hold it.
        return zlib.crc32(key.encode("utf-8")) % len(self.sessions)

    def _retry_after(self, depth: int) -> float:
        # Called with self._state held — must not re-acquire it.  Under
        # overload every 429 lands here, so the p50 (which costs a sort of
        # the latency reservoir) is refreshed at most once per second
        # instead of per rejection.
        now = time.monotonic()
        refreshed_at, p50_s = self._retry_hint
        if now - refreshed_at > 1.0:
            p50_s = self.metrics.latency_percentiles()["p50_ms"] / 1000.0
            self._retry_hint = (now, p50_s)
        estimate = depth * max(p50_s, 0.005) / len(self.sessions)
        return min(30.0, max(1.0, math.ceil(estimate)))

    def _string_get(self, generation: int, raw: str, method: str) -> QueryResult | None:
        entry = self._string_cache.get((generation, raw, method))
        if entry is not None:
            self._string_cache.move_to_end((generation, raw, method))
        return entry

    def _string_put(self, generation: int, raw: str, method: str, result: QueryResult) -> None:
        self._string_cache[(generation, raw, method)] = result
        self._string_cache.move_to_end((generation, raw, method))
        while len(self._string_cache) > self._string_cache_size:
            self._string_cache.popitem(last=False)

    def submit(
        self, query: "str | UCQ | ConjunctiveQuery", method: str = "mvindex"
    ) -> "Future[tuple[QueryResult, int]]":
        """Enqueue one query; returns a future of ``(result, generation)``.

        Raises :class:`~repro.errors.AdmissionError` when the bounded queue
        is full, and parse/method errors synchronously (they are the
        caller's to map to HTTP 400).  Identical in-flight canonical queries
        are coalesced onto one future.
        """
        if self._closed:
            raise ServingError("dispatcher is closed")
        raw = query.strip() if isinstance(query, str) else None
        if raw is not None:
            with self._state:
                cached = self._string_get(self._generation, raw, method)
                if cached is not None:
                    generation = self._generation
                    self.metrics.observe_tier("string", True)
                    future: "Future[tuple[QueryResult, int]]" = Future()
                    future.set_result(
                        (dataclasses.replace(cached, cached=True, wall_time=0.0), generation)
                    )
                    return future
            self.metrics.observe_tier("string", False)
        ucq = self._as_ucq(query)
        self.engine.resolve_method(method)  # fail unknown methods before queueing
        self.engine.validate_query(ucq)
        key = canonical_key(ucq)
        worker = self._worker_for(key)
        with self._state:
            coalesce_key = (self._generation, key, method)
            existing = self._inflight.get(coalesce_key)
            if existing is not None:
                self.metrics.observe_coalesced()
                return existing
            if self._pending >= self.max_queue:
                self.metrics.observe_rejected()
                raise AdmissionError(
                    f"request queue is full ({self._pending}/{self.max_queue})",
                    retry_after=self._retry_after(self._pending),
                )
            future = Future()
            self._inflight[coalesce_key] = future
            self._pending += 1
        self._queues[worker].put(
            _Job(
                kind="query",
                payload=ucq,
                method=method,
                raw=raw,
                coalesce_key=coalesce_key,
                future=future,
            )
        )
        return future

    def execute(
        self,
        query: "str | UCQ | ConjunctiveQuery",
        method: str = "mvindex",
        timeout: float = DEFAULT_TIMEOUT,
    ) -> tuple[QueryResult, int]:
        """Submit and wait; returns ``(result, generation)`` and records metrics."""
        start = time.monotonic()
        # Admission refusals and parse/method mistakes propagate from
        # submit() without touching errors_total — they are the caller's
        # (HTTP 4xx), not failures of the serving tier.
        future = self.submit(query, method=method)
        try:
            result, generation = future.result(timeout=timeout)
        except Exception:
            self.metrics.observe_error()
            raise
        self.metrics.observe_request(time.monotonic() - start, answers=len(result))
        return result, generation

    def execute_batch(
        self,
        queries: Sequence["str | UCQ | ConjunctiveQuery"],
        method: str = "mvindex",
        workers: int | None = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> tuple[list[QueryResult], int]:
        """One shared relational pass for a whole batch (admitted as one job).

        The batch routes to a single worker session (chosen by the combined
        canonical key) so its cache stays hot for the batch's query mix.
        """
        if self._closed:
            raise ServingError("dispatcher is closed")
        start = time.monotonic()
        ucqs = [self._as_ucq(query) for query in queries]
        self.engine.resolve_method(method)
        for ucq in ucqs:
            self.engine.validate_query(ucq)
        keys = "|".join(canonical_key(ucq) for ucq in ucqs)
        worker = self._worker_for(keys)
        with self._state:
            if self._pending >= self.max_queue:
                self.metrics.observe_rejected()
                raise AdmissionError(
                    f"request queue is full ({self._pending}/{self.max_queue})",
                    retry_after=self._retry_after(self._pending),
                )
            future: "Future[tuple[list[QueryResult], int]]" = Future()
            self._pending += 1
        self._queues[worker].put(
            _Job(
                kind="batch",
                payload=(ucqs, workers),
                method=method,
                raw=None,
                coalesce_key=None,
                future=future,
            )
        )
        try:
            results, generation = future.result(timeout=timeout)
        except Exception:
            self.metrics.observe_error()
            raise
        elapsed = time.monotonic() - start
        for result in results:
            self.metrics.observe_request(elapsed / max(len(results), 1), answers=len(result))
        return results, generation

    # ---------------------------------------------------------------- worker
    def _worker_loop(self, index: int) -> None:
        session = self.sessions[index]
        jobs = self._queues[index]
        while True:
            job = jobs.get()
            if job is None:
                return
            outcome: BaseException | tuple[Any, int]
            try:
                with self._rwlock.read_locked():
                    # Generation cannot change while we hold the read side
                    # (extend needs the write side), so the snapshot below is
                    # the generation this computation is valid for.
                    with self._state:
                        generation = self._generation
                    if job.kind == "query":
                        value = session.execute(job.payload, method=job.method)
                    else:
                        ucqs, batch_workers = job.payload
                        value = session.execute_batch(
                            ucqs, method=job.method, workers=batch_workers
                        )
                outcome = (value, generation)
            except BaseException as exc:  # surfaced through the future
                outcome = exc
            with self._state:
                if job.coalesce_key is not None:
                    self._inflight.pop(job.coalesce_key, None)
                self._pending -= 1
                if (
                    not isinstance(outcome, BaseException)
                    and job.raw is not None
                    # Per-request generation check: publish to the string
                    # tier only if no extend() invalidated the engine since
                    # this result was computed.
                    and outcome[1] == self._generation
                ):
                    self._string_put(outcome[1], job.raw, job.method, outcome[0])
            if isinstance(outcome, BaseException):
                job.future.set_exception(outcome)
            else:
                job.future.set_result(outcome)

    # -------------------------------------------------------------- mutation
    def _publish(self, pending: PendingExtend) -> tuple[list[int], int]:
        """Apply a prepared delta and invalidate every tier — the epoch swap.

        The writer side of the read/write lock is held only for the
        O(delta) patch (:meth:`MVQueryEngine.apply_pending`) plus the
        invalidation sweep: bump the generation, clear the string tier and
        the coalescing table, and invalidate every worker session (which
        bumps the sessions' own generations).  This is the *only* path that
        mutates the engine, so every cache tier sees exactly one
        invalidation ordering.
        """
        with self._rwlock.write_locked():
            added = self.engine.apply_pending(pending)
            with self._state:
                self._generation += 1
                generation = self._generation
                self._string_cache.clear()
                self._inflight.clear()
            for session in self.sessions:
                session.invalidate()
        if self._delta_listeners:
            descriptor = pending.delta_descriptor()
            descriptor["generation"] = generation
            # Still inside the caller's single-writer mutex: listeners (the
            # subscription tick) run against exactly this generation, and
            # the next mutation waits for them.  Readers are not blocked —
            # the write lock is already released.
            for listener in self._delta_listeners:
                listener(descriptor)
        return added, generation

    def extend(self, mvdb: MVDB) -> tuple[list[int], int]:
        """Extend the engine's view set without stalling readers.

        The compile half (:meth:`MVQueryEngine.prepare_extend`) runs under
        the single-writer mutex but *outside* the read/write lock — queries
        keep flowing while the delta OBDD is built against a snapshot.
        Publication then goes through :meth:`_publish`.  Returns ``(added
        component keys, new generation)``.
        """
        with self._write_mutex:
            pending = self.engine.prepare_extend(mvdb)
            return self._publish(pending)

    def extend_sealed(self, mvdb: MVDB) -> tuple[list[int], int, dict[str, Any]]:
        """Like :meth:`extend`, but also returns the sealed delta artifact.

        The artifact is captured *before* publication, so it describes
        exactly the patch that was applied — the router ships it to
        follower replicas, which import it via :meth:`apply_sealed` instead
        of recompiling (compile once, N byte-identical replicas).
        """
        with self._write_mutex:
            pending = self.engine.prepare_extend(mvdb)
            sealed = pending.sealed()
            added, generation = self._publish(pending)
        return added, generation, sealed

    def append_facts(self, facts: Any) -> tuple[int, int, dict[str, Any]]:
        """Stream new base facts into the engine; readers never wait.

        Same two-phase shape as :meth:`extend`: incremental lineage
        patching and any delta compilation happen off the read/write lock,
        then the O(delta) publish.  Returns ``(added tuple count, new
        generation, sealed artifact)``.
        """
        with self._write_mutex:
            pending = self.engine.prepare_append(facts)
            sealed = pending.sealed()
            count = pending.added_tuple_count
            _, generation = self._publish(pending)
        return count, generation, sealed

    def apply_sealed(
        self, sealed: dict[str, Any], mvdb: MVDB | None = None
    ) -> tuple[list[int], int]:
        """Import a leader-compiled sealed delta (the follower write path).

        ``mvdb`` is the follower's freshly built spec MVDB (extends only —
        the sealed form carries view *names*, resolved against it).  A
        stale ``base_epoch`` raises :class:`~repro.errors.ServingError`;
        the router reacts by force-restarting the diverged follower.
        """
        with self._write_mutex:
            pending = PendingExtend.from_sealed(sealed, mvdb=mvdb)
            return self._publish(pending)

    # ------------------------------------------------------------ inspection
    def cache_stats(self) -> dict[str, Any]:
        """Per-tier hit/miss counts and ratios (string, result, lineage)."""
        result_hits = result_misses = lineage_hits = lineage_misses = 0
        entries = {"result": 0, "lineage": 0}
        for session in self.sessions:
            info = session.cache_info()
            result_hits += info["result_hits"]
            result_misses += info["result_misses"]
            lineage_hits += info["lineage_hits"]
            lineage_misses += info["lineage_misses"]
            entries["result"] += info["result_entries"]
            entries["lineage"] += info["lineage_entries"]
        with self._state:
            string_entries = len(self._string_cache)
        string_hits = self.metrics.tier_hits.get("string", 0)
        string_misses = self.metrics.tier_misses.get("string", 0)

        def tier(hits: int, misses: int, count: int) -> dict[str, Any]:
            total = hits + misses
            return {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / total if total else 0.0,
                "entries": count,
            }

        return {
            "string": tier(string_hits, string_misses, string_entries),
            "result": tier(result_hits, result_misses, entries["result"]),
            "lineage": tier(lineage_hits, lineage_misses, entries["lineage"]),
        }

    def skipping_stats(self) -> dict[str, Any]:
        """The "skipping" section of ``/v1/stats``, summed over worker sessions."""
        analyses = skipped = relevant = 0
        for session in self.sessions:
            info = session.cache_info()
            analyses += info["skip_analyses"]
            skipped += info["skipped_components"]
            relevant += info["relevant_components"]
        analyzed = skipped + relevant
        return {
            "analyses_total": analyses,
            "skipped_components_total": skipped,
            "relevant_components_total": relevant,
            "skip_ratio": skipped / analyzed if analyzed else 0.0,
        }

    def stats(self) -> dict[str, Any]:
        """The full ``/v1/stats`` document (JSON-safe, nested)."""
        with self._state:
            generation = self._generation
            pending = self._pending
            inflight = len(self._inflight)
        snapshot = self.metrics.snapshot()
        subscriptions = (
            self.subscription_service.stats()
            if self.subscription_service is not None
            else EMPTY_SUBSCRIPTION_STATS.copy()
        )
        return {
            "generation": generation,
            "subscriptions": subscriptions,
            "skipping": self.skipping_stats(),
            "workers": len(self.sessions),
            "max_queue": self.max_queue,
            "queue_depth": pending,
            "in_flight": inflight,
            "throughput": {
                "qps": snapshot["qps"],
                "lifetime_qps": snapshot["lifetime_qps"],
                "requests_total": snapshot["requests_total"],
                "answers_total": snapshot["answers_total"],
            },
            "latency_ms": snapshot["latency"],
            "admission": {
                "queue_depth": pending,
                "max_queue": self.max_queue,
                "rejected_total": snapshot["rejected_total"],
                "coalesced_total": snapshot["coalesced_total"],
            },
            "errors": {
                "total": snapshot["errors_total"],
                "responses_by_status": snapshot["responses_by_status"],
            },
            "cache": self.cache_stats(),
            "uptime_s": snapshot["uptime_s"],
        }

    def metrics_text(self) -> str:
        """The metrics as Prometheus-style exposition text."""
        return render_metrics(self.stats())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dispatcher({len(self.sessions)} workers, max_queue={self.max_queue}, "
            f"generation={self.generation})"
        )
