"""A stdlib-only JSON-over-HTTP front end for a compiled probabilistic DB.

:class:`ProbServer` wraps a :class:`~repro.serving.dispatch.Dispatcher`
(admission control, session affinity, coalescing, metrics) in a
``ThreadingHTTPServer`` and speaks a small JSON protocol:

========================  =====================================================
``POST /v1/query``        ``{"query": "...", "method": "mvindex"}`` →
                          ``{"generation": g, "result": <QueryResult JSON>}``
``POST /v1/query_batch``  ``{"queries": [...], "method": ..., "workers": n}`` →
                          ``{"generation": g, "results": [...]}``
``POST /v1/extend``       extension spec (see below) →
                          ``{"added_components": k, "generation": g}``
``POST /v1/append``       ``{"facts": {relation: [...]}}`` →
                          ``{"added_tuples": n, "generation": g}``
``POST /v1/import``       ``{"kind": ..., "artifact": <sealed delta>}`` →
                          ``{"added_components": k, "generation": g}``
``POST /v1/subscribe``    ``{"query": ..., "predicate": ..., "sink": ...}`` →
                          the subscription document (id, baseline answers)
``POST /v1/unsubscribe``  ``{"id": "sub-3"}`` → ``{"id": ..., "removed": true}``
``POST /v1/notifications``  ``{"since": n, "wait_s": s, "limit": k}`` →
                          long-poll read of the notification stream
``GET /v1/subscriptions`` every registered standing query + its state
``GET /v1/stats``         the dispatcher's full statistics document
``GET /healthz``          liveness: ``{"status": "ok", "generation": g, ...}``
``GET /metrics``          Prometheus-style exposition text
========================  =====================================================

Errors are structured: every non-2xx response carries
``{"error": {"type": ..., "message": ..., "status": ...}}``, where ``type``
is the snake-case name of the library exception (``parse_error``,
``inference_error``, ...).  User mistakes map to **400**, a full admission
queue to **429** (with a ``Retry-After`` header), unknown paths to **404**,
wrong verbs to **405**, and library bugs to **500**.

Mutations (``/v1/extend``, ``/v1/append``) are serialized through the
dispatcher's single-writer mutex; their expensive compile half runs off
the serving lock, so reads keep flowing throughout.  How an extend body
becomes an :class:`~repro.core.mvdb.MVDB` is pluggable via the server's
``extender`` callable (the CLI installs one that rebuilds the synthetic
DBLP workload from ``{"groups": ..., "seed": ..., "views": [...]}``).
Both mutation endpoints accept ``"ship_artifact": true`` (set by the
router, never by clients) to include the sealed compiled delta in the
response; ``/v1/import`` is the matching follower-side endpoint that
installs such an artifact without recompiling.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator

from repro.core.engine import MVQueryEngine
from repro.core.mvdb import MVDB
from repro.errors import AdmissionError, ReproError, ServingError, wire_name
from repro.serving.dispatch import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    Dispatcher,
)
from repro.subscribe import SubscriptionService

#: Largest request body accepted, in bytes (a query batch, comfortably).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Largest number of queries accepted in one ``/v1/query_batch`` call.
MAX_BATCH_SIZE = 1024


class _BadRequest(ServingError):
    """A malformed request body (not valid JSON / wrong shape)."""


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`ProbServer`."""

    protocol_version = "HTTP/1.1"
    # Without TCP_NODELAY, the response body sits in Nagle's buffer waiting
    # for the client's delayed ACK of the header segment — a ~40ms floor on
    # every request (StreamRequestHandler applies this in setup()).
    disable_nagle_algorithm = True
    server: "_HttpServer"

    # ----------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.prob_server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(
        self, status: int, document: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.prob_server.dispatcher.metrics.observe_response(status)

    def _send_error_json(
        self, status: int, error_type: str, message: str, headers: dict[str, str] | None = None
    ) -> None:
        self._send_json(
            status,
            {"error": {"type": error_type, "message": message, "status": status}},
            headers=headers,
        )

    def _read_raw_body(self) -> bytes:
        """Read (and thereby drain) the request body.

        Called for every POST before routing: on HTTP/1.1 keep-alive
        connections an unread body would otherwise be parsed as the next
        request line, desyncing the connection after any error response
        that short-circuits before reading it (404/405/501/400).
        """
        length = self.headers.get("Content-Length")
        if length is None:
            raise _BadRequest("a JSON body with a Content-Length header is required")
        try:
            size = int(length)
        except ValueError:
            raise _BadRequest(f"invalid Content-Length {length!r}") from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise _BadRequest(f"request body of {size} bytes exceeds {MAX_BODY_BYTES}")
        return self.rfile.read(size)

    def _read_body(self) -> dict[str, Any]:
        try:
            document = json.loads(self._raw_body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise _BadRequest("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------ routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        with self.server.prob_server.request_tracked():
            self._do_get()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        with self.server.prob_server.request_tracked():
            self._do_post()

    def _do_get(self) -> None:
        try:
            if self.path == "/healthz":
                self._handle_healthz()
            elif self.path == "/v1/stats":
                self._handle_stats()
            elif self.path == "/metrics":
                self._handle_metrics()
            elif self.path == "/v1/subscriptions":
                self._send_json(200, self.server.prob_server.subscriptions.list())
            elif self.path in (
                "/v1/query",
                "/v1/query_batch",
                "/v1/extend",
                "/v1/append",
                "/v1/import",
                "/v1/subscribe",
                "/v1/unsubscribe",
                "/v1/notifications",
            ):
                self._send_error_json(405, "method_not_allowed", f"POST required for {self.path}")
            else:
                self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
        except Exception as exc:  # pragma: no cover - defensive
            self._internal_error(exc)

    def _do_post(self) -> None:
        try:
            try:
                self._raw_body = self._read_raw_body()
            except _BadRequest as exc:
                # Without a believable Content-Length the connection cannot
                # be resynced — answer and drop it.
                self.close_connection = True
                self._send_error_json(400, "bad_request", str(exc))
                return
            if self.path == "/v1/query":
                self._handle_query()
            elif self.path == "/v1/query_batch":
                self._handle_query_batch()
            elif self.path == "/v1/extend":
                self._handle_extend()
            elif self.path == "/v1/append":
                self._handle_append()
            elif self.path == "/v1/import":
                self._handle_import()
            elif self.path == "/v1/subscribe":
                self._handle_subscribe()
            elif self.path == "/v1/unsubscribe":
                self._handle_unsubscribe()
            elif self.path == "/v1/notifications":
                self._handle_notifications()
            elif self.path in ("/healthz", "/v1/stats", "/metrics", "/v1/subscriptions"):
                self._send_error_json(405, "method_not_allowed", f"GET required for {self.path}")
            else:
                self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
        except _BadRequest as exc:
            self._send_error_json(400, "bad_request", str(exc))
        except AdmissionError as exc:
            self._send_error_json(
                429,
                "admission_error",
                str(exc),
                headers={"Retry-After": str(int(exc.retry_after))},
            )
        except ReproError as exc:
            # Library-detected user mistakes: unparsable queries, unknown
            # methods, rejected extensions, ... — the caller's to fix.
            self._send_error_json(400, wire_name(type(exc)), str(exc))
        except Exception as exc:
            self._internal_error(exc)

    def _internal_error(self, exc: BaseException) -> None:
        self.server.prob_server.dispatcher.metrics.observe_error()
        try:
            self._send_error_json(500, "internal_error", f"{type(exc).__name__}: {exc}")
        except Exception:  # pragma: no cover - client went away mid-reply
            pass

    # ---------------------------------------------------------------- handlers
    def _handle_healthz(self) -> None:
        # Liveness probes poll this; keep it cheap (no metrics snapshot,
        # which sorts the latency reservoir).
        prob_server = self.server.prob_server
        self._send_json(
            200,
            {
                "status": "ok",
                "generation": prob_server.dispatcher.generation,
                "uptime_s": prob_server.dispatcher.metrics.uptime_s(),
                "workers": len(prob_server.dispatcher.sessions),
            },
        )

    def _handle_stats(self) -> None:
        self._send_json(200, self.server.prob_server.dispatcher.stats())

    def _handle_metrics(self) -> None:
        body = self.server.prob_server.dispatcher.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.prob_server.dispatcher.metrics.observe_response(200)

    def _handle_query(self) -> None:
        document = self._read_body()
        query = document.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _BadRequest("'query' must be a non-empty datalog string")
        method = document.get("method", "mvindex")
        if not isinstance(method, str):
            raise _BadRequest("'method' must be a string")
        result, generation = self.server.prob_server.dispatcher.execute(query, method=method)
        self._send_json(200, {"generation": generation, "result": result.to_json()})

    def _handle_query_batch(self) -> None:
        document = self._read_body()
        queries = document.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _BadRequest("'queries' must be a non-empty list of datalog strings")
        if len(queries) > MAX_BATCH_SIZE:
            raise _BadRequest(f"batch of {len(queries)} exceeds {MAX_BATCH_SIZE} queries")
        if not all(isinstance(query, str) and query.strip() for query in queries):
            raise _BadRequest("every entry of 'queries' must be a non-empty datalog string")
        method = document.get("method", "mvindex")
        if not isinstance(method, str):
            raise _BadRequest("'method' must be a string")
        workers = document.get("workers")
        if workers is not None and not isinstance(workers, int):
            raise _BadRequest("'workers' must be an integer when given")
        results, generation = self.server.prob_server.dispatcher.execute_batch(
            queries, method=method, workers=workers
        )
        self._send_json(
            200,
            {"generation": generation, "results": [result.to_json() for result in results]},
        )

    def _handle_extend(self) -> None:
        prob_server = self.server.prob_server
        if prob_server.extender is None:
            self._send_error_json(
                501, "unsupported", "this server was started without an extender"
            )
            return
        document = self._read_body()
        ship_artifact = bool(document.pop("ship_artifact", False))
        mvdb = prob_server.extender(document)
        if ship_artifact:
            added, generation, sealed = prob_server.dispatcher.extend_sealed(mvdb)
            self._send_json(
                200,
                {
                    "added_components": len(added),
                    "generation": generation,
                    "artifact": sealed,
                },
            )
        else:
            added, generation = prob_server.dispatcher.extend(mvdb)
            self._send_json(200, {"added_components": len(added), "generation": generation})

    def _handle_append(self) -> None:
        document = self._read_body()
        facts = document.get("facts")
        if not isinstance(facts, dict) or not facts:
            raise _BadRequest("'facts' must be a non-empty object of relation -> rows")
        ship_artifact = bool(document.get("ship_artifact", False))
        added, generation, sealed = self.server.prob_server.dispatcher.append_facts(facts)
        response: dict[str, Any] = {"added_tuples": added, "generation": generation}
        if ship_artifact:
            response["artifact"] = sealed
        self._send_json(200, response)

    def _handle_import(self) -> None:
        # The follower half of compile-once-ship: install a sealed delta
        # produced by the leader.  Extends need the extender (the sealed
        # form names views, resolved against a freshly built spec MVDB);
        # appends are self-contained.  A stale artifact maps to 400
        # (serving_error) — the router force-restarts the diverged replica.
        prob_server = self.server.prob_server
        document = self._read_body()
        artifact = document.get("artifact")
        if not isinstance(artifact, dict):
            raise _BadRequest("'artifact' must be a sealed-delta object")
        mvdb = None
        if artifact.get("kind") == "extend" and artifact.get("new_view_names"):
            if prob_server.extender is None:
                self._send_error_json(
                    501, "unsupported", "this server was started without an extender"
                )
                return
            spec = document.get("spec")
            if not isinstance(spec, dict):
                raise _BadRequest("importing an extend artifact requires its 'spec'")
            mvdb = prob_server.extender(dict(spec))
        added, generation = prob_server.dispatcher.apply_sealed(artifact, mvdb=mvdb)
        self._send_json(200, {"added_components": len(added), "generation": generation})

    def _handle_subscribe(self) -> None:
        document = self._read_body()
        subscription = self.server.prob_server.subscriptions.subscribe(document)
        self._send_json(200, {"subscription": subscription})

    def _handle_unsubscribe(self) -> None:
        document = self._read_body()
        sub_id = document.get("id")
        if not isinstance(sub_id, str) or not sub_id:
            raise _BadRequest("'id' must be a non-empty subscription id string")
        self._send_json(200, self.server.prob_server.subscriptions.unsubscribe(sub_id))

    def _handle_notifications(self) -> None:
        # Long-poll: blocks up to 'wait_s' (capped server-side) until the
        # stream grows past the 'since' cursor.  Each request runs on its
        # own handler thread, so parked long-polls do not block queries.
        document = self._read_body()
        since = document.get("since", 0)
        wait_s = document.get("wait_s", 0.0)
        limit = document.get("limit", 1000)
        if not isinstance(since, int) or since < 0:
            raise _BadRequest("'since' must be a non-negative integer cursor")
        if not isinstance(wait_s, (int, float)) or wait_s < 0:
            raise _BadRequest("'wait_s' must be a non-negative number")
        if not isinstance(limit, int) or limit < 1:
            raise _BadRequest("'limit' must be a positive integer")
        self._send_json(
            200,
            self.server.prob_server.subscriptions.notifications(
                since=since, wait_s=float(wait_s), limit=limit
            ),
        )


class _HttpServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`ProbServer`."""

    daemon_threads = True
    # server_close() must not join handler threads: a keep-alive client
    # parked between requests would block shutdown forever.  Draining waits
    # on the active-REQUEST count (ProbServer.request_tracked) instead —
    # idle connections are droppable, in-flight requests are not.
    block_on_close = False
    prob_server: "ProbServer"


class ProbServer:
    """The over-the-wire serving process: one engine behind HTTP.

    Parameters
    ----------
    engine:
        The compiled engine to serve (typically ``repro.open(artifact).engine``).
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (see :attr:`url`).
    workers / max_queue / cache_size:
        Forwarded to the :class:`~repro.serving.dispatch.Dispatcher`.
    extender:
        Optional callable mapping a ``/v1/extend`` JSON body to an
        :class:`~repro.core.mvdb.MVDB`; without it the endpoint answers 501.
    subscriptions_path:
        Optional JSON sidecar path (conventionally ``<artifact>.subs.json``)
        where standing-query registrations are persisted; registrations
        found there at startup are re-armed immediately.
    verbose:
        Log one line per request to stderr (off by default).
    """

    def __init__(
        self,
        engine: MVQueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = DEFAULT_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        cache_size: int | None = None,
        extender: Callable[[dict[str, Any]], MVDB] | None = None,
        subscriptions_path: str | None = None,
        verbose: bool = False,
    ) -> None:
        dispatcher_kwargs: dict[str, Any] = {"workers": workers, "max_queue": max_queue}
        if cache_size is not None:
            dispatcher_kwargs["cache_size"] = cache_size
        self.dispatcher = Dispatcher(engine, **dispatcher_kwargs)
        self.subscriptions = SubscriptionService(self.dispatcher, path=subscriptions_path)
        self.extender = extender
        self.verbose = verbose
        self._http = _HttpServer((host, port), _Handler)
        self._http.prob_server = self
        self._thread: threading.Thread | None = None
        self._serving = False
        self._active = 0
        self._active_lock = threading.Lock()

    # ------------------------------------------------------------------ basics
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """The server's base URL (with the actually-bound port)."""
        return f"http://{self.host}:{self.port}"

    # --------------------------------------------------------------- lifecycle
    def start(self) -> "ProbServer":
        """Serve on a background thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise ServingError("server is already running")
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (blocking)."""
        self._serving = True
        try:
            self._http.serve_forever()
        finally:
            self._serving = False

    @contextmanager
    def request_tracked(self) -> Iterator[None]:
        """Count one in-flight request (what :meth:`stop` drains on)."""
        with self._active_lock:
            self._active += 1
        try:
            yield
        finally:
            with self._active_lock:
                self._active -= 1

    @property
    def active_requests(self) -> int:
        """Requests currently inside a handler (excluding idle keep-alives)."""
        with self._active_lock:
            return self._active

    def stop(self, grace: float = 5.0) -> None:
        """Drain in-flight requests, then shut everything down (idempotent).

        New connections stop being accepted immediately; requests already
        inside a handler get up to ``grace`` seconds to finish (idle
        keep-alive connections do not count — they are dropped).  Safe to
        call on a server that was never started: ``BaseServer.shutdown``
        blocks forever unless ``serve_forever`` is running, so it is only
        invoked while the serve loop is live.
        """
        if self._serving:
            self._http.shutdown()
        deadline = time.monotonic() + grace
        while self.active_requests and time.monotonic() < deadline:
            time.sleep(0.005)
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.subscriptions.close()
        self.dispatcher.close()

    def __enter__(self) -> "ProbServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbServer({self.url}, {self.dispatcher!r})"
