"""Closed- and open-loop load generation against the HTTP serving tier.

The generator drives a running :class:`~repro.serving.server.ProbServer`
(``python -m repro serve``) with the paper's DBLP workload mix:

* **closed loop** (:func:`run_closed`) — ``concurrency`` workers, each
  issuing its next request as soon as the previous one answers.  Measures
  the server's capacity (throughput at full utilisation);
* **open loop** (:func:`run_open`) — requests arrive on a fixed schedule of
  ``rate`` per second regardless of completions, the way independent users
  arrive.  Measures latency under a target load, including queueing;
* **ingest mode** (:func:`run_ingest`) — closed-loop query workers with a
  concurrent open-loop *writer* streaming fact appends (``/v1/append``) on
  a fixed schedule, optionally firing one view extend (``/v1/extend``)
  mid-run.  Measures read latency while the write path is busy — the
  non-blocking-write claim, as a number;
* **subscription mode** (:func:`run_subscriptions`) — register a fleet of
  standing queries (``/v1/subscribe``), stream live ingest batches that
  alternate between all-overlapping and Affiliation-only (so part of every
  tick is provably skippable), and long-poll the notification stream
  concurrently.  Measures standing-query tick cost and notify latency;

both with a **zipf-skewed** choice of query entities (:class:`WorkloadMix`),
so traffic is cache-realistic: a few hot queries dominate, with a long tail
of cold ones — exactly the regime the dispatcher's caching tiers and the
per-worker session affinity are built for.

Every worker keeps one persistent HTTP/1.1 connection (``http.client``),
so the measured numbers are request costs, not TCP-handshake costs.  Every
raw sample is tagged with its operation (``query`` / ``append`` /
``extend`` / ``sub`` / ``notify``), and the resulting :class:`LoadReport` keeps separate latency
histograms per operation (``op_latency_ms``) on top of the headline
query-only ``latency_ms`` — a slow write can never hide inside (or
inflate) the read percentiles.  ``scripts/load_smoke.py`` and
``scripts/bench_serving.py`` are thin wrappers over this module, as is the
``python -m repro loadtest`` CLI subcommand.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ServingError
from repro.serving.dispatch import latency_summary

#: Workload mix mirroring Sect. 5's query families (template name, weight).
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("students_of_advisor", 0.5),
    ("advisor_of_student", 0.3),
    ("affiliation_of_author", 0.2),
)

#: Query templates over the synthetic DBLP schema.  The entity names follow
#: the generator's conventions (advisors are ``"Advisor <g>"``, students
#: ``"Student <g>-<i>"``), so the queries hit real data.
_TEMPLATES = {
    "students_of_advisor": (
        "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
        "n1 like '%Advisor {k}%'"
    ),
    "advisor_of_student": (
        "Q(aid1) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
        "n like '%Student {k}-0%'"
    ),
    "affiliation_of_author": (
        "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Advisor {k}%'"
    ),
}


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted, zipf-skewed population of workload queries.

    Parameters
    ----------
    entities:
        Distinct entity names per template (the ``k`` in ``Advisor k``);
        should not exceed the served artifact's group count, or part of the
        traffic returns empty answers (harmless but unrealistic).
    zipf_exponent:
        Skew ``s`` of the entity popularity: entity rank ``k`` gets weight
        ``1 / (k+1)^s``.  ``0.0`` is uniform; ``1.1`` (the default) gives
        the classic hot-head/long-tail shape of real query logs.
    mix:
        ``(template name, weight)`` pairs; see ``DEFAULT_MIX``.
    """

    entities: int = 8
    zipf_exponent: float = 1.1
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX

    def population(self) -> tuple[list[str], list[float]]:
        """All query strings with their (unnormalized) sampling weights."""
        queries: list[str] = []
        weights: list[float] = []
        for template_name, template_weight in self.mix:
            template = _TEMPLATES.get(template_name)
            if template is None:
                raise ServingError(
                    f"unknown workload template {template_name!r}; "
                    f"choose from {sorted(_TEMPLATES)}"
                )
            for rank in range(self.entities):
                queries.append(template.format(k=rank))
                weights.append(template_weight / (rank + 1) ** self.zipf_exponent)
        return queries, weights

    def sampler(self, rng: random.Random) -> "Any":
        """A zero-argument callable drawing query strings from the mix."""
        queries, weights = self.population()
        cumulative: list[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            cumulative.append(total)

        def sample() -> str:
            return queries[bisect_left(cumulative, rng.random() * total)]

        return sample


@dataclass
class LoadReport:
    """The outcome of one load-generation run."""

    mode: str
    duration_s: float
    concurrency: int
    target_rate: float | None
    requests: int = 0
    ok: int = 0
    rejected: int = 0
    client_errors: int = 0
    server_errors: int = 0
    transport_errors: int = 0
    answers: int = 0
    qps: float = 0.0
    latency_ms: dict[str, float] = field(default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    #: Requests by operation tag (``query``/``append``/``extend``/``sub``/``notify``).
    ops: dict[str, int] = field(default_factory=dict)
    #: Per-operation latency summaries over *successful* requests only —
    #: ``latency_ms`` stays query-only, so writes never skew the read tail.
    op_latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def error_free(self) -> bool:
        """True when nothing 5xx'd and every request got an HTTP answer."""
        return self.server_errors == 0 and self.transport_errors == 0

    def to_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "concurrency": self.concurrency,
            "target_rate": self.target_rate,
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "transport_errors": self.transport_errors,
            "answers": self.answers,
            "qps": self.qps,
            "latency_ms": self.latency_ms,
            "statuses": self.statuses,
            "ops": self.ops,
            "op_latency_ms": self.op_latency_ms,
            "error_free": self.error_free,
        }

    def render(self) -> str:
        """A human-readable multi-line summary."""
        label = f"{self.mode} loop"
        if self.target_rate is not None:
            label += f" @ {self.target_rate:g} req/s target"
        lines = [
            f"{label}: {self.requests} requests in {self.duration_s:.1f}s "
            f"({self.qps:.1f} queries/s, concurrency {self.concurrency})",
            f"  ok {self.ok}  rejected(429) {self.rejected}  4xx {self.client_errors}  "
            f"5xx {self.server_errors}  transport {self.transport_errors}",
        ]
        if self.latency_ms:
            lines.append(
                "  latency p50 {p50_ms:.2f}ms  p95 {p95_ms:.2f}ms  p99 {p99_ms:.2f}ms  "
                "max {max_ms:.2f}ms".format(**self.latency_ms)
            )
        for op, summary in sorted(self.op_latency_ms.items()):
            if op == "query" or not summary.get("count"):
                continue
            lines.append(
                f"  {op} x{int(summary['count'])}  p50 {summary['p50_ms']:.2f}ms  "
                f"p99 {summary['p99_ms']:.2f}ms  max {summary['max_ms']:.2f}ms"
            )
        return "\n".join(lines)


class _Connection:
    """One worker's persistent HTTP connection (reconnects once on failure)."""

    def __init__(self, url: str, timeout: float) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ServingError(f"loadgen needs an http:// URL, got {url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            import socket

            self._conn = http.client.HTTPConnection(self._host, self._port, timeout=self._timeout)
            self._conn.connect()
            # Headers and body go out as separate writes; without TCP_NODELAY
            # Nagle holds the body back for the server's delayed ACK (~40ms).
            self._conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def post_query(self, query: str, method: str) -> tuple[int, int]:
        """POST one query; returns ``(status, answer_count)``.

        Transport failures are reported as status ``0`` (after one
        reconnect attempt), never raised — the load must go on.
        """
        body = json.dumps({"query": query, "method": method})
        for attempt in (0, 1):
            try:
                connection = self._connect()
                connection.request(
                    "POST", "/v1/query", body=body, headers={"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt:
                    return 0, 0
                continue
            answers = 0
            if response.status == 200:
                try:
                    answers = len(json.loads(payload)["result"]["answers"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    return 0, 0
            return response.status, answers
        return 0, 0  # pragma: no cover - unreachable

    def post_json(self, path: str, payload: dict[str, Any]) -> int:
        """POST one JSON document; returns the status (0 on transport failure).

        The write-path sibling of :meth:`post_query` (``/v1/append`` and
        ``/v1/extend`` during ingest runs); the response body is drained
        but not parsed.
        """
        body = json.dumps(payload)
        for attempt in (0, 1):
            try:
                connection = self._connect()
                connection.request(
                    "POST", path, body=body, headers={"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                response.read()
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt:
                    return 0
                continue
            return response.status
        return 0  # pragma: no cover - unreachable

    def post_json_reply(self, path: str, payload: dict[str, Any]) -> tuple[int, Any]:
        """POST one JSON document; returns ``(status, parsed body or None)``.

        Like :meth:`post_json` but parses 200 responses — the subscription
        ops need the server-assigned id and the long-poll cursor back.
        """
        body = json.dumps(payload)
        for attempt in (0, 1):
            try:
                connection = self._connect()
                connection.request(
                    "POST", path, body=body, headers={"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt:
                    return 0, None
                continue
            document = None
            if response.status == 200:
                try:
                    document = json.loads(raw)
                except json.JSONDecodeError:
                    return 0, None
            return response.status, document
        return 0, None  # pragma: no cover - unreachable


def _summarize(
    mode: str,
    duration_s: float,
    concurrency: int,
    target_rate: float | None,
    samples: list[tuple[str, int, float, int]],
) -> LoadReport:
    report = LoadReport(
        mode=mode, duration_s=duration_s, concurrency=concurrency, target_rate=target_rate
    )
    latencies_by_op: dict[str, list[float]] = {}
    for op, status, latency_s, answers in samples:
        report.requests += 1
        report.ops[op] = report.ops.get(op, 0) + 1
        report.statuses[str(status)] = report.statuses.get(str(status), 0) + 1
        if status == 0:
            report.transport_errors += 1
        elif status == 429:
            report.rejected += 1
        elif 200 <= status < 300:
            report.ok += 1
            report.answers += answers
            latencies_by_op.setdefault(op, []).append(latency_s)
        elif 400 <= status < 500:
            report.client_errors += 1
        else:
            report.server_errors += 1
    for op, latencies in latencies_by_op.items():
        latencies.sort()
        report.op_latency_ms[op] = latency_summary(latencies)
    report.latency_ms = report.op_latency_ms.get("query", latency_summary([]))
    report.qps = report.ok / duration_s if duration_s > 0 else 0.0
    return report


def _closed_samples(
    url: str,
    duration_s: float,
    concurrency: int,
    mix: WorkloadMix,
    method: str,
    seed: int,
    timeout: float,
) -> list[tuple[str, int, float, int]]:
    """The closed-loop worker pool of one process; returns raw samples."""
    deadline = time.monotonic() + duration_s
    all_samples: list[tuple[str, int, float, int]] = []
    merge_lock = threading.Lock()

    def worker(index: int) -> None:
        rng = random.Random(seed * 7919 + index)
        sample_query = mix.sampler(rng)
        connection = _Connection(url, timeout)
        samples: list[tuple[str, int, float, int]] = []
        try:
            while time.monotonic() < deadline:
                query = sample_query()
                start = time.monotonic()
                status, answers = connection.post_query(query, method)
                samples.append(("query", status, time.monotonic() - start, answers))
        finally:
            connection.close()
            with merge_lock:
                all_samples.extend(samples)

    threads = [threading.Thread(target=worker, args=(index,)) for index in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return all_samples


def run_closed(
    url: str,
    duration_s: float = 10.0,
    concurrency: int = 8,
    mix: WorkloadMix | None = None,
    method: str = "mvindex",
    seed: int = 0,
    timeout: float = 30.0,
    processes: int = 1,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` workers back-to-back for ``duration_s``.

    With ``processes > 1`` the worker pool is forked into that many load
    *processes* (``concurrency`` threads each), and the raw samples are
    merged in the parent so percentiles stay exact.  A single Python
    process tops out around a few thousand requests/s on its own GIL —
    not enough to saturate a multi-replica fleet, which would silently
    turn a server benchmark into a client benchmark.
    """
    mix = mix or WorkloadMix()
    # Fail fast (in the caller's thread) on a bad URL or workload mix —
    # inside a worker these would die silently into an empty report.
    _Connection(url, timeout).close()
    mix.population()
    if processes < 1:
        raise ServingError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        start = time.monotonic()
        samples = _closed_samples(url, duration_s, concurrency, mix, method, seed, timeout)
        elapsed = time.monotonic() - start
        return _summarize("closed", elapsed, concurrency, None, samples)

    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        raise ServingError("processes > 1 requires the 'fork' start method (POSIX)")
    context = multiprocessing.get_context("fork")

    def child(index: int, conn: Any) -> None:
        samples = _closed_samples(
            url, duration_s, concurrency, mix, method, seed + 7907 * (index + 1), timeout
        )
        conn.send(samples)
        conn.close()

    pipes = []
    children = []
    start = time.monotonic()
    for index in range(processes):
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(target=child, args=(index, child_conn), daemon=True)
        process.start()
        child_conn.close()
        pipes.append(parent_conn)
        children.append(process)
    all_samples: list[tuple[str, int, float, int]] = []
    for parent_conn, process in zip(pipes, children):
        try:
            # Receive BEFORE join: a child blocked on a full pipe buffer
            # cannot exit, so joining first would deadlock on big samples.
            all_samples.extend(parent_conn.recv())
        except EOFError:  # pragma: no cover - a load child crashed
            pass
        parent_conn.close()
        process.join()
    elapsed = time.monotonic() - start
    return _summarize("closed", elapsed, concurrency * processes, None, all_samples)


def run_open(
    url: str,
    duration_s: float = 10.0,
    rate: float = 50.0,
    mix: WorkloadMix | None = None,
    method: str = "mvindex",
    seed: int = 0,
    max_outstanding: int = 64,
    timeout: float = 30.0,
) -> LoadReport:
    """Open-loop load: arrivals on a fixed ``rate``/s schedule.

    Up to ``max_outstanding`` requests run concurrently; when the server
    falls behind the schedule, the measured latency grows to include the
    queueing delay — that is the point of an open loop.
    """
    if rate <= 0:
        raise ServingError(f"open-loop rate must be positive, got {rate}")
    mix = mix or WorkloadMix()
    _Connection(url, timeout).close()  # fail fast on a bad URL
    mix.population()
    rng = random.Random(seed * 104729 + 1)
    sample_query = mix.sampler(rng)
    local = threading.local()
    all_samples: list[tuple[str, int, float, int]] = []
    merge_lock = threading.Lock()
    slots = threading.Semaphore(max_outstanding)

    def fire(query: str, scheduled: float) -> None:
        # The slot MUST be released and the sample recorded no matter what:
        # a raising fire() would otherwise leak its slot and eventually
        # deadlock the arrival loop on slots.acquire().
        status, answers = 0, 0
        try:
            connection = getattr(local, "connection", None)
            if connection is None:
                connection = local.connection = _Connection(url, timeout)
            status, answers = connection.post_query(query, method)
        finally:
            # Latency is measured from the *scheduled* arrival, so schedule
            # slip (the server falling behind) shows up as latency.
            latency = time.monotonic() - scheduled
            with merge_lock:
                all_samples.append(("query", status, latency, answers))
            slots.release()

    from concurrent.futures import ThreadPoolExecutor

    start = time.monotonic()
    planned = int(duration_s * rate)
    with ThreadPoolExecutor(max_workers=max_outstanding) as pool:
        for index in range(planned):
            scheduled = start + index / rate
            now = time.monotonic()
            if scheduled > now:
                time.sleep(scheduled - now)
            slots.acquire()
            # The TRUE scheduled arrival is the latency baseline: when the
            # server (or the outstanding-slot cap) falls behind the
            # schedule, the slip must show up as latency — that is the
            # entire point of an open loop.
            pool.submit(fire, sample_query(), scheduled)
    elapsed = time.monotonic() - start
    return _summarize("open", elapsed, max_outstanding, rate, all_samples)


def dblp_ingest_facts(
    batch_index: int, batch_size: int = 4, base_id: int = 900000
) -> dict[str, list]:
    """A ``/v1/append`` payload of fresh synthetic DBLP facts.

    Batches are disjoint (author ids start at ``base_id`` and advance by
    ``batch_size`` per batch), so every append adds genuinely new tuples —
    a deterministic Author row plus a probabilistic Student row per id.
    The new ids join none of the workload queries' entities, which keeps
    the read answers stable while the write path stays genuinely busy.
    """
    start = base_id + batch_index * batch_size
    return {
        "Author": [[start + i, f"Ingest Author {start + i}"] for i in range(batch_size)],
        "Student": [[[start + i, 2020], 1.5] for i in range(batch_size)],
    }


def run_ingest(
    url: str,
    duration_s: float = 15.0,
    concurrency: int = 4,
    mix: WorkloadMix | None = None,
    method: str = "mvindex",
    seed: int = 0,
    timeout: float = 30.0,
    append_interval_s: float = 1.0,
    append_batch: int = 4,
    facts_factory: Any = None,
    extend_spec: dict[str, Any] | None = None,
    extend_at_s: float | None = None,
) -> LoadReport:
    """Mixed read/write load: closed-loop queries plus an open-loop writer.

    ``concurrency`` query workers hammer ``/v1/query`` back-to-back for the
    whole run while one writer thread streams a fact append
    (``facts_factory(batch_index)``, default :func:`dblp_ingest_facts`)
    every ``append_interval_s`` seconds and — when ``extend_spec`` is given
    — fires exactly one ``/v1/extend`` at ``extend_at_s`` (default:
    mid-run).  Writer operations arrive on their schedule regardless of
    how long they take (open loop), so a blocking write path shows up as
    read-latency spikes in the query histogram, tagged separately from the
    ``append`` / ``extend`` entries in ``op_latency_ms``.
    """
    mix = mix or WorkloadMix()
    _Connection(url, timeout).close()  # fail fast on a bad URL
    mix.population()
    if append_interval_s <= 0:
        raise ServingError(f"append_interval_s must be positive, got {append_interval_s}")
    if facts_factory is None:
        def facts_factory(batch_index: int) -> dict[str, list]:
            return dblp_ingest_facts(batch_index, batch_size=append_batch)
    extend_at = duration_s / 2.0 if extend_at_s is None else extend_at_s

    start = time.monotonic()
    deadline = start + duration_s
    writer_samples: list[tuple[str, int, float, int]] = []

    def writer() -> None:
        connection = _Connection(url, timeout)
        batch_index = 0
        extended = extend_spec is None
        try:
            while True:
                scheduled = start + batch_index * append_interval_s
                now = time.monotonic()
                if scheduled >= deadline:
                    return
                if scheduled > now:
                    time.sleep(scheduled - now)
                if not extended and time.monotonic() - start >= extend_at:
                    fired = time.monotonic()
                    status = connection.post_json("/v1/extend", dict(extend_spec))
                    writer_samples.append(("extend", status, time.monotonic() - fired, 0))
                    extended = True
                fired = time.monotonic()
                status = connection.post_json(
                    "/v1/append", {"facts": facts_factory(batch_index)}
                )
                writer_samples.append(("append", status, time.monotonic() - fired, 0))
                batch_index += 1
        finally:
            connection.close()

    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    samples = _closed_samples(url, duration_s, concurrency, mix, method, seed, timeout)
    writer_thread.join(timeout=timeout)
    elapsed = time.monotonic() - start
    return _summarize("ingest", elapsed, concurrency, None, samples + writer_samples)


def dblp_affiliation_facts(
    batch_index: int, batch_size: int = 4, base_id: int = 950000
) -> dict[str, list]:
    """An Affiliation-only ``/v1/append`` payload with fresh author ids.

    The ids are brand new, so the rows join no Author/Student/Advisor tuple
    and no RecentCoPub pair — V3 gains no ground rows and no MV-index
    component is recompiled.  A delta built from such a batch touches only
    the ``Affiliation`` relation, which makes every standing query over the
    advisor/student templates *provably skippable* — the driver of the
    skip-fraction assertion in the subscription smoke.
    """
    start = base_id + batch_index * batch_size
    return {
        "Affiliation": [
            [[start + i, f"Ingest Inst {start + i}"], 1.2] for i in range(batch_size)
        ]
    }


def dblp_hot_facts(
    batch_index: int, batch_size: int = 2, base_id: int = 980000, entities: int = 4
) -> dict[str, list]:
    """A ``/v1/append`` payload that genuinely changes standing answers.

    Adds fresh authors whose *names* contain a hot advisor entity
    (``Advisor <k>``, rotating through the mix's entities) together with an
    Affiliation row each — the ``affiliation_of_author`` template's answer
    set for that entity gains rows, so change- and threshold-subscriptions
    over it must fire on this tick.
    """
    start = base_id + batch_index * batch_size
    k = batch_index % max(1, entities)
    return {
        "Author": [
            [start + i, f"Ingest Advisor {k} Fellow {start + i}"]
            for i in range(batch_size)
        ],
        "Affiliation": [
            [[start + i, f"Ingest Inst {start + i}"], 3.0] for i in range(batch_size)
        ],
    }


def subscription_batch_facts(
    batch_index: int, batch_size: int = 4, entities: int = 4
) -> dict[str, list]:
    """The exact payload :func:`run_subscriptions`' writer sends per batch.

    Public so smoke checks can replay the identical append sequence into an
    in-process reference database and assert bit-identical answers.
    """
    rotation = batch_index % 3
    if rotation == 0:
        return dblp_hot_facts(batch_index, batch_size=batch_size, entities=entities)
    if rotation == 1:
        return dblp_affiliation_facts(batch_index, batch_size=batch_size)
    return dblp_ingest_facts(batch_index, batch_size=batch_size, base_id=920000)


def run_subscriptions(
    url: str,
    subscriptions: int = 100,
    duration_s: float = 15.0,
    concurrency: int = 2,
    mix: WorkloadMix | None = None,
    method: str = "mvindex",
    seed: int = 0,
    timeout: float = 30.0,
    append_interval_s: float = 0.5,
    append_batch: int = 4,
) -> tuple[LoadReport, dict[str, Any]]:
    """Standing-query load: register, ingest, long-poll — all concurrently.

    First registers ``subscriptions`` standing queries drawn from the mix
    (alternating change and threshold predicates), tagged ``sub`` in the
    report.  Then, for ``duration_s``: one writer streams append batches
    every ``append_interval_s`` seconds, rotating through
    :func:`dblp_hot_facts` (answers genuinely change — notifications must
    fire), :func:`dblp_affiliation_facts` (only the affiliation template's
    subscriptions re-evaluate — everyone else is provably skipped) and
    :func:`dblp_ingest_facts` (overlaps every template but changes no
    answer); one listener long-polls ``/v1/notifications`` with a running
    cursor, tagged ``notify``; and ``concurrency`` closed-loop workers keep
    a light query stream going.  The headline ``latency_ms`` stays
    query-only — subscription ops live in their own ``op_latency_ms``
    entries.

    Returns ``(report, extras)`` where ``extras`` carries the registered
    subscription ids and every notification collected (each with its
    server-assigned ``seq``), so callers can assert the exactly-once
    contract: seq numbers contiguous, no gaps, no duplicates.
    """
    mix = mix or WorkloadMix()
    _Connection(url, timeout).close()  # fail fast on a bad URL
    mix.population()
    if append_interval_s <= 0:
        raise ServingError(f"append_interval_s must be positive, got {append_interval_s}")
    rng = random.Random(seed * 48611 + 3)
    sample_query = mix.sampler(rng)

    registration = _Connection(url, timeout)
    registration_samples: list[tuple[str, int, float, int]] = []
    subscription_ids: list[str] = []
    try:
        for index in range(subscriptions):
            payload: dict[str, Any] = {"query": sample_query(), "method": method}
            if index % 2:
                payload["predicate"] = {"kind": "threshold", "op": ">=", "value": 0.5}
            started = time.monotonic()
            status, document = registration.post_json_reply("/v1/subscribe", payload)
            registration_samples.append(("sub", status, time.monotonic() - started, 0))
            if status == 200 and isinstance(document, dict):
                subscription_ids.append(document["subscription"]["id"])
    finally:
        registration.close()

    start = time.monotonic()
    deadline = start + duration_s
    writer_samples: list[tuple[str, int, float, int]] = []

    def writer() -> None:
        connection = _Connection(url, timeout)
        batch_index = 0
        try:
            while True:
                scheduled = start + batch_index * append_interval_s
                now = time.monotonic()
                if scheduled >= deadline:
                    return
                if scheduled > now:
                    time.sleep(scheduled - now)
                facts = subscription_batch_facts(
                    batch_index, batch_size=append_batch, entities=mix.entities
                )
                fired = time.monotonic()
                status = connection.post_json("/v1/append", {"facts": facts})
                writer_samples.append(("append", status, time.monotonic() - fired, 0))
                batch_index += 1
        finally:
            connection.close()

    notifications: list[dict[str, Any]] = []
    notify_samples: list[tuple[str, int, float, int]] = []
    stop_listening = threading.Event()

    def listener() -> None:
        connection = _Connection(url, timeout)
        cursor = 0

        def poll(wait_s: float, limit: int) -> None:
            nonlocal cursor
            started = time.monotonic()
            status, document = connection.post_json_reply(
                "/v1/notifications", {"since": cursor, "wait_s": wait_s, "limit": limit}
            )
            notify_samples.append(("notify", status, time.monotonic() - started, 0))
            if status == 200 and isinstance(document, dict):
                notifications.extend(document.get("notifications", []))
                cursor = document.get("next", cursor)

        try:
            while not stop_listening.is_set():
                poll(wait_s=1.0, limit=500)
            # Ticks are synchronous with appends, so once the writer's last
            # POST answered, everything it fired is in the log — one final
            # non-blocking poll drains the tail.
            poll(wait_s=0.0, limit=100000)
        finally:
            connection.close()

    writer_thread = threading.Thread(target=writer, daemon=True)
    listener_thread = threading.Thread(target=listener, daemon=True)
    writer_thread.start()
    listener_thread.start()
    samples = _closed_samples(url, duration_s, concurrency, mix, method, seed, timeout)
    writer_thread.join(timeout=timeout)
    stop_listening.set()
    listener_thread.join(timeout=timeout)
    elapsed = time.monotonic() - start
    report = _summarize(
        "subscriptions",
        elapsed,
        concurrency,
        None,
        samples + registration_samples + writer_samples + notify_samples,
    )
    extras = {
        "subscription_ids": subscription_ids,
        "notifications": notifications,
        # One writer sample per batch, in order — a parity reference can
        # replay subscription_batch_facts(0..append_batches-1) verbatim.
        "append_batches": len(writer_samples),
    }
    return report, extras


def fetch_stats(url: str, timeout: float = 10.0) -> dict[str, Any]:
    """GET ``/v1/stats`` from a running server (for probes and smoke checks)."""
    import urllib.request

    with urllib.request.urlopen(url.rstrip("/") + "/v1/stats", timeout=timeout) as response:
        return json.loads(response.read())
