"""The fleet front-end: one HTTP port, consistent-hash fan-out, roll-up stats.

:class:`Router` accepts HTTP on a single port and relays every request to a
:class:`~repro.serving.fleet.ReplicaFleet` replica over persistent upstream
connections.  It speaks exactly the :class:`~repro.serving.server.ProbServer`
protocol, so :func:`repro.connect_remote` works unchanged against a fleet.

**Routing.**  ``/v1/query`` requests are routed by a consistent hash of the
query's *canonical* key (:func:`~repro.serving.canonical.canonical_key`) —
the cluster-level generalization of the per-worker crc32 affinity inside
each replica's :class:`~repro.serving.dispatch.Dispatcher`.  Re-phrasings of
the same query land on the same replica, whose caches are hot for it, and
the :class:`HashRing` keeps ``(K-1)/K`` of all keys in place when one of
``K`` replicas dies.  Batches and other bodies route by a hash of the raw
body bytes.  A small LRU from body bytes to routing key means the steady
state never re-parses: repeated request bodies hit the cache directly.

**Retries.**  Queries are read-only and idempotent, so a transport failure
walks the ring: pooled connection → fresh dial to the same replica → the
next alive replica, and only when every replica is unreachable does the
client see a 503.  HTTP-level errors from a replica (400/429/...) are
relayed as-is — a full admission queue is backpressure, not a routing
failure.  Every transport failure is reported to the fleet's health
monitor, which restarts replicas that stay unresponsive.

**Mutations.**  ``POST /v1/extend`` and ``POST /v1/append`` are serialized
by a router-level lock and broadcast *compile-once-ship-artifact*: the
first alive replica (the leader) validates and applies the mutation with
``"ship_artifact": true``, returning the sealed compiled delta (a rejected
body is relayed verbatim and touches nothing else).  The artifact is
appended to the fleet's replay log, then every other alive replica
*imports* it through ``POST /v1/import`` — no recompilation, so all
replicas hold byte-identical state.  A replica that fails or rejects the
import (stale epoch) is force-restarted and converges by replaying the
log; the generation counter inside each replica advances in lock-step, and
the cluster ``/v1/stats`` exposes both ``generation`` (the floor every
replica reached) and ``generation_max`` (the frontier).  The artifact is
stripped from the response the client sees; ``/v1/import`` itself is
replica-internal and answers 404 at the router.

**Roll-up.**  ``GET /v1/stats`` and ``/metrics`` fan out to all alive
replicas and merge their documents with
:func:`~repro.serving.dispatch.merge_stats`; counters from dead
incarnations are folded into a retired baseline so cluster counters stay
monotonic across restarts.

The HTTP front end is a hand-rolled minimal parser on raw sockets rather
than :mod:`http.server` — the router sits in front of ``N`` replicas and
must not become the bottleneck; parsing just the request line, the three
headers it needs, and the body keeps per-request overhead far below one
replica's handler cost.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
import zlib
from bisect import bisect_right
from collections import OrderedDict, deque
from contextlib import contextmanager
from http.client import responses as _REASONS
from typing import Any, Iterator, Sequence

from repro.errors import ServingError
from repro.query.parser import parse_query
from repro.serving.canonical import canonical_key
from repro.serving.dispatch import merge_stats, render_metrics
from repro.serving.fleet import ReplicaFleet
from repro.serving.server import MAX_BODY_BYTES

#: Virtual nodes per replica on the hash ring (evens out the key split).
DEFAULT_VNODES = 64
#: Entries of the body-bytes -> routing-key LRU.
_KEY_CACHE_SIZE = 4096
#: Pooled idle upstream connections kept per replica.
_POOL_SIZE = 16
#: Seconds the router waits for a replica to answer one request.
DEFAULT_UPSTREAM_TIMEOUT = 120.0

_GET_PATHS = ("/healthz", "/v1/stats", "/metrics", "/v1/subscriptions")
_POST_PATHS = (
    "/v1/query",
    "/v1/query_batch",
    "/v1/extend",
    "/v1/append",
    "/v1/subscribe",
    "/v1/unsubscribe",
    "/v1/notifications",
)


class HashRing:
    """Consistent hashing over replica slot ids.

    Each slot contributes ``vnodes`` points at ``crc32("slot:vnode")`` on a
    32-bit ring.  The ring is built once over *all* slots and never rebuilt:
    dead replicas are skipped at lookup time via the caller's alive filter,
    so a restarted replica's keys return home instead of resettling.
    """

    def __init__(self, slots: Sequence[int], vnodes: int = DEFAULT_VNODES) -> None:
        if not slots:
            raise ServingError("a hash ring needs at least one slot")
        points = sorted(
            (zlib.crc32(f"{slot}:{vnode}".encode("ascii")), slot)
            for slot in slots
            for vnode in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._slots = [slot for _, slot in points]
        self._distinct = len(set(slots))

    def order(self, key: str) -> list[int]:
        """All distinct slots in ring-walk order from ``key``'s position.

        ``order(key)[0]`` is the home replica; the tail is the failover
        sequence, which is what makes retries deterministic per key.
        """
        position = bisect_right(self._hashes, zlib.crc32(key.encode("utf-8")))
        count = len(self._slots)
        seen: set[int] = set()
        walk: list[int] = []
        for step in range(count):
            slot = self._slots[(position + step) % count]
            if slot not in seen:
                seen.add(slot)
                walk.append(slot)
                if len(walk) == self._distinct:
                    break
        return walk


class _UpstreamError(Exception):
    """A transport-level failure talking to one replica (retryable)."""


class _Upstream:
    """One pooled keep-alive connection to a replica."""

    __slots__ = ("sock", "rfile")

    def __init__(self, address: tuple[str, int], timeout: float) -> None:
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.rfile = self.sock.makefile("rb")

    def close(self) -> None:
        try:
            self.rfile.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class _RouterTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Like ProbServer's _HttpServer: never join handler threads on close —
    # idle keep-alive clients must not block shutdown; stop() drains on the
    # router's own active-request count instead.
    block_on_close = False
    request_queue_size = 128
    router: "Router"


class _RouterHandler(socketserver.StreamRequestHandler):
    """One client connection: parse minimal HTTP/1.1, relay, repeat."""

    disable_nagle_algorithm = True
    server: _RouterTCPServer

    def handle(self) -> None:
        router = self.server.router
        while True:
            try:
                request = self._read_request()
            except _BadClient as exc:
                try:
                    router._respond(self.wfile, 400, _error_body("bad_request", str(exc), 400),
                                    keep_alive=False)
                except OSError:
                    pass
                return
            except OSError:
                return
            if request is None:
                return
            method, path, body, keep_alive = request
            with router._request_tracked():
                try:
                    keep_alive = router._handle_one(self.wfile, method, path, body, keep_alive)
                except OSError:
                    return
            if not keep_alive:
                return

    def _read_request(self) -> tuple[str, str, bytes, bool] | None:
        request_line = self.rfile.readline(8192)
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadClient("malformed request line")
        method = parts[0].decode("ascii", "replace")
        path = parts[1].decode("ascii", "replace")
        keep_alive = parts[2] != b"HTTP/1.0"
        content_length = 0
        for _ in range(100):
            header = self.rfile.readline(8192)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.partition(b":")
            lowered = name.strip().lower()
            if lowered == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadClient("invalid Content-Length") from None
            elif lowered == b"connection":
                token = value.strip().lower()
                if token == b"close":
                    keep_alive = False
                elif token == b"keep-alive":
                    keep_alive = True
        else:
            raise _BadClient("too many headers")
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            raise _BadClient(f"request body of {content_length} bytes exceeds {MAX_BODY_BYTES}")
        body = self.rfile.read(content_length) if content_length else b""
        if len(body) < content_length:
            return None  # client went away mid-body
        return method, path, body, keep_alive


class _BadClient(Exception):
    """The client sent something unparsable; answer 400 and drop it."""


def _error_body(error_type: str, message: str, status: int) -> bytes:
    return json.dumps(
        {"error": {"type": error_type, "message": message, "status": status}},
        sort_keys=True,
    ).encode("utf-8")


class Router:
    """One port in front of a replica fleet; see the module docstring.

    The router owns the fleet's lifecycle: :meth:`start` (or
    :meth:`serve_forever`) starts the fleet first and binds the listening
    socket only after every replica passed its first health check, and
    :meth:`stop` drains in-flight requests before stopping the fleet.
    """

    def __init__(
        self,
        fleet: ReplicaFleet,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        vnodes: int = DEFAULT_VNODES,
        upstream_timeout: float = DEFAULT_UPSTREAM_TIMEOUT,
        verbose: bool = False,
    ) -> None:
        self.fleet = fleet
        self.verbose = verbose
        self._host = host
        self._port = port
        self._upstream_timeout = upstream_timeout
        self.ring = HashRing(fleet.slots, vnodes=vnodes)
        self._http: _RouterTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._serving = False
        self._active = 0
        self._active_lock = threading.Lock()
        self._pools: dict[int, deque[_Upstream]] = {slot: deque() for slot in fleet.slots}
        self._pool_lock = threading.Lock()
        self._key_cache: OrderedDict[bytes, str] = OrderedDict()
        self._key_lock = threading.Lock()
        self._extend_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._last_stats: dict[int, dict[str, Any]] = {}
        self._retired: dict[str, Any] | None = None
        self._counter_lock = threading.Lock()
        self._retries_total = 0
        self._upstream_errors_total = 0
        fleet.on_death = self._on_replica_death

    # ------------------------------------------------------------------ basics
    @property
    def host(self) -> str:
        if self._http is None:
            return self._host
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        if self._http is None:
            raise ServingError("router is not bound yet (call start())")
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL — available once the fleet is up and the socket is bound."""
        return f"http://{self.host}:{self.port}"

    # --------------------------------------------------------------- lifecycle
    def bind(self) -> "Router":
        """Start the fleet and bind the listening socket (idempotent).

        Deliberately sequenced so that :attr:`url` only becomes readable —
        and the port only starts accepting — *after* every replica passed
        its first health check: a script that waits on the printed URL can
        never race a half-up fleet.
        """
        if self._http is not None:
            return self
        self.fleet.start()
        try:
            self._http = _RouterTCPServer((self._host, self._port), _RouterHandler)
            self._http.router = self
        except BaseException:
            self.fleet.stop()
            raise
        return self

    def start(self) -> "Router":
        """Start the fleet, bind, and serve on a background thread."""
        if self._thread is not None:
            raise ServingError("router is already running")
        self.bind()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Start the fleet (if needed) and serve on the calling thread."""
        self.bind()
        self._serving = True
        try:
            self._http.serve_forever()  # type: ignore[union-attr]
        finally:
            self._serving = False

    @contextmanager
    def _request_tracked(self) -> Iterator[None]:
        with self._active_lock:
            self._active += 1
        try:
            yield
        finally:
            with self._active_lock:
                self._active -= 1

    @property
    def active_requests(self) -> int:
        with self._active_lock:
            return self._active

    def stop(self, grace: float = 5.0) -> None:
        """Drain in-flight requests, close the socket, stop the fleet."""
        if self._http is not None:
            if self._serving:
                self._http.shutdown()
            deadline = time.monotonic() + grace
            while self.active_requests and time.monotonic() < deadline:
                time.sleep(0.005)
            self._http.server_close()
            self._http = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._pool_lock:
            for pool in self._pools.values():
                while pool:
                    pool.pop().close()
        self.fleet.stop(grace=grace)

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = self._http.server_address if self._http else "unbound"
        return f"Router({bound}, {self.fleet!r})"

    # ------------------------------------------------------------ client side
    def _respond(
        self,
        wfile: Any,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = True,
        extra_headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        wfile.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)

    def _handle_one(
        self, wfile: Any, method: str, path: str, body: bytes, keep_alive: bool
    ) -> bool:
        if method == "GET":
            if path == "/healthz":
                self._handle_healthz(wfile, keep_alive)
            elif path == "/v1/stats":
                document = self.cluster_stats()
                self._respond(
                    wfile, 200, json.dumps(document, sort_keys=True).encode("utf-8"),
                    keep_alive=keep_alive,
                )
            elif path == "/metrics":
                self._respond(
                    wfile, 200, self.metrics_text().encode("utf-8"),
                    content_type="text/plain; version=0.0.4", keep_alive=keep_alive,
                )
            elif path == "/v1/subscriptions":
                # Replicated state: every replica holds an identical
                # registry, so any alive replica's answer is the cluster's.
                self._handle_replicated_read(wfile, "GET", path, b"", keep_alive)
            elif path in _POST_PATHS:
                self._respond(
                    wfile, 405,
                    _error_body("method_not_allowed", f"POST required for {path}", 405),
                    keep_alive=keep_alive,
                )
            else:
                self._respond(
                    wfile, 404, _error_body("not_found", f"unknown path {path!r}", 404),
                    keep_alive=keep_alive,
                )
        elif method == "POST":
            if path in ("/v1/extend", "/v1/append"):
                self._handle_mutation(wfile, path, body, keep_alive)
            elif path in ("/v1/subscribe", "/v1/unsubscribe"):
                self._handle_subscription(wfile, path, body, keep_alive)
            elif path == "/v1/notifications":
                # Replicas regenerate byte-identical notification streams
                # from the replicated op log, so a long-poll cursor is valid
                # against any alive replica — including one that was
                # SIGKILLed and re-forked since the client's last read.
                self._handle_replicated_read(wfile, "POST", path, body, keep_alive)
            elif path in ("/v1/query", "/v1/query_batch"):
                self._handle_routed(wfile, path, body, keep_alive)
            elif path in _GET_PATHS:
                self._respond(
                    wfile, 405,
                    _error_body("method_not_allowed", f"GET required for {path}", 405),
                    keep_alive=keep_alive,
                )
            else:
                self._respond(
                    wfile, 404, _error_body("not_found", f"unknown path {path!r}", 404),
                    keep_alive=keep_alive,
                )
        else:
            self._respond(
                wfile, 405,
                _error_body("method_not_allowed", f"unsupported method {method}", 405),
                keep_alive=False,
            )
            return False
        return keep_alive

    def _handle_healthz(self, wfile: Any, keep_alive: bool) -> None:
        alive = len(self.fleet.alive_slots())
        document = {
            "status": "ok" if alive else "down",
            "role": "router",
            "replicas": self.fleet.replicas,
            "replicas_alive": alive,
        }
        self._respond(
            wfile,
            200 if alive else 503,
            json.dumps(document, sort_keys=True).encode("utf-8"),
            keep_alive=keep_alive,
        )

    # --------------------------------------------------------------- routing
    def routing_key(self, path: str, body: bytes) -> str:
        """The consistent-hash key for one request body (LRU-cached).

        ``/v1/query`` bodies hash by the canonical UCQ key so re-phrasings
        of one query share a replica (mirroring the dispatcher's worker
        affinity); anything else — batches, unparsable bodies — hashes the
        raw bytes, which still pins exact repeats.
        """
        cache_key = body if len(body) <= 4096 else body[:2048] + body[-2048:]
        with self._key_lock:
            cached = self._key_cache.get(cache_key)
            if cached is not None:
                self._key_cache.move_to_end(cache_key)
                return cached
        key = f"raw:{zlib.crc32(body)}:{len(body)}"
        if path == "/v1/query":
            try:
                document = json.loads(body)
                raw_query = document.get("query")
                if isinstance(raw_query, str) and raw_query.strip():
                    key = canonical_key(parse_query(raw_query))
            except Exception:
                pass  # the replica will produce the real 400
        with self._key_lock:
            self._key_cache[cache_key] = key
            if len(self._key_cache) > _KEY_CACHE_SIZE:
                self._key_cache.popitem(last=False)
        return key

    def _handle_routed(self, wfile: Any, path: str, body: bytes, keep_alive: bool) -> None:
        """Relay an idempotent request, walking the ring on transport failure."""
        key = self.routing_key(path, body)
        first = True
        for slot in self.ring.order(key):
            if not self.fleet.is_alive(slot):
                continue
            if not first:
                with self._counter_lock:
                    self._retries_total += 1
            first = False
            try:
                status, content_type, response, retry_after = self._forward(
                    slot, "POST", path, body
                )
            except _UpstreamError:
                self._note_upstream_error(slot)
                continue
            extra = [("Retry-After", retry_after)] if retry_after else []
            self._respond(
                wfile, status, response, content_type=content_type,
                keep_alive=keep_alive, extra_headers=extra,
            )
            return
        self._respond(
            wfile, 503,
            _error_body("serving_error", "no replica could be reached", 503),
            keep_alive=keep_alive,
        )

    def _handle_replicated_read(
        self, wfile: Any, method: str, path: str, body: bytes, keep_alive: bool
    ) -> None:
        """Relay a read of replicated subscription state to any alive replica."""
        for slot in self.fleet.alive_slots():
            try:
                status, content_type, response, retry_after = self._forward(
                    slot, method, path, body
                )
            except _UpstreamError:
                self._note_upstream_error(slot)
                continue
            extra = [("Retry-After", retry_after)] if retry_after else []
            self._respond(
                wfile, status, response, content_type=content_type,
                keep_alive=keep_alive, extra_headers=extra,
            )
            return
        self._respond(
            wfile, 503,
            _error_body("serving_error", "no replica could be reached", 503),
            keep_alive=keep_alive,
        )

    def _handle_subscription(
        self, wfile: Any, path: str, body: bytes, keep_alive: bool
    ) -> None:
        """Broadcast a subscribe/unsubscribe through the ordered op log.

        Same shape as :meth:`_handle_mutation` (and serialized by the same
        lock, so subscription ops and mutations interleave in one total
        order): the first alive replica is the leader — it validates the
        spec and, for a subscribe, assigns the deterministic id — then the
        id-stamped spec is appended to the replay log and broadcast to the
        remaining replicas.  Every replica registers the same subscription
        under the same id at the same point of the op order, which is what
        keeps their notification streams byte-identical.
        """
        try:
            spec = json.loads(body)
            if not isinstance(spec, dict):
                raise ValueError("not an object")
        except ValueError as exc:
            self._respond(
                wfile, 400,
                _error_body("bad_request", f"request body is not a JSON object: {exc}", 400),
                keep_alive=keep_alive,
            )
            return
        with self._extend_lock:
            leader_response = None
            leader_slot = None
            remaining = []
            for slot in self.fleet.alive_slots():
                if leader_response is None:
                    try:
                        leader_response = self._forward(slot, "POST", path, body)
                        leader_slot = slot
                    except _UpstreamError:
                        self._note_upstream_error(slot)
                else:
                    remaining.append(slot)
            if leader_response is None:
                self._respond(
                    wfile, 503,
                    _error_body("serving_error", "no replica could be reached", 503),
                    keep_alive=keep_alive,
                )
                return
            status, content_type, response, retry_after = leader_response
            if status != 200:
                extra = [("Retry-After", retry_after)] if retry_after else []
                self._respond(
                    wfile, status, response, content_type=content_type,
                    keep_alive=keep_alive, extra_headers=extra,
                )
                return
            if path == "/v1/subscribe":
                document = json.loads(response)
                stamped = {**spec, "id": document["subscription"]["id"]}
                entry: dict[str, Any] = {"kind": "subscribe", "subscription": stamped}
                follower_body = json.dumps(stamped, sort_keys=True).encode("utf-8")
            else:
                entry = {"kind": "unsubscribe", "id": spec.get("id")}
                follower_body = body
            log_len = self.fleet.record_extend(entry)
            self.fleet.note_extend_applied(leader_slot, log_len)  # type: ignore[arg-type]
            for slot in remaining:
                if self.fleet.applied_len(slot) >= log_len:
                    continue  # a fresh fork already replayed this op
                try:
                    follower_status, _, _, _ = self._forward(
                        slot, "POST", path, follower_body
                    )
                except _UpstreamError:
                    self._note_upstream_error(slot)
                    self.fleet.force_restart(slot)
                    continue
                if follower_status == 200:
                    self.fleet.note_extend_applied(slot, log_len)
                else:
                    self.fleet.force_restart(slot)
            self._respond(wfile, status, response, content_type=content_type,
                          keep_alive=keep_alive)

    def _note_upstream_error(self, slot: int) -> None:
        with self._counter_lock:
            self._upstream_errors_total += 1
        self.fleet.note_failure(slot)

    # ------------------------------------------------------------- upstreams
    def _checkout(self, slot: int) -> _Upstream | None:
        with self._pool_lock:
            pool = self._pools[slot]
            return pool.pop() if pool else None

    def _checkin(self, slot: int, upstream: _Upstream) -> None:
        with self._pool_lock:
            pool = self._pools[slot]
            if len(pool) < _POOL_SIZE:
                pool.append(upstream)
                return
        upstream.close()

    def _drop_pool(self, slot: int) -> None:
        with self._pool_lock:
            pool = self._pools[slot]
            drained = list(pool)
            pool.clear()
        for upstream in drained:
            upstream.close()

    def _forward(
        self, slot: int, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, str | None]:
        """One request/response exchange with a replica.

        A pooled connection may have died while idle (replica restarted,
        keep-alive timeout), so a failure on a pooled socket is retried once
        on a freshly dialed one before counting as a transport failure.
        """
        pooled = self._checkout(slot)
        if pooled is not None:
            try:
                return self._exchange(slot, pooled, method, path, body)
            except (OSError, ValueError, ConnectionError):
                pooled.close()
        try:
            fresh = _Upstream(self.fleet.address(slot), self._upstream_timeout)
        except (OSError, ServingError) as exc:
            raise _UpstreamError(f"cannot dial replica {slot}: {exc}") from None
        try:
            return self._exchange(slot, fresh, method, path, body)
        except (OSError, ValueError, ConnectionError) as exc:
            fresh.close()
            raise _UpstreamError(f"replica {slot} failed mid-exchange: {exc}") from None

    def _exchange(
        self, slot: int, upstream: _Upstream, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, str | None]:
        address = self.fleet.address(slot)
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {address[0]}:{address[1]}\r\n"
            "Connection: keep-alive\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        upstream.sock.sendall(head.encode("ascii") + body)
        status_line = upstream.rfile.readline(8192)
        if not status_line:
            raise ConnectionError("replica closed the connection")
        status = int(status_line.split(None, 2)[1])
        content_type = "application/json"
        content_length = None
        retry_after = None
        upstream_close = False
        for _ in range(100):
            header = upstream.rfile.readline(8192)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.partition(b":")
            lowered = name.strip().lower()
            if lowered == b"content-length":
                content_length = int(value.strip())
            elif lowered == b"content-type":
                content_type = value.strip().decode("latin-1")
            elif lowered == b"retry-after":
                retry_after = value.strip().decode("latin-1")
            elif lowered == b"connection" and value.strip().lower() == b"close":
                upstream_close = True
        if content_length is None:
            raise ConnectionError("replica response lacks Content-Length")
        response = upstream.rfile.read(content_length)
        if len(response) < content_length:
            raise ConnectionError("replica response truncated")
        if upstream_close:
            upstream.close()
        else:
            self._checkin(slot, upstream)
        return status, content_type, response, retry_after

    # ------------------------------------------------------------- mutations
    def _handle_mutation(self, wfile: Any, path: str, body: bytes, keep_alive: bool) -> None:
        """Compile once on the leader, record the sealed delta, ship to the rest.

        The leader request carries ``"ship_artifact": true`` so its response
        includes the sealed compiled delta; followers then import that
        artifact over ``/v1/import`` instead of recompiling, which is what
        keeps every replica byte-identical.  The artifact never reaches the
        client — the relayed response is re-serialized without it.
        """
        try:
            spec = json.loads(body)
            if not isinstance(spec, dict):
                raise ValueError("not an object")
        except ValueError as exc:
            self._respond(
                wfile, 400,
                _error_body("bad_request", f"request body is not a JSON object: {exc}", 400),
                keep_alive=keep_alive,
            )
            return
        leader_body = json.dumps(
            {**spec, "ship_artifact": True}, sort_keys=True
        ).encode("utf-8")
        with self._extend_lock:
            leader_response = None
            leader_slot = None
            remaining = []
            for slot in self.fleet.alive_slots():
                if leader_response is None:
                    try:
                        leader_response = self._forward(slot, "POST", path, leader_body)
                        leader_slot = slot
                    except _UpstreamError:
                        self._note_upstream_error(slot)
                else:
                    remaining.append(slot)
            if leader_response is None:
                self._respond(
                    wfile, 503,
                    _error_body("serving_error", "no replica could be reached", 503),
                    keep_alive=keep_alive,
                )
                return
            status, content_type, response, retry_after = leader_response
            if status != 200:
                # The body was rejected (or the leader is overloaded): relay
                # verbatim; nothing was recorded, no replica diverged.
                extra = [("Retry-After", retry_after)] if retry_after else []
                self._respond(
                    wfile, status, response, content_type=content_type,
                    keep_alive=keep_alive, extra_headers=extra,
                )
                return
            document = json.loads(response)
            artifact = document.pop("artifact", None)
            response = json.dumps(document, sort_keys=True).encode("utf-8")
            if artifact is not None:
                entry: dict[str, Any] = {"artifact": artifact}
                if path == "/v1/extend":
                    entry.update(kind="extend", spec=spec)
                    import_body = json.dumps(
                        {"artifact": artifact, "spec": spec}, sort_keys=True
                    ).encode("utf-8")
                else:
                    entry.update(kind="append", facts=spec.get("facts"))
                    import_body = json.dumps(
                        {"artifact": artifact}, sort_keys=True
                    ).encode("utf-8")
                follower_path, follower_body = "/v1/import", import_body
            else:  # pragma: no cover - leader predating ship_artifact
                entry, follower_path, follower_body = dict(spec), path, body
            log_len = self.fleet.record_extend(entry)
            self.fleet.note_extend_applied(leader_slot, log_len)  # type: ignore[arg-type]
            for slot in remaining:
                if self.fleet.applied_len(slot) >= log_len:
                    continue  # a fresh fork already replayed this mutation
                try:
                    follower_status, _, _, _ = self._forward(
                        slot, "POST", follower_path, follower_body
                    )
                except _UpstreamError:
                    self._note_upstream_error(slot)
                    self.fleet.force_restart(slot)
                    continue
                if follower_status == 200:
                    self.fleet.note_extend_applied(slot, log_len)
                else:
                    # A failed import means the replica's epoch diverged;
                    # re-fork it and let the replay log converge it.
                    self.fleet.force_restart(slot)
            self._respond(wfile, 200, response, content_type=content_type,
                          keep_alive=keep_alive)

    # ----------------------------------------------------------------- stats
    def _on_replica_death(self, slot: int) -> None:
        """Fold the dead incarnation's counters into the retired baseline."""
        self._drop_pool(slot)
        with self._stats_lock:
            document = self._last_stats.pop(slot, None)
            if document is None:
                return
            folded = json.loads(json.dumps(document))
            folded["workers"] = 0
            folded["max_queue"] = 0
            folded["queue_depth"] = 0
            folded["in_flight"] = 0
            folded["uptime_s"] = 0.0
            folded.get("throughput", {}).update(qps=0.0, lifetime_qps=0.0)
            folded.get("admission", {}).update(queue_depth=0, max_queue=0)
            for tier_stats in folded.get("cache", {}).values():
                tier_stats["entries"] = 0
            if self._retired is None:
                self._retired = folded
            else:
                self._retired = merge_stats([self._retired, folded])

    def cluster_stats(self) -> dict[str, Any]:
        """Fan out ``/v1/stats`` to alive replicas and merge the documents."""
        live: list[dict[str, Any]] = []
        for slot in self.fleet.alive_slots():
            try:
                status, _, response, _ = self._forward(slot, "GET", "/v1/stats", b"")
            except _UpstreamError:
                self._note_upstream_error(slot)
                continue
            if status != 200:
                continue
            document = json.loads(response)
            with self._stats_lock:
                self._last_stats[slot] = document
            live.append(document)
        documents = list(live)
        with self._stats_lock:
            if self._retired is not None:
                baseline = dict(self._retired)
                if live:
                    # Neutral under both the min and the max: retired
                    # counters must not drag the cluster generation floor
                    # back to a pre-extend epoch forever.
                    baseline["generation"] = max(d.get("generation", 0) for d in live)
                documents.append(baseline)
        merged = merge_stats(documents)
        with self._counter_lock:
            router_stats = {
                "retries_total": self._retries_total,
                "upstream_errors_total": self._upstream_errors_total,
            }
        router_stats.update(self.fleet.stats())
        merged["router"] = router_stats
        return merged

    def metrics_text(self) -> str:
        """Prometheus exposition of the cluster roll-up plus fleet gauges."""
        stats = self.cluster_stats()
        router_stats = stats["router"]
        extra = [
            "# HELP repro_replicas Configured replica count.",
            "# TYPE repro_replicas gauge",
            f"repro_replicas {router_stats['replicas']}",
            "# HELP repro_replicas_alive Replicas currently passing health checks.",
            "# TYPE repro_replicas_alive gauge",
            f"repro_replicas_alive {router_stats['replicas_alive']}",
            "# HELP repro_replica_restarts_total Replica processes re-forked by the fleet.",
            "# TYPE repro_replica_restarts_total counter",
            f"repro_replica_restarts_total {router_stats['restarts_total']}",
            "# HELP repro_router_retries_total Requests retried on another replica.",
            "# TYPE repro_router_retries_total counter",
            f"repro_router_retries_total {router_stats['retries_total']}",
            "# HELP repro_router_upstream_errors_total Transport failures talking to replicas.",
            "# TYPE repro_router_upstream_errors_total counter",
            f"repro_router_upstream_errors_total {router_stats['upstream_errors_total']}",
            "# HELP repro_generation_max The newest invalidation epoch any replica reached.",
            "# TYPE repro_generation_max gauge",
            f"repro_generation_max {stats['generation_max']}",
        ]
        return render_metrics(stats, extra_lines=extra)


def serve_fleet(
    engine: Any,
    *,
    replicas: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    extender: Any = None,
    server_kwargs: dict[str, Any] | None = None,
    health_interval: float | None = None,
    verbose: bool = False,
) -> Router:
    """Build a :class:`ReplicaFleet` + :class:`Router` pair (not yet started).

    The one-stop constructor used by ``repro serve --replicas N`` and the
    docs examples::

        router = serve_fleet(engine, replicas=2).start()
        ...
        router.stop()
    """
    fleet_kwargs: dict[str, Any] = {}
    if health_interval is not None:
        fleet_kwargs["health_interval"] = health_interval
    fleet = ReplicaFleet(
        engine,
        replicas,
        host=host,
        extender=extender,
        server_kwargs=server_kwargs,
        **fleet_kwargs,
    )
    return Router(fleet, host=host, port=port, verbose=verbose)
