"""Tuple-independent probabilistic databases (weights, INDB, possible worlds)."""

from repro.indb.database import TupleIndependentDatabase, indb_from_probabilities
from repro.indb.weights import (
    CERTAIN_WEIGHT,
    markoview_weight_to_indb_weight,
    probability_to_weight,
    validate_tuple_weight,
    weight_to_probability,
)

__all__ = [
    "CERTAIN_WEIGHT",
    "TupleIndependentDatabase",
    "indb_from_probabilities",
    "markoview_weight_to_indb_weight",
    "probability_to_weight",
    "validate_tuple_weight",
    "weight_to_probability",
]
