"""Tuple-independent probabilistic databases (INDB).

A :class:`TupleIndependentDatabase` wraps a deterministic
:class:`~repro.db.database.Database` holding *all possible tuples*
(``I_poss``) and marks some relations as probabilistic: every row of a
probabilistic relation carries a weight (odds) and is associated with a
Boolean tuple variable.  The class doubles as the
:class:`~repro.query.evaluator.LineageProvider` used by the query evaluator,
and offers possible-world enumeration for small instances (test oracle).

Weights may be negative (probabilities outside ``[0, 1]``): this is required
by the MarkoView translation of Theorem 1 and is supported by every exact
inference method in this library.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.db.database import Database
from repro.db.table import Row
from repro.errors import InferenceError, SchemaError, WeightError
from repro.indb.weights import CERTAIN_WEIGHT, weight_to_probability
from repro.lineage.dnf import DNF
from repro.lineage.enumeration import enumerate_worlds
from repro.lineage.shannon import shannon_probability
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import boolean_lineage, evaluate_ucq
from repro.query.ucq import UCQ


class TupleIndependentDatabase:
    """An INDB: deterministic tables plus weighted, independent probabilistic tuples."""

    def __init__(self, database: Database | None = None, backend: Any = None) -> None:
        if database is not None and backend is not None:
            raise SchemaError("pass either an existing database or a backend spec, not both")
        self.database = database if database is not None else Database(backend=backend)
        self._probabilistic: set[str] = set()
        self._weights: dict[tuple[str, Row], float] = {}
        self._var_of: dict[tuple[str, Row], int] = {}
        self._tuple_of: dict[int, tuple[str, Row]] = {}
        self._next_var = 0

    # ----------------------------------------------------------------- schema
    def add_deterministic_table(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Any]] = ()
    ):
        """Create a deterministic relation."""
        return self.database.create_table(name, attributes, rows)

    def add_probabilistic_table(
        self,
        name: str,
        attributes: Sequence[str],
        weighted_rows: Iterable[tuple[Sequence[Any], float]] = (),
    ):
        """Create a probabilistic relation from ``(row, weight)`` pairs."""
        table = self.database.create_table(name, attributes)
        self._probabilistic.add(name)
        for row, weight in weighted_rows:
            self.add_probabilistic_tuple(name, row, weight)
        return table

    def mark_probabilistic(self, name: str) -> None:
        """Mark an existing (empty or deterministic) relation as probabilistic."""
        if name not in self.database:
            raise SchemaError(f"cannot mark unknown relation {name!r} as probabilistic")
        self._probabilistic.add(name)

    def add_probabilistic_tuple(self, relation: str, row: Sequence[Any], weight: float) -> int:
        """Insert a possible tuple with the given weight; returns its variable id.

        A weight of ``+∞`` denotes a tuple that is certain (probability 1);
        negative weights are allowed (they arise from the MarkoView
        translation) as long as they are not exactly ``-1``.
        """
        if relation not in self._probabilistic:
            raise SchemaError(f"relation {relation!r} is not probabilistic")
        if math.isnan(weight):
            raise WeightError(f"weight of {relation}{tuple(row)} is NaN")
        row_tuple = tuple(row)
        self.database.table(relation).insert(row_tuple)
        key = (relation, row_tuple)
        if key in self._var_of:
            self._weights[key] = float(weight)
            return self._var_of[key]
        variable = self._next_var
        self._next_var += 1
        self._var_of[key] = variable
        self._tuple_of[variable] = key
        self._weights[key] = float(weight)
        return variable

    # ------------------------------------------------------------- inspection
    def probabilistic_relations(self) -> set[str]:
        """Names of the probabilistic relations."""
        return set(self._probabilistic)

    def deterministic_relations(self) -> set[str]:
        """Names of the deterministic relations."""
        return set(self.database.relation_names()) - self._probabilistic

    def is_probabilistic(self, relation: str) -> bool:
        """True if ``relation`` is probabilistic."""
        return relation in self._probabilistic

    def variables(self) -> list[int]:
        """All tuple variable ids."""
        return list(self._tuple_of)

    def tuple_count(self) -> int:
        """Number of possible probabilistic tuples."""
        return len(self._var_of)

    def tuple_of(self, variable: int) -> tuple[str, Row]:
        """The ``(relation, row)`` pair of a tuple variable."""
        return self._tuple_of[variable]

    def has_tuple(self, relation: str, row: Sequence[Any]) -> bool:
        """True if ``(relation, row)`` is a registered possible tuple.

        Unlike :meth:`variable_for` this includes *certain* tuples (weight
        ``+∞``), making it the right containment check for mutation paths
        that must not re-register an existing tuple.
        """
        return (relation, tuple(row)) in self._var_of

    def weight(self, relation: str, row: Sequence[Any]) -> float:
        """Weight (odds) of a possible tuple."""
        return self._weights[(relation, tuple(row))]

    def weight_of_variable(self, variable: int) -> float:
        """Weight (odds) of the tuple behind a variable."""
        return self._weights[self._tuple_of[variable]]

    def probability_of_variable(self, variable: int) -> float:
        """Marginal probability of a tuple variable (may be negative)."""
        return weight_to_probability(self.weight_of_variable(variable))

    def probabilities(self) -> dict[int, float]:
        """Mapping from every tuple variable to its marginal probability."""
        return {var: self.probability_of_variable(var) for var in self._tuple_of}

    def is_certain(self, variable: int) -> bool:
        """True if the tuple behind ``variable`` has weight ``+∞``."""
        return self.weight_of_variable(variable) == CERTAIN_WEIGHT

    def probabilistic_tuples(self) -> Iterator[tuple[str, Row, float, int]]:
        """Every possible probabilistic tuple as ``(relation, row, weight, variable)``.

        This is the serialization-facing view of the INDB: unlike
        :meth:`variable_for`, *certain* tuples (weight ``+∞``) are included,
        because a faithful copy of the database must carry them too.  Tuples
        are yielded in increasing variable order (the insertion order).
        """
        for variable, (relation, row) in self._tuple_of.items():
            yield relation, row, self._weights[(relation, row)], variable

    # ------------------------------------------------ LineageProvider protocol
    def variable_for(self, relation: str, row: Row) -> int | None:
        """Variable of a probabilistic row (``None`` for deterministic relations).

        Certain probabilistic tuples (weight ``∞``) are treated as
        deterministic: they contribute no variable to the lineage, which both
        keeps lineage small and implements the paper's simplification of
        denial views (Sect. 3.2, final remark).
        """
        if relation not in self._probabilistic:
            return None
        variable = self._var_of.get((relation, tuple(row)))
        if variable is None:
            return None
        if self._weights[(relation, tuple(row))] == CERTAIN_WEIGHT:
            return None
        return variable

    # ---------------------------------------------------------------- queries
    def lineage_of(self, query: UCQ | ConjunctiveQuery) -> DNF:
        """Lineage of a Boolean query over this INDB."""
        return boolean_lineage(query, self.database, self)

    def query_probability(self, query: UCQ | ConjunctiveQuery) -> float:
        """Exact probability of a Boolean query (Shannon expansion on the lineage)."""
        return shannon_probability(self.lineage_of(query), self.probabilities())

    def query_answers(self, query: UCQ | ConjunctiveQuery) -> dict[tuple[Any, ...], float]:
        """Probability of every answer of a non-Boolean query."""
        result = evaluate_ucq(query, self.database, self)
        probabilities = self.probabilities()
        return {
            answer: shannon_probability(lineage, probabilities)
            for answer, lineage in result.lineages().items()
        }

    # ---------------------------------------------------------- possible worlds
    def possible_worlds(self) -> Iterator[tuple[dict[int, bool], float]]:
        """Enumerate possible worlds (assignments of uncertain tuples) and weights.

        Only uncertain variables (finite weight) are enumerated; certain
        tuples are present in every world.  Intended for small instances
        (the enumeration limit of :mod:`repro.lineage.enumeration` applies).
        """
        uncertain = [v for v in self._tuple_of if not self.is_certain(v)]
        probabilities = {v: self.probability_of_variable(v) for v in uncertain}
        yield from enumerate_worlds(uncertain, probabilities)

    def world_database(self, assignment: Mapping[int, bool]) -> Database:
        """Materialise the deterministic instance of one possible world."""
        world = Database()
        for table in self.database:
            name = table.name
            if name not in self._probabilistic:
                world.create_table(name, table.schema.attribute_names, table.rows())
                continue
            rows = []
            for row in table.rows():
                variable = self._var_of[(name, row)]
                if self.is_certain(variable) or assignment.get(variable, False):
                    rows.append(row)
            world.create_table(name, table.schema.attribute_names, rows)
        return world

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TupleIndependentDatabase({len(self._probabilistic)} probabilistic relations, "
            f"{self.tuple_count()} possible tuples)"
        )


def indb_from_probabilities(
    deterministic: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Any]]]],
    probabilistic: Mapping[str, tuple[Sequence[str], Iterable[tuple[Sequence[Any], float]]]],
) -> TupleIndependentDatabase:
    """Build an INDB from dictionaries of deterministic/probabilistic relations.

    ``probabilistic`` maps a relation name to ``(attributes, [(row, probability)])``
    — note *probabilities*, not weights; they are converted internally.
    """
    from repro.indb.weights import probability_to_weight

    indb = TupleIndependentDatabase()
    for name, (attributes, rows) in deterministic.items():
        indb.add_deterministic_table(name, attributes, rows)
    for name, (attributes, weighted_rows) in probabilistic.items():
        indb.add_probabilistic_table(
            name,
            attributes,
            ((row, probability_to_weight(probability)) for row, probability in weighted_rows),
        )
    return indb


def raise_if_unusable(ex: Exception) -> None:  # pragma: no cover - defensive helper
    """Re-raise unexpected exceptions as :class:`InferenceError`."""
    raise InferenceError(str(ex)) from ex
