"""Weight / odds / probability conversions.

Following Def. 2 of the paper, tuple-independent databases are specified by
*weights* rather than probabilities: the weight ``w`` of a tuple represents
the odds of its marginal probability, ``w = p / (1 - p)``, so weights
``0, 1, ∞`` correspond to probabilities ``0, 1/2, 1``.

MarkoView weights are translated into INDB weights by ``(1 - w) / w``
(Def. 5), which is *negative* whenever ``w > 1`` — these negative weights
(and the negative probabilities they induce) are a deliberate feature of the
translation and are handled throughout the exact-inference pipeline.
"""

from __future__ import annotations

import math

from repro.errors import WeightError

#: Weight of a deterministic (certain) tuple.
CERTAIN_WEIGHT = math.inf


def weight_to_probability(weight: float) -> float:
    """Convert a tuple weight (odds) into a marginal probability ``w/(1+w)``.

    Handles the deterministic case ``w = ∞`` (probability 1) and negative
    weights produced by the MarkoView translation, for which the result is a
    negative "probability" — a bookkeeping number, see Sect. 3.3.
    """
    if math.isinf(weight):
        if weight > 0:
            return 1.0
        raise WeightError("weight -inf has no probability")
    if weight == -1.0:
        raise WeightError("weight -1 corresponds to an infinite probability")
    return weight / (1.0 + weight)


def probability_to_weight(probability: float) -> float:
    """Convert a marginal probability into a weight (odds) ``p/(1-p)``."""
    if probability == 1.0:
        return CERTAIN_WEIGHT
    return probability / (1.0 - probability)


def markoview_weight_to_indb_weight(view_weight: float) -> float:
    """Translate a MarkoView tuple weight into the weight of its ``NV`` tuple.

    Per Def. 5 this is ``(1 - w) / w``.  The special case ``w = 0`` (a denial
    constraint) yields ``+∞``: the ``NV`` tuple becomes deterministic.
    Infinite view weights are rejected: a MarkoView with weight ``∞`` would
    make its output tuples certain, which the paper handles by declaring the
    contributing tuples deterministic instead.
    """
    if view_weight < 0:
        raise WeightError(f"MarkoView weights must be non-negative, got {view_weight}")
    if math.isinf(view_weight):
        raise WeightError(
            "MarkoView weight ∞ is not supported; model hard positive constraints by "
            "making the contributing tuples deterministic"
        )
    if view_weight == 0.0:
        return CERTAIN_WEIGHT
    return (1.0 - view_weight) / view_weight


def validate_tuple_weight(weight: float) -> float:
    """Validate a weight attached to a base probabilistic tuple (must be ≥ 0)."""
    if weight < 0 or math.isnan(weight):
        raise WeightError(f"tuple weights must be non-negative numbers, got {weight}")
    return float(weight)
