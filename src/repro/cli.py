"""Command-line interface: experiments plus the index-serving workflow.

Two families of commands share the ``repro`` entry point:

* **experiment runners** regenerate the paper's figures::

      python -m repro list
      python -m repro fig4 --groups 14 --points 4
      python -m repro fig10 --groups 24 --out results/
      python -m repro all --groups 12 --points 3 --out results/

* **serving commands** exercise the offline/online split across processes:
  compile the DBLP workload's MV-index once and save it (``save-index``, or
  ``build-index --workers N`` for the process-pool sharded build), extend a
  saved artifact with additional views without recompiling the untouched
  components (``extend-index``), cold-start a :class:`repro.ProbDB` from
  the artifact and answer a query (``load-index``), or serve a whole batch
  with the cache-aware session (``serve-batch``)::

      python -m repro build-index --groups 8 --workers 4 --out dblp-index.json.gz
      python -m repro extend-index dblp-index.json.gz --groups 8 \\
          --views V1,V2,V3 --out dblp-extended.json.gz
      python -m repro load-index dblp-index.json.gz --json \\
          --query "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
      python -m repro serve-batch dblp-index.json.gz --count 10 --repeat 2

* **over-the-wire serving** (see ``docs/serving.md``): ``serve`` fronts an
  artifact (or an in-process build) with the JSON-HTTP server of
  :mod:`repro.serving.server`, and ``loadtest`` drives a running server
  with the zipf-skewed workload mix of :mod:`repro.serving.loadgen`::

      python -m repro serve dblp-index.json.gz --port 8080 --workers 4
      python -m repro loadtest --duration 10 --concurrency 8
      python -m repro ingest --duration 15 --append-interval 1 --extend-views V1,V2,V3
      python -m repro subscribe "Q(a) :- Advisor(x, a)" --threshold ">=0.5"
      python -m repro notify-listen --since 0

Everything is built on the unified client facade (:func:`repro.connect` /
:func:`repro.open`); ``--json`` prints typed results through
:meth:`repro.QueryResult.to_json`.

Exit codes are consistent across both families: **0** on success, **1**
on user errors (bad arguments, unknown experiments or methods, missing or
corrupt artifacts, unparsable queries), **2** on internal errors (a bug).
``repro --version`` prints the library version.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import Callable

from repro.experiments import (
    FullDatasetSettings,
    SweepSettings,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig6_students_of_advisor,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    report,
    scalability_index_build,
    serving_cold_warm,
    serving_http_loopback,
)

#: Sub-commands handled by the serving parser rather than the experiment one.
SERVING_COMMANDS = (
    "save-index",
    "build-index",
    "extend-index",
    "load-index",
    "serve-batch",
    "serve",
    "loadtest",
    "ingest",
    "subscribe",
    "notify-listen",
)

#: Exit codes: success / user error / internal error.
EXIT_OK = 0
EXIT_USER = 1
EXIT_INTERNAL = 2


def _version() -> str:
    import repro

    return f"repro {repro.__version__}"


class _CliExit(Exception):
    """Carries an exit code out of argparse's ``SystemExit``."""

    def __init__(self, code: int) -> None:
        self.code = code


def _parse_args(parser: argparse.ArgumentParser, argv: list[str]) -> argparse.Namespace:
    """``parse_args`` with the exit-code contract: argparse errors are user errors."""
    try:
        return parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 0 for --help/--version, 2 on errors
        raise _CliExit(EXIT_OK if exc.code in (0, None) else EXIT_USER) from None


def _sweep(args: argparse.Namespace) -> SweepSettings:
    return SweepSettings(group_count=args.groups, points=args.points, seed=args.seed)


def _full(args: argparse.Namespace) -> FullDatasetSettings:
    return FullDatasetSettings(
        group_count=args.groups, seed=args.seed, backend=getattr(args, "backend", None)
    )


def _scale_targets(args: argparse.Namespace) -> "tuple[int, ...] | None":
    raw = getattr(args, "scale_tuples", None)
    if not raw:
        return None
    return tuple(int(float(part)) for part in raw.split(",") if part.strip())


def _runners() -> dict[str, Callable[[argparse.Namespace], list]]:
    return {
        "fig1": lambda args: [fig1_dataset_inventory(_full(args))],
        "fig4": lambda args: [fig4_lineage_size(_sweep(args))],
        "fig5": lambda args: [fig5_advisor_of_student(_sweep(args))],
        "fig6": lambda args: [fig6_students_of_advisor(_sweep(args))],
        "fig7": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[0]],
        "fig8": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[1]],
        "fig9": lambda args: [fig9_intersection(_sweep(args))],
        "fig10": lambda args: [fig10_students_of_advisor(_full(args))],
        "fig11": lambda args: [fig11_affiliation_of_author(_full(args))],
        "scalability": lambda args: [
            scalability_index_build(_full(args), tuple_targets=_scale_targets(args))
        ],
        "serving": lambda args: [serving_cold_warm(_full(args))],
        "serving-http": lambda args: [serving_http_loopback(_full(args))],
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Probabilistic Databases with MarkoViews'.",
    )
    parser.add_argument("-V", "--version", action="version", version=_version())
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig11, scalability, serving, all, list)",
    )
    parser.add_argument("--groups", type=int, default=14, help="synthetic DBLP research groups")
    parser.add_argument("--points", type=int, default=4, help="sweep points for fig4-fig9")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", default=None, help="directory for CSV output (optional)")
    parser.add_argument(
        "--backend",
        default=None,
        help="storage backend: memory (default), sqlite, or sqlite:<path>",
    )
    parser.add_argument(
        "--scale-tuples",
        default=None,
        help="comma-separated tuple targets for the scalability sweep, e.g. 1e4,1e5,1e6",
    )
    return parser


# ------------------------------------------------------------------- serving
def build_serving_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persist and serve the compiled MV-index across processes.",
    )
    parser.add_argument("-V", "--version", action="version", version=_version())
    commands = parser.add_subparsers(dest="command", required=True)

    for name, description in (
        ("save-index", "build the DBLP workload, compile its MV-index, and save the artifact"),
        ("build-index", "same as save-index; --workers N shards the build across processes"),
    ):
        save = commands.add_parser(name, help=description)
        save.add_argument("--groups", type=int, default=8, help="synthetic DBLP research groups")
        save.add_argument("--seed", type=int, default=0, help="generator seed")
        save.add_argument(
            "--views", default="V1,V2,V3", help="comma-separated MarkoViews to attach"
        )
        save.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool size for the sharded MV-index build (default: serial)",
        )
        save.add_argument(
            "--backend",
            default=None,
            help="storage backend for the build: memory (default), sqlite, or sqlite:<path>",
        )
        save.add_argument(
            "--out", required=True, help="artifact path (.json, or .json.gz for compression)"
        )

    extend = commands.add_parser(
        "extend-index",
        help="extend a saved artifact with additional MarkoViews (incremental compile)",
    )
    extend.add_argument("artifact", help="artifact written by save-index/build-index")
    extend.add_argument("--groups", type=int, default=8, help="groups used for the original build")
    extend.add_argument("--seed", type=int, default=0, help="seed used for the original build")
    extend.add_argument(
        "--views",
        default="V1,V2,V3",
        help="comma-separated FULL view set after extension (a superset of the saved one)",
    )
    extend.add_argument(
        "--out", required=True, help="path for the extended artifact"
    )

    load = commands.add_parser(
        "load-index",
        help="cold-start a ProbDB from a saved artifact and optionally answer a query",
    )
    load.add_argument("artifact", help="artifact written by save-index")
    load.add_argument("--query", default=None, help="datalog query to answer (optional)")
    load.add_argument("--method", default="mvindex", help="evaluation method")
    load.add_argument(
        "--json", action="store_true", help="print the typed result as a JSON document"
    )
    load.add_argument(
        "--no-skip",
        action="store_true",
        help="disable summary-driven component skipping (ablation/debugging)",
    )

    batch = commands.add_parser(
        "serve-batch",
        help="serve a query batch from a saved artifact via the caching session",
    )
    batch.add_argument("artifact", help="artifact written by save-index")
    batch.add_argument(
        "--queries", default=None, help="file with one datalog query per line (# comments)"
    )
    batch.add_argument(
        "--count", type=int, default=10, help="number of built-in workload queries otherwise"
    )
    batch.add_argument("--method", default="mvindex", help="evaluation method")
    batch.add_argument("--workers", type=int, default=None, help="thread-pool size (optional)")
    batch.add_argument("--repeat", type=int, default=2, help="rounds (first cold, rest warm)")
    batch.add_argument(
        "--json", action="store_true", help="print per-round typed results as JSON documents"
    )
    batch.add_argument(
        "--no-skip",
        action="store_true",
        help="disable summary-driven component skipping (ablation/debugging)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a ProbDB over JSON-HTTP (query/query_batch/extend/stats/healthz/metrics)",
    )
    serve.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help="artifact written by save-index (omit to build a DBLP workload in-process)",
    )
    serve.add_argument("--groups", type=int, default=8, help="DBLP groups when building in-process")
    serve.add_argument("--seed", type=int, default=0, help="generator seed")
    serve.add_argument(
        "--views", default="V1,V2,V3", help="comma-separated MarkoViews for the in-process build"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 picks a free one)")
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker processes behind a consistent-hash router (>1 forks a fleet)",
    )
    serve.add_argument("--workers", type=int, default=4, help="dispatch worker threads")
    serve.add_argument(
        "--max-queue", type=int, default=64, help="admission limit (queued + running requests)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=None, help="per-worker session LRU capacity"
    )
    serve.add_argument("--verbose", action="store_true", help="log one line per request")

    loadtest = commands.add_parser(
        "loadtest",
        help="drive a running 'repro serve' with the zipf-skewed DBLP workload mix",
    )
    loadtest.add_argument(
        "--url", default="http://127.0.0.1:8080", help="base URL of the running server"
    )
    loadtest.add_argument(
        "--mode", choices=("closed", "open"), default="closed", help="load loop discipline"
    )
    loadtest.add_argument("--duration", type=float, default=10.0, help="seconds to run")
    loadtest.add_argument(
        "--concurrency", type=int, default=8, help="closed-loop workers / open-loop outstanding cap"
    )
    loadtest.add_argument(
        "--processes",
        type=int,
        default=1,
        help="closed-loop load processes (fork; one GIL cannot saturate a fleet)",
    )
    loadtest.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrival rate (requests/second)"
    )
    loadtest.add_argument(
        "--entities", type=int, default=8, help="distinct query entities per template"
    )
    loadtest.add_argument(
        "--zipf", type=float, default=1.1, help="zipf exponent of the entity popularity skew"
    )
    loadtest.add_argument("--method", default="mvindex", help="evaluation method")
    loadtest.add_argument("--seed", type=int, default=0, help="workload sampling seed")
    loadtest.add_argument(
        "--json", action="store_true", help="print the load report as a JSON document"
    )

    ingest = commands.add_parser(
        "ingest",
        help="drive a running 'repro serve' with mixed queries, fact appends and one extend",
    )
    ingest.add_argument(
        "--url", default="http://127.0.0.1:8080", help="base URL of the running server"
    )
    ingest.add_argument("--duration", type=float, default=15.0, help="seconds to run")
    ingest.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop query workers"
    )
    ingest.add_argument(
        "--append-interval", type=float, default=1.0, help="seconds between fact appends"
    )
    ingest.add_argument(
        "--append-batch", type=int, default=4, help="new DBLP facts per append"
    )
    ingest.add_argument(
        "--extend-views",
        default=None,
        help="comma-separated FULL view set of one mid-run /v1/extend (omit to skip)",
    )
    ingest.add_argument(
        "--groups", type=int, default=8, help="groups of the served workload (for the extend spec)"
    )
    ingest.add_argument(
        "--entities", type=int, default=8, help="distinct query entities per template"
    )
    ingest.add_argument(
        "--zipf", type=float, default=1.1, help="zipf exponent of the entity popularity skew"
    )
    ingest.add_argument("--method", default="mvindex", help="evaluation method")
    ingest.add_argument("--seed", type=int, default=0, help="workload sampling seed")
    ingest.add_argument(
        "--json", action="store_true", help="print the load report as a JSON document"
    )

    subscribe = commands.add_parser(
        "subscribe",
        help="register a standing query on a running 'repro serve' server",
    )
    subscribe.add_argument("query", help="datalog standing query")
    subscribe.add_argument(
        "--url", default="http://127.0.0.1:8080", help="base URL of the running server"
    )
    subscribe.add_argument("--method", default="mvindex", help="evaluation method")
    subscribe.add_argument(
        "--threshold",
        default=None,
        help="fire when the set of answers satisfying OP VALUE changes, e.g. '>=0.5' "
        "(default: fire on any answer-probability change)",
    )
    subscribe.add_argument(
        "--webhook",
        default=None,
        help="also push notifications to this URL (single-server best-effort)",
    )

    listen = commands.add_parser(
        "notify-listen",
        help="long-poll the notification stream of a running 'repro serve' server",
    )
    listen.add_argument(
        "--url", default="http://127.0.0.1:8080", help="base URL of the running server"
    )
    listen.add_argument(
        "--since", type=int, default=0, help="resume cursor (seq of the last seen notification)"
    )
    listen.add_argument(
        "--wait", type=float, default=25.0, help="seconds each long-poll blocks for news"
    )
    listen.add_argument(
        "--max", type=int, default=None, help="exit after this many notifications (default: run on)"
    )
    return parser


def _cmd_save_index(args: argparse.Namespace) -> int:
    import repro
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    workers = getattr(args, "workers", None)
    backend = getattr(args, "backend", None)
    workload = build_mvdb(
        DblpConfig(group_count=args.groups, seed=args.seed),
        include_views=views,
        backend=backend,
    )
    build_seconds, db = time_call(
        lambda: repro.connect(workload.mvdb, workers=workers, backend=backend)
    )
    path = db.save(args.out)
    index = db.engine.mv_index
    label = "offline build" if workers is None else f"offline build ({workers} workers)"
    print(f"{label}: {build_seconds:.3f}s")
    print(f"possible tuples: {db.engine.indb.tuple_count()}")
    print(f"W lineage: {db.engine.w_lineage_size} clauses")
    if index is not None:
        print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return EXIT_OK


def _cmd_extend_index(args: argparse.Namespace) -> int:
    import repro
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    db = repro.open(args.artifact)
    before = db.engine.w_lineage_size
    workload = build_mvdb(DblpConfig(group_count=args.groups, seed=args.seed), include_views=views)
    extend_seconds, added = time_call(lambda: db.extend(workload.mvdb))
    path = db.save(args.out)
    index = db.engine.mv_index
    print(f"incremental extension: {extend_seconds:.3f}s")
    print(f"W lineage: {before} -> {db.engine.w_lineage_size} clauses")
    if index is not None:
        print(
            f"MV-index: +{len(added)} components "
            f"({index.component_count()} total, {index.size} nodes)"
        )
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return EXIT_OK


def _cmd_load_index(args: argparse.Namespace) -> int:
    import repro
    from repro.experiments.harness import time_call

    load_seconds, db = time_call(lambda: repro.open(args.artifact))
    if args.no_skip:
        db.engine.disable_skipping()
    index = db.engine.mv_index
    if not args.json:
        print(f"cold start from artifact: {load_seconds:.3f}s")
        print(f"possible tuples: {db.engine.indb.tuple_count()}")
        print(f"W lineage: {db.engine.w_lineage_size} clauses")
        if index is not None:
            print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    if args.query:
        result = db.query(args.query, method=args.method)
        if args.json:
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(f"query answered in {result.wall_time * 1000:.2f}ms via {result.method!r}:")
            for answer in result:
                print(f"  {answer.values} -> {answer.probability:.6f}")
            if not len(result):
                print("  (no answers with a derivation)")
    elif args.json:
        print(json.dumps({"load_seconds": load_seconds, **db.stats()}, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.dblp.workload import students_of_advisor
    from repro.experiments.harness import time_call
    from repro.query.parser import parse_query

    db = repro.open(args.artifact)
    if args.no_skip:
        db.engine.disable_skipping()
    if args.queries:
        lines = Path(args.queries).read_text().splitlines()
        queries = [
            parse_query(line) for line in lines if line.strip() and not line.lstrip().startswith("#")
        ]
    else:
        queries = [students_of_advisor(f"Advisor {index}") for index in range(args.count)]
    if not queries:
        print("no queries to serve", file=sys.stderr)
        return EXIT_USER
    rounds = []
    for round_index in range(max(1, args.repeat)):
        seconds, results = time_call(
            lambda: db.query_batch(queries, method=args.method, workers=args.workers)
        )
        label = "cold" if round_index == 0 else "warm"
        answers = sum(len(result) for result in results)
        if args.json:
            rounds.append(
                {
                    "round": round_index + 1,
                    "label": label,
                    "seconds": seconds,
                    "results": [result.to_json() for result in results],
                }
            )
        else:
            print(
                f"round {round_index + 1} ({label}): {len(queries)} queries, "
                f"{answers} answers, {seconds * 1000:.2f}ms"
            )
    info = db.session.cache_info()
    if args.json:
        print(json.dumps({"rounds": rounds, "cache": info}, indent=2, sort_keys=True))
    else:
        print(
            f"cache: {info['result_hits']} hits / {info['result_misses']} misses, "
            f"{info['relational_passes']} relational pass(es), "
            f"{info['evaluated_disjuncts']} distinct disjuncts evaluated"
        )
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    import repro
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.serving.server import ProbServer

    def extender(spec: dict) -> object:
        # /v1/extend spec -> MVDB: rebuild the synthetic DBLP workload with
        # the requested (superset) view set over the same base data.
        views = spec.get("views", ["V1", "V2", "V3"])
        if not isinstance(views, list) or not all(isinstance(view, str) for view in views):
            from repro.errors import ServingError

            raise ServingError("'views' must be a list of MarkoView names")
        groups = spec.get("groups", args.groups)
        seed = spec.get("seed", args.seed)
        if not isinstance(groups, int) or not isinstance(seed, int):
            from repro.errors import ServingError

            raise ServingError("'groups' and 'seed' must be integers")
        return build_mvdb(
            DblpConfig(group_count=groups, seed=seed), include_views=tuple(views)
        ).mvdb

    if args.artifact is not None:
        engine = repro.open(args.artifact).engine
        source = args.artifact
    else:
        views = tuple(name.strip() for name in args.views.split(",") if name.strip())
        workload = build_mvdb(
            DblpConfig(group_count=args.groups, seed=args.seed), include_views=views
        )
        engine = repro.connect(workload.mvdb).engine
        source = f"in-process DBLP workload (groups={args.groups}, views={','.join(views)})"
    def raise_interrupt(signum: int, frame: object) -> None:
        # Unwind serve_forever() so the finally-clause drains in-flight
        # requests; calling stop() from inside the handler would deadlock
        # (shutdown() waits for the serve loop the handler is parked in).
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, raise_interrupt)
    print(f"serving {source}", flush=True)
    if args.replicas > 1:
        from repro.serving.router import serve_fleet

        router = serve_fleet(
            engine,
            replicas=args.replicas,
            host=args.host,
            port=args.port,
            extender=extender,
            server_kwargs={
                "workers": args.workers,
                "max_queue": args.max_queue,
                **({"cache_size": args.cache_size} if args.cache_size is not None else {}),
                "verbose": args.verbose,
            },
        )
        # bind() returns only after every replica passed its first health
        # check, so the URL line below never races a half-up fleet.
        router.bind()
        print(
            f"listening on {router.url} (replicas={args.replicas}, "
            f"workers={args.workers}, max_queue={args.max_queue})",
            flush=True,
        )
        try:
            router.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            router.stop()
        return EXIT_OK
    server = ProbServer(
        engine,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        cache_size=args.cache_size,
        extender=extender,
        verbose=args.verbose,
        # Standing queries registered against an artifact-backed server are
        # durable: a restart re-arms them from the sidecar.
        subscriptions_path=(
            f"{args.artifact}.subs.json" if args.artifact is not None else None
        ),
    )
    server.dispatcher.warm()
    # The URL line goes out after the server is bound (and flushed) so
    # scripts that started this process with --port 0 can read the address.
    print(f"listening on {server.url} (workers={args.workers}, max_queue={args.max_queue})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
    return EXIT_OK


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.serving.loadgen import WorkloadMix, run_closed, run_open

    mix = WorkloadMix(entities=args.entities, zipf_exponent=args.zipf)
    if args.mode == "closed":
        load_report = run_closed(
            args.url,
            duration_s=args.duration,
            concurrency=args.concurrency,
            mix=mix,
            method=args.method,
            seed=args.seed,
            processes=args.processes,
        )
    else:
        load_report = run_open(
            args.url,
            duration_s=args.duration,
            rate=args.rate,
            mix=mix,
            method=args.method,
            seed=args.seed,
            max_outstanding=args.concurrency,
        )
    if args.json:
        print(json.dumps(load_report.to_json(), indent=2, sort_keys=True))
    else:
        print(load_report.render())
    if not load_report.error_free:
        print("loadtest saw server-side or transport errors", file=sys.stderr)
        return EXIT_USER
    return EXIT_OK


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.serving.loadgen import WorkloadMix, run_ingest

    mix = WorkloadMix(entities=args.entities, zipf_exponent=args.zipf)
    extend_spec = None
    if args.extend_views:
        views = [name.strip() for name in args.extend_views.split(",") if name.strip()]
        extend_spec = {"groups": args.groups, "seed": args.seed, "views": views}
    load_report = run_ingest(
        args.url,
        duration_s=args.duration,
        concurrency=args.concurrency,
        mix=mix,
        method=args.method,
        seed=args.seed,
        append_interval_s=args.append_interval,
        append_batch=args.append_batch,
        extend_spec=extend_spec,
    )
    if args.json:
        print(json.dumps(load_report.to_json(), indent=2, sort_keys=True))
    else:
        print(load_report.render())
    if not load_report.error_free:
        print("ingest saw server-side or transport errors", file=sys.stderr)
        return EXIT_USER
    return EXIT_OK


def _cmd_subscribe(args: argparse.Namespace) -> int:
    from repro.client import connect_remote
    from repro.errors import ClientError

    predicate = None
    if args.threshold is not None:
        raw = args.threshold.strip()
        for op in (">=", "<=", ">", "<"):
            if raw.startswith(op):
                try:
                    value = float(raw[len(op):])
                except ValueError:
                    raise ClientError(f"--threshold value in {raw!r} is not a number") from None
                predicate = {"kind": "threshold", "op": op, "value": value}
                break
        else:
            raise ClientError(f"--threshold must look like '>=0.5', got {raw!r}")
    sink = {"kind": "webhook", "url": args.webhook} if args.webhook else None
    remote = connect_remote(args.url)
    document = remote.subscribe(args.query, predicate=predicate, sink=sink, method=args.method)
    print(json.dumps(document, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_notify_listen(args: argparse.Namespace) -> int:
    from repro.client import connect_remote

    remote = connect_remote(args.url)
    cursor = args.since
    seen = 0
    while args.max is None or seen < args.max:
        batch = remote.notifications(since=cursor, wait_s=args.wait)
        for notification in batch["notifications"]:
            print(json.dumps(notification, sort_keys=True), flush=True)
            seen += 1
            if args.max is not None and seen >= args.max:
                break
        cursor = batch["next"]
    return EXIT_OK


def _serving_main(argv: list[str]) -> int:
    args = _parse_args(build_serving_parser(), argv)
    handlers = {
        "save-index": _cmd_save_index,
        "build-index": _cmd_save_index,
        "extend-index": _cmd_extend_index,
        "load-index": _cmd_load_index,
        "serve-batch": _cmd_serve_batch,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
        "ingest": _cmd_ingest,
        "subscribe": _cmd_subscribe,
        "notify-listen": _cmd_notify_listen,
    }
    return handlers[args.command](args)


def _dispatch(argv: list[str]) -> int:
    # Both parser families register a version action, and argparse fires it
    # before checking required positionals, so bare `repro --version` works
    # through the experiment parser without a special case.
    if argv and argv[0] in SERVING_COMMANDS:
        return _serving_main(argv)
    args = _parse_args(build_parser(), argv)
    runners = _runners()
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(runners)), "+ 'all'")
        print("serving commands:", ", ".join(SERVING_COMMANDS))
        return EXIT_OK
    if args.experiment == "all":
        names = sorted(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return EXIT_USER
    results = []
    for name in names:
        results.extend(runners[name](args))
    print(report(results, args.out))
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        return _dispatch(argv)
    except _CliExit as exc:
        return exc.code
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover - interactive
        return EXIT_USER
    except Exception as exc:
        from repro.errors import ReproError

        if isinstance(exc, (ReproError, OSError)):
            # Library failures (missing/corrupt artifact, query parse errors,
            # inference errors) and filesystem problems (unreadable query
            # file, unwritable output path) are the user's to fix: a clean
            # one-line diagnostic, not a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USER
        # Anything else is a bug in the library, not in the invocation.
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
