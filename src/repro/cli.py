"""Command-line interface: experiments plus the index-serving workflow.

Two families of commands share the ``repro`` entry point:

* **experiment runners** regenerate the paper's figures::

      python -m repro list
      python -m repro fig4 --groups 14 --points 4
      python -m repro fig10 --groups 24 --out results/
      python -m repro all --groups 12 --points 3 --out results/

* **serving commands** exercise the offline/online split across processes:
  compile the DBLP workload's MV-index once and save it (``save-index``, or
  ``build-index --workers N`` for the process-pool sharded build), extend a
  saved artifact with additional views without recompiling the untouched
  components (``extend-index``), cold-start a :class:`repro.ProbDB` from
  the artifact and answer a query (``load-index``), or serve a whole batch
  with the cache-aware session (``serve-batch``)::

      python -m repro build-index --groups 8 --workers 4 --out dblp-index.json.gz
      python -m repro extend-index dblp-index.json.gz --groups 8 \\
          --views V1,V2,V3 --out dblp-extended.json.gz
      python -m repro load-index dblp-index.json.gz --json \\
          --query "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
      python -m repro serve-batch dblp-index.json.gz --count 10 --repeat 2

Everything is built on the unified client facade (:func:`repro.connect` /
:func:`repro.open`); ``--json`` prints typed results through
:meth:`repro.QueryResult.to_json`.

Exit codes are consistent across both families: **0** on success, **1**
on user errors (bad arguments, unknown experiments or methods, missing or
corrupt artifacts, unparsable queries), **2** on internal errors (a bug).
``repro --version`` prints the library version.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.experiments import (
    FullDatasetSettings,
    SweepSettings,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig6_students_of_advisor,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    report,
    scalability_index_build,
    serving_cold_warm,
)

#: Sub-commands handled by the serving parser rather than the experiment one.
SERVING_COMMANDS = ("save-index", "build-index", "extend-index", "load-index", "serve-batch")

#: Exit codes: success / user error / internal error.
EXIT_OK = 0
EXIT_USER = 1
EXIT_INTERNAL = 2


def _version() -> str:
    import repro

    return f"repro {repro.__version__}"


class _CliExit(Exception):
    """Carries an exit code out of argparse's ``SystemExit``."""

    def __init__(self, code: int) -> None:
        self.code = code


def _parse_args(parser: argparse.ArgumentParser, argv: list[str]) -> argparse.Namespace:
    """``parse_args`` with the exit-code contract: argparse errors are user errors."""
    try:
        return parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 0 for --help/--version, 2 on errors
        raise _CliExit(EXIT_OK if exc.code in (0, None) else EXIT_USER) from None


def _sweep(args: argparse.Namespace) -> SweepSettings:
    return SweepSettings(group_count=args.groups, points=args.points, seed=args.seed)


def _full(args: argparse.Namespace) -> FullDatasetSettings:
    return FullDatasetSettings(group_count=args.groups, seed=args.seed)


def _runners() -> dict[str, Callable[[argparse.Namespace], list]]:
    return {
        "fig1": lambda args: [fig1_dataset_inventory(_full(args))],
        "fig4": lambda args: [fig4_lineage_size(_sweep(args))],
        "fig5": lambda args: [fig5_advisor_of_student(_sweep(args))],
        "fig6": lambda args: [fig6_students_of_advisor(_sweep(args))],
        "fig7": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[0]],
        "fig8": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[1]],
        "fig9": lambda args: [fig9_intersection(_sweep(args))],
        "fig10": lambda args: [fig10_students_of_advisor(_full(args))],
        "fig11": lambda args: [fig11_affiliation_of_author(_full(args))],
        "scalability": lambda args: [scalability_index_build(_full(args))],
        "serving": lambda args: [serving_cold_warm(_full(args))],
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Probabilistic Databases with MarkoViews'.",
    )
    parser.add_argument("-V", "--version", action="version", version=_version())
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig11, scalability, serving, all, list)",
    )
    parser.add_argument("--groups", type=int, default=14, help="synthetic DBLP research groups")
    parser.add_argument("--points", type=int, default=4, help="sweep points for fig4-fig9")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", default=None, help="directory for CSV output (optional)")
    return parser


# ------------------------------------------------------------------- serving
def build_serving_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persist and serve the compiled MV-index across processes.",
    )
    parser.add_argument("-V", "--version", action="version", version=_version())
    commands = parser.add_subparsers(dest="command", required=True)

    for name, description in (
        ("save-index", "build the DBLP workload, compile its MV-index, and save the artifact"),
        ("build-index", "same as save-index; --workers N shards the build across processes"),
    ):
        save = commands.add_parser(name, help=description)
        save.add_argument("--groups", type=int, default=8, help="synthetic DBLP research groups")
        save.add_argument("--seed", type=int, default=0, help="generator seed")
        save.add_argument(
            "--views", default="V1,V2,V3", help="comma-separated MarkoViews to attach"
        )
        save.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool size for the sharded MV-index build (default: serial)",
        )
        save.add_argument(
            "--out", required=True, help="artifact path (.json, or .json.gz for compression)"
        )

    extend = commands.add_parser(
        "extend-index",
        help="extend a saved artifact with additional MarkoViews (incremental compile)",
    )
    extend.add_argument("artifact", help="artifact written by save-index/build-index")
    extend.add_argument("--groups", type=int, default=8, help="groups used for the original build")
    extend.add_argument("--seed", type=int, default=0, help="seed used for the original build")
    extend.add_argument(
        "--views",
        default="V1,V2,V3",
        help="comma-separated FULL view set after extension (a superset of the saved one)",
    )
    extend.add_argument(
        "--out", required=True, help="path for the extended artifact"
    )

    load = commands.add_parser(
        "load-index",
        help="cold-start a ProbDB from a saved artifact and optionally answer a query",
    )
    load.add_argument("artifact", help="artifact written by save-index")
    load.add_argument("--query", default=None, help="datalog query to answer (optional)")
    load.add_argument("--method", default="mvindex", help="evaluation method")
    load.add_argument(
        "--json", action="store_true", help="print the typed result as a JSON document"
    )

    batch = commands.add_parser(
        "serve-batch",
        help="serve a query batch from a saved artifact via the caching session",
    )
    batch.add_argument("artifact", help="artifact written by save-index")
    batch.add_argument(
        "--queries", default=None, help="file with one datalog query per line (# comments)"
    )
    batch.add_argument(
        "--count", type=int, default=10, help="number of built-in workload queries otherwise"
    )
    batch.add_argument("--method", default="mvindex", help="evaluation method")
    batch.add_argument("--workers", type=int, default=None, help="thread-pool size (optional)")
    batch.add_argument("--repeat", type=int, default=2, help="rounds (first cold, rest warm)")
    batch.add_argument(
        "--json", action="store_true", help="print per-round typed results as JSON documents"
    )
    return parser


def _cmd_save_index(args: argparse.Namespace) -> int:
    import repro
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    workers = getattr(args, "workers", None)
    workload = build_mvdb(DblpConfig(group_count=args.groups, seed=args.seed), include_views=views)
    build_seconds, db = time_call(lambda: repro.connect(workload.mvdb, workers=workers))
    path = db.save(args.out)
    index = db.engine.mv_index
    label = "offline build" if workers is None else f"offline build ({workers} workers)"
    print(f"{label}: {build_seconds:.3f}s")
    print(f"possible tuples: {db.engine.indb.tuple_count()}")
    print(f"W lineage: {db.engine.w_lineage_size} clauses")
    if index is not None:
        print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return EXIT_OK


def _cmd_extend_index(args: argparse.Namespace) -> int:
    import repro
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    db = repro.open(args.artifact)
    before = db.engine.w_lineage_size
    workload = build_mvdb(DblpConfig(group_count=args.groups, seed=args.seed), include_views=views)
    extend_seconds, added = time_call(lambda: db.extend(workload.mvdb))
    path = db.save(args.out)
    index = db.engine.mv_index
    print(f"incremental extension: {extend_seconds:.3f}s")
    print(f"W lineage: {before} -> {db.engine.w_lineage_size} clauses")
    if index is not None:
        print(
            f"MV-index: +{len(added)} components "
            f"({index.component_count()} total, {index.size} nodes)"
        )
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return EXIT_OK


def _cmd_load_index(args: argparse.Namespace) -> int:
    import repro
    from repro.experiments.harness import time_call

    load_seconds, db = time_call(lambda: repro.open(args.artifact))
    index = db.engine.mv_index
    if not args.json:
        print(f"cold start from artifact: {load_seconds:.3f}s")
        print(f"possible tuples: {db.engine.indb.tuple_count()}")
        print(f"W lineage: {db.engine.w_lineage_size} clauses")
        if index is not None:
            print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    if args.query:
        result = db.query(args.query, method=args.method)
        if args.json:
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(f"query answered in {result.wall_time * 1000:.2f}ms via {result.method!r}:")
            for answer in result:
                print(f"  {answer.values} -> {answer.probability:.6f}")
            if not len(result):
                print("  (no answers with a derivation)")
    elif args.json:
        print(json.dumps({"load_seconds": load_seconds, **db.stats()}, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.dblp.workload import students_of_advisor
    from repro.experiments.harness import time_call
    from repro.query.parser import parse_query

    db = repro.open(args.artifact)
    if args.queries:
        lines = Path(args.queries).read_text().splitlines()
        queries = [
            parse_query(line) for line in lines if line.strip() and not line.lstrip().startswith("#")
        ]
    else:
        queries = [students_of_advisor(f"Advisor {index}") for index in range(args.count)]
    if not queries:
        print("no queries to serve", file=sys.stderr)
        return EXIT_USER
    rounds = []
    for round_index in range(max(1, args.repeat)):
        seconds, results = time_call(
            lambda: db.query_batch(queries, method=args.method, workers=args.workers)
        )
        label = "cold" if round_index == 0 else "warm"
        answers = sum(len(result) for result in results)
        if args.json:
            rounds.append(
                {
                    "round": round_index + 1,
                    "label": label,
                    "seconds": seconds,
                    "results": [result.to_json() for result in results],
                }
            )
        else:
            print(
                f"round {round_index + 1} ({label}): {len(queries)} queries, "
                f"{answers} answers, {seconds * 1000:.2f}ms"
            )
    info = db.session.cache_info()
    if args.json:
        print(json.dumps({"rounds": rounds, "cache": info}, indent=2, sort_keys=True))
    else:
        print(
            f"cache: {info['result_hits']} hits / {info['result_misses']} misses, "
            f"{info['relational_passes']} relational pass(es), "
            f"{info['evaluated_disjuncts']} distinct disjuncts evaluated"
        )
    return EXIT_OK


def _serving_main(argv: list[str]) -> int:
    args = _parse_args(build_serving_parser(), argv)
    handlers = {
        "save-index": _cmd_save_index,
        "build-index": _cmd_save_index,
        "extend-index": _cmd_extend_index,
        "load-index": _cmd_load_index,
        "serve-batch": _cmd_serve_batch,
    }
    return handlers[args.command](args)


def _dispatch(argv: list[str]) -> int:
    # Both parser families register a version action, and argparse fires it
    # before checking required positionals, so bare `repro --version` works
    # through the experiment parser without a special case.
    if argv and argv[0] in SERVING_COMMANDS:
        return _serving_main(argv)
    args = _parse_args(build_parser(), argv)
    runners = _runners()
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(runners)), "+ 'all'")
        print("serving commands:", ", ".join(SERVING_COMMANDS))
        return EXIT_OK
    if args.experiment == "all":
        names = sorted(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return EXIT_USER
    results = []
    for name in names:
        results.extend(runners[name](args))
    print(report(results, args.out))
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        return _dispatch(argv)
    except _CliExit as exc:
        return exc.code
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover - interactive
        return EXIT_USER
    except Exception as exc:
        from repro.errors import ReproError

        if isinstance(exc, (ReproError, OSError)):
            # Library failures (missing/corrupt artifact, query parse errors,
            # inference errors) and filesystem problems (unreadable query
            # file, unwritable output path) are the user's to fix: a clean
            # one-line diagnostic, not a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USER
        # Anything else is a bug in the library, not in the invocation.
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
