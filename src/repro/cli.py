"""Command-line interface: regenerate the paper's experiments from a shell.

Examples
--------
::

    python -m repro list
    python -m repro fig4 --groups 14 --points 4
    python -m repro fig10 --groups 24 --out results/
    python -m repro all --groups 12 --points 3 --out results/
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    FullDatasetSettings,
    SweepSettings,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig6_students_of_advisor,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    report,
    scalability_index_build,
)


def _sweep(args: argparse.Namespace) -> SweepSettings:
    return SweepSettings(group_count=args.groups, points=args.points, seed=args.seed)


def _full(args: argparse.Namespace) -> FullDatasetSettings:
    return FullDatasetSettings(group_count=args.groups, seed=args.seed)


def _runners() -> dict[str, Callable[[argparse.Namespace], list]]:
    return {
        "fig1": lambda args: [fig1_dataset_inventory(_full(args))],
        "fig4": lambda args: [fig4_lineage_size(_sweep(args))],
        "fig5": lambda args: [fig5_advisor_of_student(_sweep(args))],
        "fig6": lambda args: [fig6_students_of_advisor(_sweep(args))],
        "fig7": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[0]],
        "fig8": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[1]],
        "fig9": lambda args: [fig9_intersection(_sweep(args))],
        "fig10": lambda args: [fig10_students_of_advisor(_full(args))],
        "fig11": lambda args: [fig11_affiliation_of_author(_full(args))],
        "scalability": lambda args: [scalability_index_build(_full(args))],
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Probabilistic Databases with MarkoViews'.",
    )
    parser.add_argument("experiment", help="experiment id (fig1..fig11, scalability, all, list)")
    parser.add_argument("--groups", type=int, default=14, help="synthetic DBLP research groups")
    parser.add_argument("--points", type=int, default=4, help="sweep points for fig4-fig9")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", default=None, help="directory for CSV output (optional)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runners = _runners()
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(runners)), "+ 'all'")
        return 0
    if args.experiment == "all":
        names = sorted(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    results = []
    for name in names:
        results.extend(runners[name](args))
    print(report(results, args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
