"""Command-line interface: experiments plus the index-serving workflow.

Two families of commands share the ``repro`` entry point:

* **experiment runners** regenerate the paper's figures::

      python -m repro list
      python -m repro fig4 --groups 14 --points 4
      python -m repro fig10 --groups 24 --out results/
      python -m repro all --groups 12 --points 3 --out results/

* **serving commands** exercise the offline/online split across processes:
  compile the DBLP workload's MV-index once and save it (``save-index``, or
  ``build-index --workers N`` for the process-pool sharded build), extend a
  saved artifact with additional views without recompiling the untouched
  components (``extend-index``), cold-start an engine from the artifact and
  answer a query (``load-index``), or serve a whole batch with the
  cache-aware session (``serve-batch``)::

      python -m repro build-index --groups 8 --workers 4 --out dblp-index.json.gz
      python -m repro extend-index dblp-index.json.gz --groups 8 \\
          --views V1,V2,V3 --out dblp-extended.json.gz
      python -m repro load-index dblp-index.json.gz \\
          --query "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
      python -m repro serve-batch dblp-index.json.gz --count 10 --repeat 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    FullDatasetSettings,
    SweepSettings,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig6_students_of_advisor,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    report,
    scalability_index_build,
    serving_cold_warm,
)

#: Sub-commands handled by the serving parser rather than the experiment one.
SERVING_COMMANDS = ("save-index", "build-index", "extend-index", "load-index", "serve-batch")


def _sweep(args: argparse.Namespace) -> SweepSettings:
    return SweepSettings(group_count=args.groups, points=args.points, seed=args.seed)


def _full(args: argparse.Namespace) -> FullDatasetSettings:
    return FullDatasetSettings(group_count=args.groups, seed=args.seed)


def _runners() -> dict[str, Callable[[argparse.Namespace], list]]:
    return {
        "fig1": lambda args: [fig1_dataset_inventory(_full(args))],
        "fig4": lambda args: [fig4_lineage_size(_sweep(args))],
        "fig5": lambda args: [fig5_advisor_of_student(_sweep(args))],
        "fig6": lambda args: [fig6_students_of_advisor(_sweep(args))],
        "fig7": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[0]],
        "fig8": lambda args: [fig7_fig8_obdd_construction(_sweep(args))[1]],
        "fig9": lambda args: [fig9_intersection(_sweep(args))],
        "fig10": lambda args: [fig10_students_of_advisor(_full(args))],
        "fig11": lambda args: [fig11_affiliation_of_author(_full(args))],
        "scalability": lambda args: [scalability_index_build(_full(args))],
        "serving": lambda args: [serving_cold_warm(_full(args))],
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Probabilistic Databases with MarkoViews'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig11, scalability, serving, all, list)",
    )
    parser.add_argument("--groups", type=int, default=14, help="synthetic DBLP research groups")
    parser.add_argument("--points", type=int, default=4, help="sweep points for fig4-fig9")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", default=None, help="directory for CSV output (optional)")
    return parser


# ------------------------------------------------------------------- serving
def build_serving_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persist and serve the compiled MV-index across processes.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, description in (
        ("save-index", "build the DBLP workload, compile its MV-index, and save the artifact"),
        ("build-index", "same as save-index; --workers N shards the build across processes"),
    ):
        save = commands.add_parser(name, help=description)
        save.add_argument("--groups", type=int, default=8, help="synthetic DBLP research groups")
        save.add_argument("--seed", type=int, default=0, help="generator seed")
        save.add_argument(
            "--views", default="V1,V2,V3", help="comma-separated MarkoViews to attach"
        )
        save.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool size for the sharded MV-index build (default: serial)",
        )
        save.add_argument(
            "--out", required=True, help="artifact path (.json, or .json.gz for compression)"
        )

    extend = commands.add_parser(
        "extend-index",
        help="extend a saved artifact with additional MarkoViews (incremental compile)",
    )
    extend.add_argument("artifact", help="artifact written by save-index/build-index")
    extend.add_argument("--groups", type=int, default=8, help="groups used for the original build")
    extend.add_argument("--seed", type=int, default=0, help="seed used for the original build")
    extend.add_argument(
        "--views",
        default="V1,V2,V3",
        help="comma-separated FULL view set after extension (a superset of the saved one)",
    )
    extend.add_argument(
        "--out", required=True, help="path for the extended artifact"
    )

    load = commands.add_parser(
        "load-index",
        help="cold-start an engine from a saved artifact and optionally answer a query",
    )
    load.add_argument("artifact", help="artifact written by save-index")
    load.add_argument("--query", default=None, help="datalog query to answer (optional)")
    load.add_argument("--method", default="mvindex", help="evaluation method")

    batch = commands.add_parser(
        "serve-batch",
        help="serve a query batch from a saved artifact via the caching session",
    )
    batch.add_argument("artifact", help="artifact written by save-index")
    batch.add_argument(
        "--queries", default=None, help="file with one datalog query per line (# comments)"
    )
    batch.add_argument(
        "--count", type=int, default=10, help="number of built-in workload queries otherwise"
    )
    batch.add_argument("--method", default="mvindex", help="evaluation method")
    batch.add_argument("--workers", type=int, default=None, help="thread-pool size (optional)")
    batch.add_argument("--repeat", type=int, default=2, help="rounds (first cold, rest warm)")
    return parser


def _cmd_save_index(args: argparse.Namespace) -> int:
    from repro.core import MVQueryEngine
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call
    from repro.serving import save_engine

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    workers = getattr(args, "workers", None)
    workload = build_mvdb(DblpConfig(group_count=args.groups, seed=args.seed), include_views=views)
    build_seconds, engine = time_call(lambda: MVQueryEngine(workload.mvdb, workers=workers))
    path = save_engine(engine, args.out)
    index = engine.mv_index
    label = "offline build" if workers is None else f"offline build ({workers} workers)"
    print(f"{label}: {build_seconds:.3f}s")
    print(f"possible tuples: {engine.indb.tuple_count()}")
    print(f"W lineage: {engine.w_lineage_size} clauses")
    if index is not None:
        print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_extend_index(args: argparse.Namespace) -> int:
    from repro.dblp.config import DblpConfig
    from repro.dblp.workload import build_mvdb
    from repro.experiments.harness import time_call
    from repro.serving import load_engine, save_engine

    views = tuple(name.strip() for name in args.views.split(",") if name.strip())
    engine = load_engine(args.artifact)
    before = engine.w_lineage_size
    workload = build_mvdb(DblpConfig(group_count=args.groups, seed=args.seed), include_views=views)
    extend_seconds, added = time_call(lambda: engine.extend_views(workload.mvdb))
    path = save_engine(engine, args.out)
    index = engine.mv_index
    print(f"incremental extension: {extend_seconds:.3f}s")
    print(f"W lineage: {before} -> {engine.w_lineage_size} clauses")
    if index is not None:
        print(
            f"MV-index: +{len(added)} components "
            f"({index.component_count()} total, {index.size} nodes)"
        )
    print(f"artifact: {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_load_index(args: argparse.Namespace) -> int:
    from repro.experiments.harness import time_call
    from repro.query.parser import parse_query
    from repro.serving import load_engine

    load_seconds, engine = time_call(lambda: load_engine(args.artifact))
    index = engine.mv_index
    print(f"cold start from artifact: {load_seconds:.3f}s")
    print(f"possible tuples: {engine.indb.tuple_count()}")
    print(f"W lineage: {engine.w_lineage_size} clauses")
    if index is not None:
        print(f"MV-index: {index.component_count()} components, {index.size} nodes")
    if args.query:
        query = parse_query(args.query)
        seconds, answers = time_call(lambda: engine.query(query, method=args.method))
        print(f"query answered in {seconds * 1000:.2f}ms via {args.method!r}:")
        for answer, probability in sorted(answers.items(), key=lambda item: repr(item[0])):
            print(f"  {answer} -> {probability:.6f}")
        if not answers:
            print("  (no answers with a derivation)")
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.dblp.workload import students_of_advisor
    from repro.experiments.harness import time_call
    from repro.query.parser import parse_query
    from repro.serving import QuerySession, load_engine

    engine = load_engine(args.artifact)
    if args.queries:
        lines = Path(args.queries).read_text().splitlines()
        queries = [
            parse_query(line) for line in lines if line.strip() and not line.lstrip().startswith("#")
        ]
    else:
        queries = [students_of_advisor(f"Advisor {index}") for index in range(args.count)]
    if not queries:
        print("no queries to serve", file=sys.stderr)
        return 2
    session = QuerySession(engine)
    for round_index in range(max(1, args.repeat)):
        seconds, results = time_call(
            lambda: session.query_batch(queries, method=args.method, workers=args.workers)
        )
        label = "cold" if round_index == 0 else "warm"
        answers = sum(len(result) for result in results)
        print(
            f"round {round_index + 1} ({label}): {len(queries)} queries, "
            f"{answers} answers, {seconds * 1000:.2f}ms"
        )
    info = session.cache_info()
    print(
        f"cache: {info['result_hits']} hits / {info['result_misses']} misses, "
        f"{info['relational_passes']} relational pass(es), "
        f"{info['evaluated_disjuncts']} distinct disjuncts evaluated"
    )
    return 0


def _serving_main(argv: list[str]) -> int:
    from repro.errors import ReproError

    args = build_serving_parser().parse_args(argv)
    handlers = {
        "save-index": _cmd_save_index,
        "build-index": _cmd_save_index,
        "extend-index": _cmd_extend_index,
        "load-index": _cmd_load_index,
        "serve-batch": _cmd_serve_batch,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        # Library failures (missing/corrupt artifact, query parse errors,
        # inference errors) and filesystem problems (unreadable query file,
        # unwritable output path) become a clean one-line diagnostic, not a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SERVING_COMMANDS:
        return _serving_main(argv)
    args = build_parser().parse_args(argv)
    runners = _runners()
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(runners)), "+ 'all'")
        print("serving commands:", ", ".join(SERVING_COMMANDS))
        return 0
    if args.experiment == "all":
        names = sorted(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    results = []
    for name in names:
        results.extend(runners[name](args))
    print(report(results, args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
