"""Typed query results: the answers a :class:`repro.ProbDB` hands back.

The pre-facade API returned raw ``dict[tuple, float]`` maps, which lost
everything the pipeline knows about *how* an answer was computed.  The
typed result objects keep that provenance:

* :class:`Answer` — one answer tuple with its probability and the size of
  its lineage (the number of DNF clauses intersected against the MV-index);
* :class:`QueryResult` — all answers of one query plus evaluation metadata:
  the inference method used (and whether it is exact), whether the result
  was served from a session cache, wall-clock time, and the work counters
  of the evaluation (query-OBDD nodes compiled, pairwise Shannon expansion
  steps, MV-index components touched).

``QueryResult.to_dict()`` reproduces the legacy ``{answer: probability}``
shape, so code written against the old surface keeps working after a one
word change; ``to_json()`` is the JSON-safe face used by ``repro --json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import InferenceError


@dataclass(frozen=True)
class Answer:
    """One answer tuple of a query together with its per-answer provenance."""

    #: The answer tuple (empty for a Boolean query).
    values: tuple[Any, ...]
    #: Marginal probability of the answer under the MVDB semantics.
    probability: float
    #: Number of clauses in the answer's lineage DNF (0 for a false lineage).
    lineage_size: int = 0

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)


@dataclass(frozen=True)
class QueryResult:
    """Every answer of one query, plus how the evaluation went.

    Iterating yields :class:`Answer` objects in descending probability
    order (ties broken by answer repr, so the order is deterministic);
    ``result[values]`` looks up one answer's probability by tuple.
    """

    #: Answers, one per derived tuple (Boolean queries have at most one,
    #: keyed by the empty tuple).
    answers: tuple[Answer, ...]
    #: Name of the inference method that produced the probabilities.
    method: str
    #: Whether the method is exact (``False`` e.g. for sampling estimates).
    exact: bool = True
    #: ``True`` when the probabilities came from a session result cache.
    cached: bool = False
    #: Wall-clock seconds spent producing this result (cache hits included).
    wall_time: float = 0.0
    #: Nodes of the query OBDDs compiled during evaluation (0 when the
    #: method does not compile one, e.g. Shannon expansion).
    obdd_nodes: int = 0
    #: Pairwise expansion steps performed by the MV-index intersections.
    steps: int = 0
    #: MV-index components touched across all answers (0 without an index).
    touched_components: int = 0
    #: MV-index components the skip analysis proved irrelevant before any
    #: OBDD work touched them (0 when skipping was off or not applicable).
    skipped_components: int = 0
    #: Wall-clock milliseconds the summary matching itself took (micro-scale;
    #: reported so the skip layer's overhead stays observable).
    skip_analysis_ms: float = 0.0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(
            sorted(self.answers, key=lambda a: (-a.probability, repr(a.values)))
        )

    def __getitem__(self, values: tuple[Any, ...]) -> float:
        for answer in self.answers:
            if answer.values == values:
                return answer.probability
        raise KeyError(values)

    def probability(self, values: tuple[Any, ...] = ()) -> float:
        """Probability of one answer tuple; 0.0 if it has no derivation."""
        try:
            return self[values]
        except KeyError:
            return 0.0

    def boolean_probability(self) -> float:
        """``P(Q)`` for a Boolean query's result.

        Raises :class:`~repro.errors.InferenceError` when the result has
        answers with free variables — asking for "the" probability of a
        non-Boolean result is a category error, not a 0.0.
        """
        non_boolean = [answer.values for answer in self.answers if answer.values]
        if non_boolean:
            raise InferenceError(
                f"the result has {len(non_boolean)} non-Boolean answer(s) "
                f"(e.g. {non_boolean[0]!r}); use probability(values) or iterate"
            )
        return self.probability(())

    # ------------------------------------------------------------- conversion
    def to_dict(self) -> dict[tuple[Any, ...], float]:
        """The legacy ``{answer tuple: probability}`` mapping."""
        return {answer.values: answer.probability for answer in self.answers}

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable document (tuple keys become value lists)."""
        return {
            "method": self.method,
            "exact": self.exact,
            "cached": self.cached,
            "wall_time_ms": self.wall_time * 1000.0,
            "obdd_nodes": self.obdd_nodes,
            "steps": self.steps,
            "touched_components": self.touched_components,
            "skipped_components": self.skipped_components,
            "skip_analysis_ms": self.skip_analysis_ms,
            "answers": [
                {
                    "values": list(answer.values),
                    "probability": answer.probability,
                    "lineage_size": answer.lineage_size,
                }
                for answer in self
            ],
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "QueryResult":
        """Rebuild a result from its :meth:`to_json` document.

        The inverse of :meth:`to_json` up to tuple-versus-list answer values
        (JSON has no tuples); used by the HTTP client to return the same
        typed results over the wire that the in-process facade returns.
        """
        try:
            answers = tuple(
                Answer(
                    values=tuple(entry["values"]),
                    probability=entry["probability"],
                    lineage_size=entry.get("lineage_size", 0),
                )
                for entry in document["answers"]
            )
            return cls(
                answers=answers,
                method=document["method"],
                exact=document.get("exact", True),
                cached=document.get("cached", False),
                wall_time=document.get("wall_time_ms", 0.0) / 1000.0,
                obdd_nodes=document.get("obdd_nodes", 0),
                steps=document.get("steps", 0),
                touched_components=document.get("touched_components", 0),
                skipped_components=document.get("skipped_components", 0),
                skip_analysis_ms=document.get("skip_analysis_ms", 0.0),
            )
        except (KeyError, TypeError) as exc:
            raise InferenceError(f"malformed QueryResult document: {exc!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        provenance = "cached" if self.cached else "computed"
        return (
            f"QueryResult({len(self.answers)} answers via {self.method!r}, "
            f"{provenance} in {self.wall_time * 1000.0:.2f}ms)"
        )
