"""Configuration of the synthetic DBLP-style workload.

The paper's experiments run on the real DBLP dump (1M authors, 4.5M Wrote
tuples, Fig. 1).  That dataset is not redistributable here, so the workload
is generated synthetically: research groups with one senior author (the
prospective advisor), several students, co-authored papers during the
students' early years, and home pages that determine a known affiliation for
some authors.  The generator is seeded and scales linearly with
``group_count``, so the domain sweeps of Figs. 4–9 can be reproduced at
laptop scale while keeping the paper's growth shapes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DblpConfig:
    """Parameters of the synthetic DBLP generator."""

    #: Number of research groups (one advisor plus students per group).
    group_count: int = 30
    #: Minimum / maximum number of students per group.
    min_students: int = 2
    max_students: int = 4
    #: Papers co-authored by a student with their advisor during the PhD.
    min_coauthored_papers: int = 3
    max_coauthored_papers: int = 8
    #: Solo / senior papers published by the advisor before the group started.
    advisor_prior_papers: int = 4
    #: Extra cross-group collaborations per student (introduces noise edges).
    cross_group_papers: int = 1
    #: Fraction of students who also publish with a senior from another group,
    #: creating a *second* advisor candidate (what the denial view V2 penalises).
    second_advisor_fraction: float = 0.6
    #: Year range of the synthetic bibliography.
    first_year: int = 1995
    last_year: int = 2012
    #: Length of a student's PhD (years with co-authored papers).
    phd_years: int = 5
    #: Fraction of advisors with a home page (hence a known DBLP affiliation).
    homepage_fraction: float = 0.9
    #: Recent-collaboration threshold used by MarkoView V3 (paper: 30 papers on
    #: full DBLP; scaled down for the synthetic data).
    v3_copub_threshold: int = 4
    #: Year cut-offs of the Affiliation feature / V3 (paper: 2005 and 2004).
    affiliation_year_cutoff: int = 2005
    v3_year_cutoff: int = 2004
    #: Minimum number of co-authored papers for an Advisor candidate (paper: > 2).
    advisor_min_papers: int = 2
    #: Random seed for reproducibility.
    seed: int = 0

    def scaled(self, group_count: int) -> "DblpConfig":
        """A copy of this configuration with a different number of groups."""
        from dataclasses import replace

        return replace(self, group_count=group_count)
