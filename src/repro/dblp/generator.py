"""Synthetic DBLP-style data generator (the deterministic tables of Fig. 1).

Generated relations:

* ``Author(aid, name)`` — advisors are named ``"Advisor <g>"`` and students
  ``"Student <g>-<i>"`` so that the paper's LIKE-based workload queries
  ("find the students of advisor X") have natural selection constants;
* ``Wrote(aid, pid)`` and ``Pub(pid, title, year)`` — each student
  co-authors several papers with their advisor during their PhD years, the
  advisor has earlier solo papers (so the advisor's first publication
  predates the student's), and a few cross-group papers add noise;
* ``HomePage(aid, url)`` — advisors (and a few students) have a home page at
  their group's institution;
* derived views ``FirstPub(aid, year)`` and ``DBLPAffiliation(aid, inst)``,
  exactly as in Fig. 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.db.database import Database
from repro.dblp.config import DblpConfig

#: Rows buffered per relation before a bulk insert into the backend.
STREAM_BATCH = 8192


class _Stream:
    """Buffered writer into one backend table (one transaction per batch)."""

    def __init__(self, table: Any, batch: int = STREAM_BATCH) -> None:
        self.table = table
        self.batch = batch
        self._buffer: list[tuple[Any, ...]] = []

    def add(self, row: tuple[Any, ...]) -> None:
        self._buffer.append(row)
        if len(self._buffer) >= self.batch:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self.table.insert_many(self._buffer)
            self._buffer.clear()


@dataclass
class DblpData:
    """The generated deterministic database plus convenient lookup structures."""

    config: DblpConfig
    database: Database
    #: aid of the advisor of each group.
    advisors: list[int] = field(default_factory=list)
    #: (aid, group index) of every student.
    students: list[tuple[int, int]] = field(default_factory=list)
    #: institution name of each group.
    institutions: list[str] = field(default_factory=list)

    def author_name(self, aid: int) -> str:
        """Name of an author."""
        for row_aid, name in self.database.rows("Author"):
            if row_aid == aid:
                return name
        raise KeyError(aid)


def generate_dblp(config: DblpConfig | None = None, backend: Any = None) -> DblpData:
    """Generate the deterministic DBLP-style database described in Fig. 1.

    ``backend`` selects the storage backend of the generated database
    (``"sqlite"`` streams rows straight to disk in batched transactions, so
    million-tuple instances never materialise in Python memory).  Insertion
    order is identical on every backend: ``Author``/``Pub``/``HomePage`` rows
    stream out in generation order, ``Wrote`` is buffered and sorted —
    exactly the order the in-memory generator has always produced, which
    keeps downstream variable assignment reproducible.
    """
    config = config or DblpConfig()
    rng = random.Random(config.seed)

    database = Database(backend=backend)
    authors = _Stream(database.create_table("Author", ["aid", "name"]))
    # Wrote is accumulated as a set: co-authorship generation produces
    # duplicates, and the relation is sorted before loading (stable order).
    wrote: set[tuple[int, int]] = set()
    wrote_table = database.create_table("Wrote", ["aid", "pid"])
    pubs = _Stream(database.create_table("Pub", ["pid", "title", "year"]))
    homepages = _Stream(database.create_table("HomePage", ["aid", "url"]))
    advisors: list[int] = []
    students: list[tuple[int, int]] = []
    institutions: list[str] = []

    next_aid = 1
    next_pid = 1

    def new_paper(year: int, author_ids: list[int]) -> None:
        nonlocal next_pid
        pubs.add((next_pid, f"Paper {next_pid}", year))
        for aid in author_ids:
            wrote.add((aid, next_pid))
        next_pid += 1

    for group in range(config.group_count):
        institution = f"inst{group}.edu"
        institutions.append(institution)

        advisor_aid = next_aid
        next_aid += 1
        authors.add((advisor_aid, f"Advisor {group}"))
        advisors.append(advisor_aid)
        if rng.random() < config.homepage_fraction:
            homepages.add((advisor_aid, f"http://www.{institution}/~adv{group}"))

        group_start = rng.randint(config.first_year, config.last_year - config.phd_years - 2)
        # The advisor publishes alone before the group exists, which pushes the
        # advisor's FirstPub far before the students' and keeps the advisor out
        # of the Student candidate table during the students' PhD years.
        for offset in range(config.advisor_prior_papers):
            new_paper(max(config.first_year, group_start - offset - 1), [advisor_aid])

        student_count = rng.randint(config.min_students, config.max_students)
        group_students: list[int] = []
        for index in range(student_count):
            student_aid = next_aid
            next_aid += 1
            authors.add((student_aid, f"Student {group}-{index}"))
            students.append((student_aid, group))
            group_students.append(student_aid)

            phd_start = group_start + rng.randint(0, 2)
            papers = rng.randint(config.min_coauthored_papers, config.max_coauthored_papers)
            for __ in range(papers):
                year = min(config.last_year, phd_start + rng.randint(0, config.phd_years - 1))
                coauthors = [student_aid, advisor_aid]
                # Occasionally a labmate joins the paper.
                if group_students[:-1] and rng.random() < 0.3:
                    coauthors.append(rng.choice(group_students[:-1]))
                new_paper(year, coauthors)

            # Many students also co-author with a senior from an earlier group:
            # this creates a second advisor candidate, which is what the denial
            # view V2 ("a person has only one advisor") rules against.
            if advisors[:-1] and rng.random() < config.second_advisor_fraction:
                second_advisor = rng.choice(advisors[:-1])
                for __ in range(config.advisor_min_papers + 1):
                    year = min(
                        config.last_year, phd_start + rng.randint(0, config.phd_years - 1)
                    )
                    new_paper(year, [student_aid, second_advisor])

        # Recent collaborations inside the group (drive the Affiliation feature
        # and MarkoView V3): group members publish together after the cutoff,
        # both with the advisor and in student-student pairs (the latter is what
        # gives V3 pairs of inferred-affiliation authors).
        recent_year = max(config.affiliation_year_cutoff + 1, group_start + config.phd_years)
        recent_year = min(recent_year, config.last_year)
        for member in group_students:
            for __ in range(config.v3_copub_threshold + 1):
                new_paper(min(config.last_year, recent_year + rng.randint(0, 2)), [member, advisor_aid])
        for left, right in zip(group_students, group_students[1:]):
            for __ in range(config.v3_copub_threshold + 1):
                new_paper(min(config.last_year, recent_year + rng.randint(0, 2)), [left, right])

    # Cross-group noise papers.
    rng_students = [aid for aid, __ in students]
    for student_aid, group in students:
        for __ in range(config.cross_group_papers):
            other = rng.choice(rng_students)
            if other == student_aid:
                continue
            # Cross-group papers are recent so that they never predate anybody's
            # group publications (keeping FirstPub ordered advisor-before-student).
            year = rng.randint(config.affiliation_year_cutoff, config.last_year)
            new_paper(year, [student_aid, other])

    authors.flush()
    pubs.flush()
    homepages.flush()
    wrote_table.insert_many(sorted(wrote))
    _add_derived_views(database)
    return DblpData(
        config=config,
        database=database,
        advisors=advisors,
        students=students,
        institutions=institutions,
    )


def _add_derived_views(database: Database) -> None:
    """Materialise the derived views FirstPub and DBLPAffiliation of Fig. 1."""
    first_pub: dict[int, int] = {}
    pub_year = {pid: year for pid, __, year in database.table("Pub").scan()}
    for aid, pid in database.table("Wrote").scan():
        year = pub_year[pid]
        if aid not in first_pub or year < first_pub[aid]:
            first_pub[aid] = year
    database.create_table("FirstPub", ["aid", "year"], sorted(first_pub.items()))

    affiliations = []
    for aid, url in database.rows("HomePage"):
        institution = url.split("www.", 1)[-1].split("/", 1)[0]
        affiliations.append((aid, institution))
    database.create_table("DBLPAffiliation", ["aid", "inst"], affiliations)


def restrict_to_aid(data: DblpData, max_aid: int) -> DblpData:
    """Restrict the dataset to authors with ``aid ≤ max_aid``.

    This reproduces the sweep methodology of Sect. 5.1, where the domain of
    ``aid`` is limited to 1000..10000 to scale the workload.
    """
    database = Database()
    keep = {aid for aid, __ in data.database.rows("Author") if aid <= max_aid}
    database.create_table(
        "Author", ["aid", "name"], [row for row in data.database.rows("Author") if row[0] in keep]
    )
    wrote = [row for row in data.database.rows("Wrote") if row[0] in keep]
    kept_pids = {pid for __, pid in wrote}
    database.create_table("Wrote", ["aid", "pid"], wrote)
    database.create_table(
        "Pub", ["pid", "title", "year"], [row for row in data.database.rows("Pub") if row[0] in kept_pids]
    )
    database.create_table(
        "HomePage", ["aid", "url"], [row for row in data.database.rows("HomePage") if row[0] in keep]
    )
    _add_derived_views_from_existing(database, data.database, keep)
    return DblpData(
        config=data.config,
        database=database,
        advisors=[aid for aid in data.advisors if aid in keep],
        students=[(aid, group) for aid, group in data.students if aid in keep],
        institutions=list(data.institutions),
    )


def _add_derived_views_from_existing(
    database: Database, source: Database, keep: set[int]
) -> None:
    database.create_table(
        "FirstPub", ["aid", "year"], [row for row in source.rows("FirstPub") if row[0] in keep]
    )
    database.create_table(
        "DBLPAffiliation",
        ["aid", "inst"],
        [row for row in source.rows("DBLPAffiliation") if row[0] in keep],
    )
