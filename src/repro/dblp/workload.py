"""Assembly of the DBLP MVDB and the workload queries of Sect. 5.

:func:`build_mvdb` puts together the deterministic tables (generator), the
probabilistic tables (weights of Fig. 1's middle block) and the MarkoViews
V1–V3, producing the :class:`~repro.core.MVDB` on which every experiment of
Sect. 5 runs.  The query builders mirror the paper's workload: *find the
students of advisor X*, *find the advisor of student Y*, and *find the
affiliation of author Z* (plus the running-example "Madden" query).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mvdb import MVDB
from repro.dblp.config import DblpConfig
from repro.errors import SchemaError
from repro.dblp.generator import DblpData, generate_dblp, restrict_to_aid
from repro.dblp.probabilistic import (
    ProbabilisticTables,
    build_probabilistic_tables,
    iter_weighted_rows,
)
from repro.dblp.views import recent_copub_rows, v1_view, v2_view, v3_view
from repro.query.parser import parse_query
from repro.query.ucq import UCQ


@dataclass
class DblpWorkload:
    """Everything the experiments need: data, probabilistic tables, and the MVDB."""

    config: DblpConfig
    data: DblpData
    tables: ProbabilisticTables
    mvdb: MVDB

    def size_report(self) -> dict[str, int]:
        """Row counts of every deterministic/probabilistic relation and view."""
        return self.mvdb.size_report()


def build_mvdb(
    config: DblpConfig | None = None,
    data: DblpData | None = None,
    include_views: tuple[str, ...] = ("V1", "V2", "V3"),
    include_affiliation: bool = True,
    backend: "str | None" = None,
) -> DblpWorkload:
    """Build the DBLP MVDB of Fig. 1.

    Parameters
    ----------
    config:
        Generator configuration (scale, seed, thresholds).
    data:
        Optionally reuse an existing deterministic dataset (e.g. one produced
        by :func:`repro.dblp.generator.restrict_to_aid` for a domain sweep).
    include_views:
        Which of the MarkoViews V1/V2/V3 to attach — the Alchemy comparison
        of Sect. 5.1 uses only V1 and V2, exactly as the paper does.
    include_affiliation:
        Whether to materialise the Affiliation probabilistic table (not needed
        when V3 is excluded; skipping it speeds up sweeps).
    backend:
        Storage backend spec for the MVDB (and, when ``data`` is not
        supplied, for the generated deterministic dataset too) —
        ``"memory"`` (default), ``"sqlite"`` or ``"sqlite:<path>"``.
    """
    unknown = sorted(set(include_views) - {"V1", "V2", "V3"})
    if unknown:
        # Silently dropping a typo'd view name would build an MVDB without the
        # intended correlations and make every probability quietly wrong.
        raise SchemaError(f"unknown MarkoView name(s) {unknown}; choose from V1, V2, V3")
    config = config or DblpConfig()
    data = data or generate_dblp(config, backend=backend)
    tables = build_probabilistic_tables(data)

    mvdb = MVDB(backend=backend)
    for table in data.database:
        mvdb.add_deterministic_table(table.name, table.schema.attribute_names, table.scan())
    mvdb.add_deterministic_table("RecentCoPub", ["aid1", "aid2"], recent_copub_rows(tables, config))

    mvdb.add_probabilistic_table(
        "Student", ["aid", "year"], iter_weighted_rows(tables.student)
    )
    mvdb.add_probabilistic_table(
        "Advisor", ["aid1", "aid2"], iter_weighted_rows(tables.advisor)
    )
    if include_affiliation or "V3" in include_views:
        mvdb.add_probabilistic_table(
            "Affiliation", ["aid", "inst"], iter_weighted_rows(tables.affiliation)
        )

    if "V1" in include_views:
        mvdb.add_markoview(v1_view(tables))
    if "V2" in include_views:
        mvdb.add_markoview(v2_view())
    if "V3" in include_views:
        mvdb.add_markoview(v3_view(tables, config))

    return DblpWorkload(config=config, data=data, tables=tables, mvdb=mvdb)


def build_sweep_mvdb(
    base_data: DblpData,
    max_aid: int,
    include_views: tuple[str, ...] = ("V1", "V2"),
) -> DblpWorkload:
    """An MVDB over the subset of authors with ``aid ≤ max_aid`` (Sect. 5.1 sweeps)."""
    restricted = restrict_to_aid(base_data, max_aid)
    return build_mvdb(
        config=base_data.config,
        data=restricted,
        include_views=include_views,
        include_affiliation="V3" in include_views,
    )


# --------------------------------------------------------------------- queries
def students_of_advisor(advisor_name: str) -> UCQ:
    """Find all (probable) students of the advisor whose name matches."""
    return parse_query(
        "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
        f"n1 like '%{advisor_name}%'"
    )


def advisor_of_student(student_name: str) -> UCQ:
    """Find the (probable) advisor of the student whose name matches."""
    return parse_query(
        "Q(aid1) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
        f"n like '%{student_name}%'"
    )


def affiliation_of_author(author_name: str) -> UCQ:
    """Find the (probable) affiliation of the author whose name matches."""
    return parse_query(
        "Q(inst) :- Affiliation(aid, inst), Author(aid, n), " f"n like '%{author_name}%'"
    )


def madden_query(advisor_name: str = "Advisor 0") -> UCQ:
    """The running example of Fig. 2: students advised by a named advisor."""
    return parse_query(
        "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
        f"Author(aid1, n1), n1 like '%{advisor_name}%'"
    )
