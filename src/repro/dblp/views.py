"""The MarkoViews of Fig. 1: V1 (advisor/co-publication), V2 (single advisor), V3 (affiliation).

* ``V1(aid1, aid2)[count(pid)/2]`` — the more papers ``aid1`` and ``aid2``
  co-authored while ``aid1`` was a student, the more likely ``aid2`` is the
  advisor: a positive correlation between the ``Advisor`` tuple and the
  ``Student`` tuples contributing to it.
* ``V2(aid1, aid2, aid3)[0]`` — a person has at most one advisor: a hard
  denial constraint between pairs of ``Advisor`` tuples.
* ``V3(aid1, aid2, inst)[count(pid)/5]`` — people who recently published a
  lot together very likely share an affiliation: a positive correlation
  between ``Affiliation`` tuples.

As in footnote 3 of the paper, the aggregate sub-query of V3 (the recent
co-publication count) is first materialised as a deterministic table
(``RecentCoPub``) so that the view itself stays a conjunctive query.  The
parameterised weights ``count(pid)/2`` and ``count(pid)/5`` are supplied as
weight callables closing over the pre-computed counts.
"""

from __future__ import annotations

from repro.core.markoview import MarkoView
from repro.dblp.config import DblpConfig
from repro.dblp.probabilistic import ProbabilisticTables
from repro.query.parser import parse_query


def v1_view(tables: ProbabilisticTables) -> MarkoView:
    """V1: positive correlation between an Advisor tuple and the Student tuples."""
    counts = tables.student_copub_count

    def weight(row: tuple) -> float:
        aid1, aid2 = row
        return counts.get((aid1, aid2), 0) / 2.0

    query = parse_query(
        "V1(aid1, aid2) :- Advisor(aid1, aid2), Student(aid1, year), "
        "Wrote(aid1, pid), Wrote(aid2, pid), Pub(pid, title, year)"
    )
    return MarkoView(
        "V1",
        query,
        weight,
        description="the more they published together while aid1 was a student, "
        "the more likely aid2 was the advisor",
    )


def v2_view() -> MarkoView:
    """V2: a person has only one advisor (hard denial constraint)."""
    query = parse_query(
        "V2(aid1, aid2, aid3) :- Advisor(aid1, aid2), Advisor(aid1, aid3), aid2 <> aid3"
    )
    return MarkoView("V2", query, 0.0, description="a person has only one advisor")


def v3_view(tables: ProbabilisticTables, config: DblpConfig) -> MarkoView:
    """V3: people who recently published a lot together share an affiliation."""
    counts = tables.recent_copub_count

    def weight(row: tuple) -> float:
        aid1, aid2, __ = row
        return counts.get((aid1, aid2), 0) / 5.0

    query = parse_query(
        "V3(aid1, aid2, inst) :- Affiliation(aid1, inst), Affiliation(aid2, inst), "
        "RecentCoPub(aid1, aid2)"
    )
    return MarkoView(
        "V3",
        query,
        weight,
        description="if two people have published a lot together recently, their "
        "affiliations are very likely the same",
    )


def recent_copub_rows(tables: ProbabilisticTables, config: DblpConfig) -> list[tuple[int, int]]:
    """Rows of the deterministic ``RecentCoPub`` helper table used by V3."""
    return sorted(
        pair
        for pair, count in tables.recent_copub_count.items()
        if count > config.v3_copub_threshold
    )
