"""The probabilistic tables of Fig. 1: Studentp, Advisorp, Affiliationp.

Each table is defined by a query over the deterministic DBLP tables together
with a weight expression (the middle block of Fig. 1):

* ``Studentp(aid, year)[exp(1 − 0.15·(year − year'))]`` for every year within
  ``[year' − 1, year' + 5]`` of the author's first publication ``year'``;
* ``Advisorp(aid1, aid2)[exp(0.25·count(pid))]`` when ``aid1`` (a candidate
  student) and ``aid2`` (not a student that year) co-authored more than the
  configured number of papers during ``aid1``'s student years;
* ``Affiliationp(aid, inst)[exp(0.1·count(pid))]`` when ``aid`` (with no
  known DBLP affiliation) recently co-authored papers with authors from
  ``inst``.

The aggregates (``count(pid)``) are computed here directly over the
deterministic tables — in the paper this is the SQL that materialises the
probabilistic tables in Postgres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.dblp.generator import DblpData


@dataclass
class ProbabilisticTables:
    """Weighted rows of the three probabilistic tables plus the support counts."""

    #: (aid, year) -> weight.
    student: dict[tuple[int, int], float] = field(default_factory=dict)
    #: (aid1, aid2) -> weight.
    advisor: dict[tuple[int, int], float] = field(default_factory=dict)
    #: (aid, inst) -> weight.
    affiliation: dict[tuple[int, str], float] = field(default_factory=dict)
    #: (aid1, aid2) -> number of co-authored papers while aid1 was a student
    #: (feeds both the Advisorp weight and the V1 view weight).
    student_copub_count: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (aid1, aid2) -> number of recent co-authored papers (feeds V3).
    recent_copub_count: dict[tuple[int, int], int] = field(default_factory=dict)

    def sizes(self) -> dict[str, int]:
        """Row counts, for the Fig. 1 inventory."""
        return {
            "Student": len(self.student),
            "Advisor": len(self.advisor),
            "Affiliation": len(self.affiliation),
        }


def build_probabilistic_tables(data: DblpData) -> ProbabilisticTables:
    """Materialise Studentp, Advisorp, Affiliationp from the deterministic tables."""
    config = data.config
    database = data.database
    tables = ProbabilisticTables()

    first_pub = {aid: year for aid, year in database.rows("FirstPub")}
    pub_year = {pid: year for pid, __, year in database.rows("Pub")}
    authors_of_pid: dict[int, list[int]] = {}
    pids_of_author: dict[int, list[int]] = {}
    for aid, pid in database.rows("Wrote"):
        authors_of_pid.setdefault(pid, []).append(aid)
        pids_of_author.setdefault(aid, []).append(pid)

    # ------------------------------------------------------------- Studentp
    for aid, year_first in first_pub.items():
        for year in range(year_first - 1, year_first + 6):
            tables.student[(aid, year)] = math.exp(1.0 - 0.15 * (year - year_first))

    student_years = {}
    for (aid, year) in tables.student:
        student_years.setdefault(aid, set()).add(year)

    # ------------------------------------------------------------- Advisorp
    copub: dict[tuple[int, int], int] = {}
    for pid, authors in authors_of_pid.items():
        year = pub_year[pid]
        for aid1 in authors:
            if year not in student_years.get(aid1, ()):
                continue
            for aid2 in authors:
                if aid2 == aid1:
                    continue
                if year in student_years.get(aid2, ()):
                    continue
                copub[(aid1, aid2)] = copub.get((aid1, aid2), 0) + 1
    tables.student_copub_count = copub
    for (aid1, aid2), count in copub.items():
        if count > config.advisor_min_papers:
            tables.advisor[(aid1, aid2)] = math.exp(0.25 * count)

    # ---------------------------------------------------------- Affiliationp
    known_affiliation = {aid: inst for aid, inst in database.rows("DBLPAffiliation")}
    recent_copub: dict[tuple[int, int], int] = {}
    affiliation_support: dict[tuple[int, str], int] = {}
    for pid, authors in authors_of_pid.items():
        year = pub_year[pid]
        if year > config.v3_year_cutoff:
            for aid1 in authors:
                for aid2 in authors:
                    if aid1 != aid2:
                        recent_copub[(aid1, aid2)] = recent_copub.get((aid1, aid2), 0) + 1
        if year <= config.affiliation_year_cutoff:
            continue
        for aid in authors:
            if aid in known_affiliation:
                continue
            for aid2 in authors:
                if aid2 == aid or aid2 not in known_affiliation:
                    continue
                key = (aid, known_affiliation[aid2])
                affiliation_support[key] = affiliation_support.get(key, 0) + 1
    tables.recent_copub_count = recent_copub
    for (aid, inst), count in affiliation_support.items():
        tables.affiliation[(aid, inst)] = math.exp(0.1 * count)

    return tables


def top_weighted(rows: dict, limit: int = 10) -> list[tuple]:
    """The ``limit`` heaviest rows of a probabilistic table (debugging helper)."""
    return sorted(rows.items(), key=lambda item: -item[1])[:limit]


def iter_weighted_rows(rows: dict) -> Iterable[tuple[tuple, float]]:
    """Yield ``(row, weight)`` pairs in a deterministic order."""
    for key in sorted(rows, key=repr):
        yield key, rows[key]
