"""Synthetic DBLP workload: generator, probabilistic tables, MarkoViews, queries."""

from repro.dblp.config import DblpConfig
from repro.dblp.generator import DblpData, generate_dblp, restrict_to_aid
from repro.dblp.probabilistic import ProbabilisticTables, build_probabilistic_tables
from repro.dblp.views import recent_copub_rows, v1_view, v2_view, v3_view
from repro.dblp.workload import (
    DblpWorkload,
    advisor_of_student,
    affiliation_of_author,
    build_mvdb,
    build_sweep_mvdb,
    madden_query,
    students_of_advisor,
)

__all__ = [
    "DblpConfig",
    "DblpData",
    "DblpWorkload",
    "ProbabilisticTables",
    "advisor_of_student",
    "affiliation_of_author",
    "build_mvdb",
    "build_probabilistic_tables",
    "build_sweep_mvdb",
    "generate_dblp",
    "madden_query",
    "recent_copub_rows",
    "restrict_to_aid",
    "students_of_advisor",
    "v1_view",
    "v2_view",
    "v3_view",
]
