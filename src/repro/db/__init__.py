"""Relational substrate (schemas, tables, databases, storage backends, CSV I/O)."""

from repro.db.backend import BACKEND_NAMES, MemoryBackend, StorageBackend, resolve_backend
from repro.db.database import Database
from repro.db.schema import Attribute, RelationSchema
from repro.db.sqlite_backend import SqliteBackend, SqliteTable
from repro.db.table import Row, Table
from repro.db.csvio import load_database, load_table, save_database, save_table

__all__ = [
    "Attribute",
    "BACKEND_NAMES",
    "Database",
    "MemoryBackend",
    "RelationSchema",
    "Row",
    "SqliteBackend",
    "SqliteTable",
    "StorageBackend",
    "Table",
    "load_database",
    "load_table",
    "resolve_backend",
    "save_database",
    "save_table",
]
