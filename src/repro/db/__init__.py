"""In-memory relational substrate (schemas, tables, databases, CSV I/O)."""

from repro.db.database import Database
from repro.db.schema import Attribute, RelationSchema
from repro.db.table import Row, Table
from repro.db.csvio import load_database, load_table, save_database, save_table

__all__ = [
    "Attribute",
    "Database",
    "RelationSchema",
    "Row",
    "Table",
    "load_database",
    "load_table",
    "save_database",
    "save_table",
]
