"""CSV import/export for tables and databases.

The synthetic DBLP workload can be persisted to disk so that the benchmark
harness does not have to regenerate data on every run, and so that users can
inspect or substitute their own data (e.g. a real DBLP extract).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.db.database import Database
from repro.db.schema import RelationSchema
from repro.db.table import Table


def _convert(value: str) -> Any:
    """Best-effort conversion of a CSV cell back into int/float/str."""
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def save_table(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.attribute_names)
        for row in table:
            writer.writerow(row)


def load_table(name: str, path: str | Path) -> Table:
    """Load a table called ``name`` from a CSV file written by :func:`save_table`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        schema = RelationSchema(name, header)
        table = Table(schema)
        for row in reader:
            table.insert(tuple(_convert(cell) for cell in row))
    return table


def save_database(database: Database, directory: str | Path) -> None:
    """Write every table of ``database`` into ``directory`` as ``<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in database:
        save_table(table, directory / f"{table.name}.csv")


def load_database(directory: str | Path) -> Database:
    """Load every ``*.csv`` file in ``directory`` into a new database."""
    directory = Path(directory)
    database = Database()
    for path in sorted(directory.glob("*.csv")):
        database.add_table(load_table(path.stem, path))
    return database
