"""CSV import/export for tables and databases.

The synthetic DBLP workload can be persisted to disk so that the benchmark
harness does not have to regenerate data on every run, and so that users can
inspect or substitute their own data (e.g. a real DBLP extract).

Loading is backend-aware: pass ``backend="sqlite"`` (or any other spec from
:mod:`repro.db.backend`) to ingest a CSV directory straight into a
disk-backed database without materialising it in memory first.  Malformed
input fails loudly — an arity mismatch raises
:class:`~repro.errors.SchemaError` naming the file and line — while blank
lines are skipped and duplicate rows collapse under set semantics.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.db.backend import resolve_backend
from repro.db.database import Database
from repro.db.schema import RelationSchema
from repro.errors import SchemaError


def _convert(value: str) -> Any:
    """Best-effort conversion of a CSV cell back into int/float/str."""
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def save_table(table: Any, path: str | Path) -> None:
    """Write ``table`` to ``path`` as a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.attribute_names)
        for row in table:
            writer.writerow(row)


def load_table(name: str, path: str | Path, backend: Any = None) -> Any:
    """Load a table called ``name`` from a CSV file written by :func:`save_table`.

    Blank lines are ignored and duplicate rows collapse (tables are sets).

    Raises
    ------
    SchemaError
        If the file has no header row, or a data row's field count does
        not match the header arity (the message names file and line).
    """
    backend = resolve_backend(backend)
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file (missing header row)") from None
        schema = RelationSchema(name, header)
        table = backend.create_table(schema)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != schema.arity:
                raise SchemaError(
                    f"{path}:{lineno}: row has {len(row)} fields, expected "
                    f"{schema.arity} for relation {name!r}"
                )
            table.insert(tuple(_convert(cell) for cell in row))
    return table


def save_database(database: Database, directory: str | Path) -> None:
    """Write every table of ``database`` into ``directory`` as ``<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in database:
        save_table(table, directory / f"{table.name}.csv")


def load_database(directory: str | Path, backend: Any = None) -> Database:
    """Load every ``*.csv`` file in ``directory`` into a new database.

    ``backend`` selects the storage backend of the resulting database
    (memory by default; ``"sqlite"``/``"sqlite:<path>"`` for disk).
    """
    directory = Path(directory)
    database = Database(backend=backend)
    for path in sorted(directory.glob("*.csv")):
        database.add_table(load_table(path.stem, path, backend=database.backend))
    return database
