"""A database instance: a named collection of tables.

This is the deterministic substrate on which everything else is layered:
MarkoView grounding, lineage extraction, the MVDB-to-INDB translation, and
the synthetic DBLP workload all operate on a :class:`Database`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.db.schema import RelationSchema
from repro.db.table import Row, Table
from repro.errors import SchemaError, UnknownRelationError


class Database:
    """A mutable collection of :class:`~repro.db.table.Table` objects."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    # ---------------------------------------------------------------- tables
    def add_table(self, table: Table) -> Table:
        """Register an existing table; its name must be unused."""
        if table.name in self._tables:
            raise SchemaError(f"relation {table.name!r} already exists in the database")
        self._tables[table.name] = table
        return table

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        key: Sequence[str] | None = None,
    ) -> Table:
        """Create, register and return a new table."""
        schema = RelationSchema(name, attributes, key=key)
        return self.add_table(Table(schema, rows))

    def drop_table(self, name: str) -> None:
        """Remove a table; raises if it does not exist."""
        if name not in self._tables:
            raise UnknownRelationError(f"cannot drop unknown relation {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return the table named ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def relation_names(self) -> list[str]:
        """Names of all relations, in registration order."""
        return list(self._tables)

    # --------------------------------------------------------------- helpers
    def active_domain(self, relations: Iterable[str] | None = None) -> set[Any]:
        """Union of the active domains of the given relations (default: all)."""
        names = self.relation_names() if relations is None else list(relations)
        domain: set[Any] = set()
        for name in names:
            domain.update(self.table(name).active_domain())
        return domain

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self)

    def size_report(self) -> dict[str, int]:
        """Mapping ``relation name -> row count`` (the Fig. 1 inventory table)."""
        return {table.name: len(table) for table in self}

    def copy(self) -> "Database":
        """A copy with independently mutable tables."""
        return Database(table.copy() for table in self)

    def contains_row(self, relation: str, row: Sequence[Any]) -> bool:
        """True if ``row`` is present in ``relation``."""
        return tuple(row) in self.table(relation)

    def insert(self, relation: str, row: Sequence[Any]) -> bool:
        """Insert a row into an existing relation."""
        return self.table(relation).insert(row)

    def rows(self, relation: str) -> list[Row]:
        """All rows of a relation."""
        return self.table(relation).rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{t.name}:{len(t)}" for t in self)
        return f"Database({parts})"
