"""A database instance: a named collection of tables over a storage backend.

This is the deterministic substrate on which everything else is layered:
MarkoView grounding, lineage extraction, the MVDB-to-INDB translation, and
the synthetic DBLP workload all operate on a :class:`Database`.

Tables live in a :class:`~repro.db.backend.StorageBackend` — the in-memory
reference backend by default, or the disk-backed sqlite backend for
instances too large for Python dicts (see :mod:`repro.db.backend` for the
spec syntax accepted by ``backend=``).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.db.backend import StorageBackend, resolve_backend
from repro.db.schema import RelationSchema
from repro.db.table import Row, Table
from repro.errors import SchemaError, UnknownRelationError


class Database:
    """A mutable collection of relations stored in one backend.

    Parameters
    ----------
    tables:
        Optional pre-built table objects to register (they keep whatever
        storage they already have; only tables made via
        :meth:`create_table` land in this database's backend).
    backend:
        Storage backend spec — ``None``/``"memory"``, ``"sqlite"``,
        ``"sqlite:<path>"`` or a backend instance.
    """

    def __init__(self, tables: Iterable[Any] = (), backend: Any = None) -> None:
        self._backend = resolve_backend(backend)
        self._tables: dict[str, Any] = {}
        for table in tables:
            self.add_table(table)

    @property
    def backend(self) -> StorageBackend:
        """The storage backend new tables are created in."""
        return self._backend

    # ---------------------------------------------------------------- tables
    def add_table(self, table: Any) -> Any:
        """Register an existing table; its name must be unused."""
        if table.name in self._tables:
            raise SchemaError(f"relation {table.name!r} already exists in the database")
        self._tables[table.name] = table
        return table

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        key: Sequence[str] | None = None,
    ) -> Any:
        """Create, register and return a new table in this database's backend."""
        schema = RelationSchema(name, attributes, key=key)
        if name in self._tables:
            raise SchemaError(f"relation {name!r} already exists in the database")
        return self.add_table(self._backend.create_table(schema, rows))

    def drop_table(self, name: str) -> None:
        """Remove a table; raises if it does not exist."""
        if name not in self._tables:
            raise UnknownRelationError(f"cannot drop unknown relation {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Any:
        """Return the table named ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __getitem__(self, name: str) -> Any:
        return self.table(name)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._tables.values())

    def relation_names(self) -> list[str]:
        """Names of all relations, in registration order."""
        return list(self._tables)

    # --------------------------------------------------------------- helpers
    def active_domain(self, relations: Iterable[str] | None = None) -> set[Any]:
        """Union of the active domains of the given relations (default: all)."""
        names = self.relation_names() if relations is None else list(relations)
        domain: set[Any] = set()
        for name in names:
            domain.update(self.table(name).active_domain())
        return domain

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self)

    def size_report(self) -> dict[str, int]:
        """Mapping ``relation name -> row count`` (the Fig. 1 inventory table)."""
        return {table.name: len(table) for table in self}

    def copy(self) -> "Database":
        """A copy with independently mutable tables, on a sibling backend."""
        return self.migrate(self._backend.spawn())

    def migrate(self, backend: Any) -> "Database":
        """Copy every table into a new database on ``backend``.

        Row (insertion) order is preserved table by table, so variable
        assignment downstream is unaffected by the move.
        """
        clone = Database(backend=backend)
        for table in self:
            clone.add_table(clone.backend.create_table(table.schema, table.rows()))
        return clone

    def close(self) -> None:
        """Release backend resources (a no-op for the memory backend)."""
        self._backend.close()

    def contains_row(self, relation: str, row: Sequence[Any]) -> bool:
        """True if ``row`` is present in ``relation``."""
        return tuple(row) in self.table(relation)

    def insert(self, relation: str, row: Sequence[Any]) -> bool:
        """Insert a row into an existing relation."""
        return self.table(relation).insert(row)

    def append_facts(self, facts: "dict[str, Iterable[Sequence[Any]]] | Any") -> int:
        """Batch-insert rows into existing relations; returns the new-row count.

        Each relation's rows go through the table's ``insert_many`` — one
        transaction per relation on the sqlite backend — which is what makes
        streaming fact ingest cheap on disk-backed instances.  Duplicate
        rows are skipped (set semantics), like :meth:`insert`.
        """
        added = 0
        for relation, rows in facts.items():
            added += self.table(relation).insert_many(rows)
        return added

    def rows(self, relation: str) -> list[Row]:
        """All rows of a relation."""
        return self.table(relation).rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{t.name}:{len(t)}" for t in self)
        return f"Database({parts})"


__all__ = ["Database", "Table"]
