"""Disk-backed storage: one SQLite file per database, WAL mode.

The ``sqlite`` backend stores every relation of a
:class:`~repro.db.database.Database` as a table in a single SQLite file.
It exists to break the toy-scale ceiling of the in-memory dict tables: a
million-tuple synthetic DBLP instance does not fit comfortably in Python
dicts, but is a small SQLite file.

Physical design:

* the connection runs in **WAL mode** with ``synchronous=NORMAL`` — readers
  never block the writer and commits need no fsync-per-transaction, the
  recipe for concurrent serving traffic over a live ingest stream;
* columns are declared **without type affinity**, so SQLite preserves the
  storage class of every value (ints stay ints, floats stay floats, text
  stays text) and round trips are exact;
* set semantics are enforced by a **unique index over all columns**
  (``INSERT OR IGNORE`` implements the reference backend's duplicate
  handling), and every relation gets a **covering index on its schema
  key** (key columns first, then the rest) so key lookups are pure index
  scans;
* additional per-position-set indexes are created **lazily on first
  lookup**, mirroring the memory backend's lazily-built hash indexes;
* ``rows()`` / ``__iter__`` order by ``rowid``, which is insertion order —
  the same stable order the memory backend guarantees, and the property
  that keeps tuple-variable assignment (and therefore OBDD variable
  orders and probabilities) bit-identical across backends.

Supported cell values are ``int``, ``float``, ``str``, ``bool`` and
``None``; anything else raises :class:`~repro.errors.SchemaError` rather
than being silently pickled.  (Note that ``True``/``False`` are stored as
integers — exactly how Python dict keys already collapse ``True`` and
``1``.)
"""

from __future__ import annotations

import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.db.schema import RelationSchema
from repro.db.table import Row
from repro.errors import SchemaError

#: Cell types a sqlite-backed relation accepts.
SUPPORTED_TYPES = (int, float, str, bool, type(None))

#: Rows fetched per lock acquisition while streaming a scan.
SCAN_BATCH = 4096


def _quote(identifier: str) -> str:
    """Quote an SQL identifier (relation names may be arbitrary strings)."""
    return '"' + identifier.replace('"', '""') + '"'


class SqliteBackend:
    """A storage backend keeping all relations in one SQLite file.

    Parameters
    ----------
    path:
        Database file.  When omitted, a temporary file is created and
        removed again by :meth:`close` (the backend is then purely a
        spill area, not a persistence mechanism).
    """

    name = "sqlite"

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            handle = tempfile.NamedTemporaryFile(
                prefix="repro-db-", suffix=".sqlite", delete=False
            )
            handle.close()
            self.path = Path(handle.name)
            self._ephemeral = True
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._ephemeral = False
        self._connection: sqlite3.Connection | None = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        #: One lock serializes all statements: the sqlite3 module's own
        #: serialized mode protects the connection object, but batched
        #: fetches and multi-statement transactions need exclusion too.
        self.lock = threading.RLock()
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute("PRAGMA temp_store=MEMORY")
        cursor.execute("PRAGMA cache_size=-65536")  # 64 MiB page cache

    # -------------------------------------------------------------- lifecycle
    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection; raises once the backend is closed."""
        if self._connection is None:
            raise SchemaError(f"sqlite backend at {self.path} is closed")
        return self._connection

    def spawn(self) -> "SqliteBackend":
        """A fresh sibling backend in its own (temporary) file."""
        return SqliteBackend()

    def close(self) -> None:
        """Close the connection; ephemeral files are deleted."""
        if self._connection is None:
            return
        with self.lock:
            self._connection.close()
            self._connection = None
        if self._ephemeral:
            for suffix in ("", "-wal", "-shm"):
                Path(str(self.path) + suffix).unlink(missing_ok=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ----------------------------------------------------------------- tables
    def create_table(
        self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()
    ) -> "SqliteTable":
        table = SqliteTable(schema, self)
        table.insert_many(rows)
        return table

    def journal_mode(self) -> str:
        """The journal mode actually in effect (``"wal"`` on disk files)."""
        with self.lock:
            return self.connection.execute("PRAGMA journal_mode").fetchone()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteBackend({str(self.path)!r})"


class SqliteTable:
    """One relation stored in a :class:`SqliteBackend` file.

    Implements the same relation protocol as the in-memory
    :class:`~repro.db.table.Table` (insert/delete/lookup/scan/rows/...),
    so the query evaluator and everything above it cannot tell the two
    apart — except by memory footprint.
    """

    def __init__(self, schema: RelationSchema, backend: SqliteBackend) -> None:
        self.schema = schema
        self.backend = backend
        self._sql_name = _quote(schema.name)
        self._columns = [f"c{i}" for i in range(schema.arity)]
        self._indexed: set[tuple[int, ...]] = set()
        self._count = 0
        column_list = ", ".join(self._columns)
        with backend.lock:
            cursor = backend.connection.cursor()
            cursor.execute(f"CREATE TABLE {self._sql_name} ({column_list})")
            # Set semantics: the unique index over all columns is what makes
            # INSERT OR IGNORE equivalent to the memory backend's dict-of-rows.
            cursor.execute(
                f"CREATE UNIQUE INDEX {_quote(schema.name + '!rows')} "
                f"ON {self._sql_name} ({column_list})"
            )
            key_positions = schema.key_positions()
            if key_positions != tuple(range(schema.arity)):
                # Covering index on the relation key: key columns first, then
                # every remaining column, so key lookups never touch the heap.
                rest = [i for i in range(schema.arity) if i not in key_positions]
                covering = ", ".join(f"c{i}" for i in (*key_positions, *rest))
                cursor.execute(
                    f"CREATE INDEX {_quote(schema.name + '!key')} "
                    f"ON {self._sql_name} ({covering})"
                )
                self._indexed.add(tuple(sorted(key_positions)))
        self._insert_sql = (
            f"INSERT OR IGNORE INTO {self._sql_name} ({column_list}) "
            f"VALUES ({', '.join('?' for __ in self._columns)})"
        )

    # ------------------------------------------------------------------- CRUD
    def _check_row(self, row: Sequence[Any]) -> Row:
        row_tuple = tuple(row)
        if len(row_tuple) != self.schema.arity:
            raise SchemaError(
                f"row {row_tuple!r} has arity {len(row_tuple)}, expected "
                f"{self.schema.arity} for {self.schema.name!r}"
            )
        for value in row_tuple:
            if not isinstance(value, SUPPORTED_TYPES):
                raise SchemaError(
                    f"value {value!r} of type {type(value).__name__} is not "
                    f"storable in the sqlite backend (use int/float/str)"
                )
        return row_tuple

    def insert(self, row: Sequence[Any]) -> bool:
        """Insert a row; return ``True`` if it was not already present."""
        row_tuple = self._check_row(row)
        with self.backend.lock:
            cursor = self.backend.connection.execute(self._insert_sql, row_tuple)
            inserted = cursor.rowcount > 0
        if inserted:
            self._count += 1
        return inserted

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert inside one transaction; return the number of new rows."""
        checked = [self._check_row(row) for row in rows]
        if not checked:
            return 0
        connection = self.backend.connection
        with self.backend.lock:
            before = connection.total_changes
            connection.execute("BEGIN")
            try:
                connection.executemany(self._insert_sql, checked)
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            added = connection.total_changes - before
        self._count += added
        return added

    def delete(self, row: Sequence[Any]) -> bool:
        """Delete a row; return ``True`` if it was present."""
        row_tuple = tuple(row)
        if len(row_tuple) != self.schema.arity:
            return False
        where = " AND ".join(f"{c} IS ?" for c in self._columns)
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"DELETE FROM {self._sql_name} WHERE {where}", row_tuple
            )
            deleted = cursor.rowcount > 0
        if deleted:
            self._count -= 1
        return deleted

    def __contains__(self, row: Sequence[Any]) -> bool:
        row_tuple = tuple(row)
        if len(row_tuple) != self.schema.arity:
            return False
        where = " AND ".join(f"{c} IS ?" for c in self._columns)
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"SELECT 1 FROM {self._sql_name} WHERE {where} LIMIT 1", row_tuple
            )
            return cursor.fetchone() is not None

    def __iter__(self) -> Iterator[Row]:
        return self.scan({})

    def __len__(self) -> int:
        return self._count

    @property
    def name(self) -> str:
        """Relation name (from the schema)."""
        return self.schema.name

    def rows(self) -> list[Row]:
        """All rows as a list, in insertion (rowid) order."""
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"SELECT * FROM {self._sql_name} ORDER BY rowid"
            )
            return cursor.fetchall()

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in one column (join-order statistics)."""
        # COUNT(DISTINCT c) skips NULLs; the subselect counts NULL as one
        # value, exactly like the memory backend's set-of-values count.
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"SELECT COUNT(*) FROM (SELECT DISTINCT c{position} FROM {self._sql_name})"
            )
            return cursor.fetchone()[0]

    # ---------------------------------------------------------------- lookups
    def _where(self, positions: Sequence[int]) -> str:
        return " AND ".join(f"c{p} = ?" for p in positions)

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Create an index over the given attribute positions if missing.

        Mirrors the memory backend's lazily-built hash indexes: the first
        lookup on a position set pays the build, later lookups are index
        scans.
        """
        positions = tuple(sorted(positions))
        if not positions or positions in self._indexed:
            return
        column_list = ", ".join(f"c{p}" for p in positions)
        suffix = "!" + "_".join(map(str, positions))
        with self.backend.lock:
            self.backend.connection.execute(
                f"CREATE INDEX IF NOT EXISTS {_quote(self.schema.name + suffix)} "
                f"ON {self._sql_name} ({column_list})"
            )
        self._indexed.add(positions)

    def lookup(self, bindings: dict[int, Any]) -> list[Row]:
        """Rows whose value at each bound position equals the bound value."""
        if not bindings:
            return self.rows()
        positions = tuple(sorted(bindings))
        self.ensure_index(positions)
        values = tuple(bindings[p] for p in positions)
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"SELECT * FROM {self._sql_name} WHERE {self._where(positions)} "
                "ORDER BY rowid",
                values,
            )
            return cursor.fetchall()

    def lookup_by_attributes(self, **bindings: Any) -> list[Row]:
        """Like :meth:`lookup` but keyed by attribute name."""
        positional = {self.schema.position_of(name): value for name, value in bindings.items()}
        return self.lookup(positional)

    def scan(self, bindings: dict[int, Any] | None = None) -> Iterator[Row]:
        """Stream rows matching ``bindings`` in batches (constant memory)."""
        bindings = bindings or {}
        positions = tuple(sorted(bindings))
        sql = f"SELECT * FROM {self._sql_name}"
        values: tuple[Any, ...] = ()
        if positions:
            self.ensure_index(positions)
            sql += f" WHERE {self._where(positions)}"
            values = tuple(bindings[p] for p in positions)
        sql += " ORDER BY rowid"
        with self.backend.lock:
            cursor = self.backend.connection.execute(sql, values)
            batch = cursor.fetchmany(SCAN_BATCH)
        while batch:
            yield from batch
            with self.backend.lock:
                batch = cursor.fetchmany(SCAN_BATCH)

    def project(self, attributes: Sequence[str]) -> list[Row]:
        """Distinct projection, in first-occurrence order (as in memory)."""
        positions = [self.schema.position_of(a) for a in attributes]
        column_list = ", ".join(f"c{p}" for p in positions)
        with self.backend.lock:
            cursor = self.backend.connection.execute(
                f"SELECT {column_list} FROM {self._sql_name} "
                f"GROUP BY {column_list} ORDER BY MIN(rowid)"
            )
            return cursor.fetchall()

    def active_domain(self) -> set[Any]:
        """All constants appearing anywhere in the table."""
        values: set[Any] = set()
        for row in self.scan({}):
            values.update(row)
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteTable({self.schema.name}, {len(self)} rows)"
