"""In-memory tables with hash indexes.

A :class:`Table` stores a *set* of rows (tuples of Python values) under a
:class:`~repro.db.schema.RelationSchema`.  Lookups by equality on any subset
of attributes are served by lazily-built hash indexes, which is what the
query evaluator uses to run the index-nested-loop joins behind conjunctive
queries and MarkoView materialisation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.db.schema import RelationSchema
from repro.errors import SchemaError

Row = tuple[Any, ...]


class Table:
    """A deterministic relation instance: a set of rows plus indexes.

    Parameters
    ----------
    schema:
        The relation schema.
    rows:
        Optional initial rows.
    validate:
        When true, every inserted row is type-checked against the schema.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        validate: bool = False,
    ) -> None:
        self.schema = schema
        self._validate = validate
        self._rows: dict[Row, None] = {}
        self._indexes: dict[tuple[int, ...], dict[tuple[Any, ...], list[Row]]] = {}
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ CRUD
    def insert(self, row: Sequence[Any]) -> bool:
        """Insert a row; return ``True`` if it was not already present."""
        if self._validate:
            row_tuple = self.schema.validate_row(row)
        else:
            row_tuple = tuple(row)
            if len(row_tuple) != self.schema.arity:
                raise SchemaError(
                    f"row {row_tuple!r} has arity {len(row_tuple)}, expected "
                    f"{self.schema.arity} for {self.schema.name!r}"
                )
        if row_tuple in self._rows:
            return False
        self._rows[row_tuple] = None
        for positions, index in self._indexes.items():
            key = tuple(row_tuple[p] for p in positions)
            index.setdefault(key, []).append(row_tuple)
        return True

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; return the number of new rows."""
        return sum(1 for row in rows if self.insert(row))

    def delete(self, row: Sequence[Any]) -> bool:
        """Delete a row; return ``True`` if it was present."""
        row_tuple = tuple(row)
        if row_tuple not in self._rows:
            return False
        del self._rows[row_tuple]
        for positions, index in self._indexes.items():
            key = tuple(row_tuple[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(row_tuple)
                if not bucket:
                    del index[key]
        return True

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def name(self) -> str:
        """Relation name (from the schema)."""
        return self.schema.name

    def rows(self) -> list[Row]:
        """All rows as a list (stable insertion order)."""
        return list(self._rows)

    # --------------------------------------------------------------- lookups
    def _index_for(self, positions: tuple[int, ...]) -> dict[tuple[Any, ...], list[Row]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self._indexes[positions] = index
        return index

    def lookup(self, bindings: dict[int, Any]) -> list[Row]:
        """Rows whose value at each position in ``bindings`` equals the bound value.

        An empty ``bindings`` dict returns all rows.  Positions are 0-based
        attribute positions; this is the primitive behind index-nested-loop
        joins in the query evaluator.
        """
        if not bindings:
            return self.rows()
        positions = tuple(sorted(bindings))
        index = self._index_for(positions)
        key = tuple(bindings[p] for p in positions)
        return list(index.get(key, ()))

    def lookup_by_attributes(self, **bindings: Any) -> list[Row]:
        """Like :meth:`lookup` but keyed by attribute name."""
        positional = {self.schema.position_of(name): value for name, value in bindings.items()}
        return self.lookup(positional)

    def scan(self, bindings: dict[int, Any] | None = None) -> Iterator[Row]:
        """Stream rows matching ``bindings`` (protocol twin of the sqlite scan)."""
        if not bindings:
            yield from self._rows
        else:
            yield from self.lookup(bindings)

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in one column (join-order statistics)."""
        index = self._indexes.get((position,))
        if index is not None:
            return len(index)
        return len({row[position] for row in self._rows})

    def project(self, attributes: Sequence[str]) -> list[Row]:
        """Distinct projection onto the given attributes (preserving order)."""
        positions = [self.schema.position_of(a) for a in attributes]
        seen: dict[Row, None] = {}
        for row in self._rows:
            seen[tuple(row[p] for p in positions)] = None
        return list(seen)

    def active_domain(self) -> set[Any]:
        """All constants appearing anywhere in the table."""
        values: set[Any] = set()
        for row in self._rows:
            values.update(row)
        return values

    def copy(self) -> "Table":
        """A shallow copy (rows shared by value; indexes rebuilt lazily)."""
        return Table(self.schema, self._rows, validate=self._validate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name}, {len(self)} rows)"
