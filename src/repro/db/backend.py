"""Pluggable storage backends for the relational substrate.

A :class:`StorageBackend` owns the physical representation of a
:class:`~repro.db.database.Database`'s tables.  Two implementations ship
with the library:

* ``memory`` — the reference backend: :class:`~repro.db.table.Table`
  objects holding Python dict/tuple rows with lazily-built hash indexes
  (fast for small instances, the semantics baseline for everything else);
* ``sqlite`` — a disk-backed backend (:mod:`repro.db.sqlite_backend`) that
  stores each relation in a SQLite file opened in WAL mode with
  ``synchronous=NORMAL``, which is what lets the DBLP generator and the
  query evaluator scale to million-tuple MVDBs without exhausting memory.

Backends are selected by *spec*: the strings ``"memory"`` and ``"sqlite"``,
``"sqlite:<path>"`` for a sqlite file at an explicit location, an existing
backend instance, or ``None`` for the default (memory).  Every component
that creates a :class:`~repro.db.database.Database` — ``repro.connect``,
the CLI, CSV ingest and the DBLP generator — accepts such a spec through
its ``backend=`` parameter.

Table objects returned by :meth:`StorageBackend.create_table` implement the
informal relation protocol of :class:`~repro.db.table.Table`: ``insert`` /
``insert_many`` / ``delete`` / ``__contains__`` / ``__iter__`` / ``__len__``
/ ``rows`` / ``scan`` / ``lookup`` / ``project`` / ``active_domain`` plus
the ``schema`` and ``name`` attributes.  The query evaluator and every
layer above it only ever speak this protocol, so backends are freely
interchangeable — the differential harness in ``tests/test_differential.py``
asserts bit-identical probabilities across them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.db.schema import RelationSchema
    from repro.db.table import Table

#: Specs accepted wherever a backend may be chosen.
BackendSpec = "str | StorageBackend | None"

#: Names of the built-in backends (the valid string specs, plus
#: ``"sqlite:<path>"`` for an explicitly-located sqlite file).
BACKEND_NAMES = ("memory", "sqlite")


@runtime_checkable
class StorageBackend(Protocol):
    """The storage layer behind a :class:`~repro.db.database.Database`.

    A backend is a factory for relation instances plus lifecycle hooks.
    It is *not* shared between databases: each database owns one backend
    instance (relation names are unique per backend).
    """

    #: Short backend name (``"memory"`` or ``"sqlite"``).
    name: str

    def create_table(
        self, schema: "RelationSchema", rows: Iterable[Sequence[Any]] = ()
    ) -> Any:
        """Create an empty relation for ``schema`` and bulk-load ``rows``."""
        ...  # pragma: no cover - protocol

    def spawn(self) -> "StorageBackend":
        """A fresh sibling backend of the same kind (for copies/migrations)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any resources (files, connections) held by the backend."""
        ...  # pragma: no cover - protocol


class MemoryBackend:
    """The reference backend: plain in-memory :class:`~repro.db.table.Table`."""

    name = "memory"

    def create_table(
        self, schema: "RelationSchema", rows: Iterable[Sequence[Any]] = ()
    ) -> "Table":
        from repro.db.table import Table

        return Table(schema, rows)

    def spawn(self) -> "MemoryBackend":
        return MemoryBackend()

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MemoryBackend()"


def resolve_backend(spec: Any = None) -> StorageBackend:
    """Turn a backend *spec* into a backend instance.

    ``None`` and ``"memory"`` yield a fresh :class:`MemoryBackend`;
    ``"sqlite"`` a temp-file-backed :class:`~repro.db.sqlite_backend.SqliteBackend`;
    ``"sqlite:<path>"`` a sqlite backend at an explicit path.  An existing
    backend instance passes through unchanged.

    Raises
    ------
    SchemaError
        If the spec names no known backend.
    """
    if spec is None or spec == "memory":
        return MemoryBackend()
    if isinstance(spec, str):
        if spec == "sqlite":
            from repro.db.sqlite_backend import SqliteBackend

            return SqliteBackend()
        if spec.startswith("sqlite:"):
            from repro.db.sqlite_backend import SqliteBackend

            path = spec[len("sqlite:") :]
            if not path:
                raise SchemaError("empty path in sqlite backend spec 'sqlite:'")
            return SqliteBackend(path)
        raise SchemaError(
            f"unknown storage backend {spec!r}; choose from {', '.join(BACKEND_NAMES)} "
            "or 'sqlite:<path>'"
        )
    if isinstance(spec, StorageBackend):
        return spec
    raise SchemaError(f"not a storage backend spec: {spec!r}")
