"""Relation schemas for the in-memory relational substrate.

The paper's MVDBs are defined over an ordinary relational schema
(Sect. 2): every relation has a name, a list of attributes and a key
(defaulting to the full attribute list).  This module provides a light,
explicit schema representation used by :class:`repro.db.table.Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError

#: Attribute types accepted by :class:`Attribute`.  ``object`` means "any
#: hashable Python value" and is the default.
ATTRIBUTE_TYPES = (int, float, str, bool, object)


@dataclass(frozen=True)
class Attribute:
    """A single named attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    type:
        Expected Python type of values.  Only used for validation when a
        table is created with ``validate=True``.
    """

    name: str
    type: type = object

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.type not in ATTRIBUTE_TYPES:
            raise SchemaError(f"unsupported attribute type {self.type!r} for {self.name!r}")

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` does not match the type."""
        if self.type is object:
            return
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            return
        if not isinstance(value, self.type) or isinstance(value, bool) and self.type is not bool:
            raise SchemaError(
                f"value {value!r} is not of type {self.type.__name__} for attribute {self.name!r}"
            )


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: name, attributes, and key.

    Examples
    --------
    >>> RelationSchema("Author", ["aid", "name"]).arity
    2
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...] = field(default=())

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute | str],
        key: Sequence[str] | None = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(a if isinstance(a, Attribute) else Attribute(a) for a in attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {names}")
        if key is None:
            key_tuple = tuple(names)
        else:
            key_tuple = tuple(key)
            unknown = set(key_tuple) - set(names)
            if unknown:
                raise SchemaError(f"key attributes {sorted(unknown)} not in relation {name!r}")
            if not key_tuple:
                raise SchemaError(f"key of relation {name!r} must not be empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "key", key_tuple)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the attributes, in order."""
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute: str) -> int:
        """Return the 0-based position of ``attribute``.

        Raises
        ------
        SchemaError
            If the attribute does not exist.
        """
        try:
            return self.attribute_names.index(attribute)
        except ValueError as exc:
            raise SchemaError(f"relation {self.name!r} has no attribute {attribute!r}") from exc

    def key_positions(self) -> tuple[int, ...]:
        """Positions of the key attributes."""
        return tuple(self.position_of(a) for a in self.key)

    def validate_row(self, row: Iterable[Any]) -> tuple[Any, ...]:
        """Validate a row against this schema and return it as a tuple."""
        row_tuple = tuple(row)
        if len(row_tuple) != self.arity:
            raise SchemaError(
                f"row {row_tuple!r} has arity {len(row_tuple)}, "
                f"expected {self.arity} for relation {self.name!r}"
            )
        for attribute, value in zip(self.attributes, row_tuple):
            attribute.validate(value)
        return row_tuple

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(a.name for a in self.attributes)
        return f"RelationSchema({self.name}({attrs}), key={list(self.key)})"
