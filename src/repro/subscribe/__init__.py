"""Standing-query subscriptions: registry, incremental evaluator, sinks.

The subsystem closes the ROADMAP's "millions of users" loop: clients
register standing probabilistic queries with a firing predicate, the
:class:`~repro.subscribe.evaluator.SubscriptionService` re-evaluates only
the subscriptions each published delta can possibly affect (lineage /
component-signature overlap — everything else is provably unchanged and
skipped), and notifications flow out through an exactly-once long-poll
stream plus best-effort webhooks.
"""

from repro.subscribe.evaluator import SubscriptionService
from repro.subscribe.registry import (
    Subscription,
    SubscriptionRegistry,
    canonical_predicate,
    canonical_sink,
)
from repro.subscribe.sinks import NotificationLog, WebhookSink

__all__ = [
    "SubscriptionService",
    "Subscription",
    "SubscriptionRegistry",
    "NotificationLog",
    "WebhookSink",
    "canonical_predicate",
    "canonical_sink",
]
