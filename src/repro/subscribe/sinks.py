"""Notification sinks: the in-process log (long-poll source) and webhooks.

The :class:`NotificationLog` is the canonical sink every notification goes
through: a bounded ring buffer of notification documents with globally
monotonic sequence numbers.  ``/v1/notifications`` long-polls read from it
with a client-held cursor — which is what makes delivery *exactly-once
cluster-wide*: replicas regenerate byte-identical streams (same seq, same
payload) from the replicated op log, so a client that resumes its cursor
against any replica sees every notification exactly once, even across a
follower SIGKILL + restart.

The :class:`WebhookSink` is push-side best-effort: a background worker
POSTs each notification to the subscription's URL with bounded
retry/backoff; deliveries that exhaust the budget are counted as dead
letters (exposed in ``/metrics``).  Webhooks are a single-process
convenience — in a fleet every replica would POST its own copy, so the
router only advertises the long-poll surface.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable

#: Default ring-buffer capacity of the notification log.
DEFAULT_LOG_CAPACITY = 65536
#: Upper bound on a single long-poll wait, seconds.
MAX_WAIT_S = 30.0


class NotificationLog:
    """Bounded, seq-numbered notification stream with long-poll reads."""

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY) -> None:
        self.capacity = capacity
        self._condition = threading.Condition()
        self._entries: list[dict[str, Any]] = []
        self._head = 0  # seq of the last appended entry (0 = none yet)
        self._dropped = 0

    # -------------------------------------------------------------- appending
    def next_seq(self) -> int:
        """The seq the next appended notification will get."""
        with self._condition:
            return self._head + 1

    def append(self, notification: dict[str, Any]) -> int:
        """Assign the next seq, retain the entry, wake long-pollers."""
        with self._condition:
            self._head += 1
            notification["seq"] = self._head
            self._entries.append(notification)
            if len(self._entries) > self.capacity:
                overflow = len(self._entries) - self.capacity
                del self._entries[:overflow]
                self._dropped += overflow
            self._condition.notify_all()
            return self._head

    # ---------------------------------------------------------------- reading
    def read(
        self, since: int = 0, wait_s: float = 0.0, limit: int = 1000
    ) -> dict[str, Any]:
        """Entries with ``seq > since``, blocking up to ``wait_s`` for news.

        Returns ``{"notifications", "next", "head", "oldest"}`` where
        ``next`` is the cursor to pass on the next call and ``oldest`` is
        the lowest seq still retained (a cursor behind ``oldest - 1`` has
        missed ring-buffer-evicted entries — the smoke test asserts that
        never happens at its scale).
        """
        wait_s = max(0.0, min(float(wait_s), MAX_WAIT_S))
        deadline = time.monotonic() + wait_s
        with self._condition:
            while self._head <= since:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            oldest = self._head - len(self._entries) + 1 if self._entries else self._head + 1
            start = max(since + 1, oldest)
            offset = start - oldest
            batch = self._entries[offset : offset + max(1, int(limit))]
            next_cursor = batch[-1]["seq"] if batch else max(since, self._head)
            return {
                "notifications": [dict(entry) for entry in batch],
                "next": next_cursor,
                "head": self._head,
                "oldest": oldest,
                "dropped": self._dropped,
            }

    def stats(self) -> dict[str, int]:
        with self._condition:
            return {"head": self._head, "retained": len(self._entries), "dropped": self._dropped}


class WebhookSink:
    """Background webhook delivery with bounded retry/backoff.

    ``on_outcome(delivered, attempts_failed, dead)`` reports counter
    increments back to the service after each delivery finishes.
    """

    def __init__(
        self,
        on_outcome: Callable[[int, int, int], None],
        timeout_s: float = 5.0,
    ) -> None:
        self._queue: "queue.SimpleQueue[tuple[str, dict, int, float] | None]" = (
            queue.SimpleQueue()
        )
        self._on_outcome = on_outcome
        self._timeout_s = timeout_s
        self._thread = threading.Thread(target=self._worker, daemon=True)
        self._thread.start()

    def submit(self, url: str, notification: dict[str, Any], retries: int, backoff_s: float) -> None:
        self._queue.put((url, notification, retries, backoff_s))

    def close(self) -> None:
        self._queue.put(None)
        self._thread.join(timeout=5.0)

    def _post(self, url: str, payload: bytes) -> None:
        request = urllib.request.Request(
            url, data=payload, headers={"Content-Type": "application/json"}, method="POST"
        )
        with urllib.request.urlopen(request, timeout=self._timeout_s) as response:
            status = response.status
        if status >= 400:  # pragma: no cover - urlopen raises on 4xx/5xx
            raise urllib.error.HTTPError(url, status, "webhook refused", None, None)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            url, notification, retries, backoff_s = item
            payload = json.dumps(notification, sort_keys=True).encode("utf-8")
            failed_attempts = 0
            for attempt in range(retries + 1):
                try:
                    self._post(url, payload)
                    self._on_outcome(1, failed_attempts, 0)
                    break
                except Exception:
                    failed_attempts += 1
                    if attempt < retries:
                        time.sleep(backoff_s * (2**attempt))
            else:
                self._on_outcome(0, failed_attempts, 1)


__all__ = ["NotificationLog", "WebhookSink", "DEFAULT_LOG_CAPACITY", "MAX_WAIT_S"]
