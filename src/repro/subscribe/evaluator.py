"""Delta-triggered incremental re-evaluation of standing queries.

The :class:`SubscriptionService` hooks the dispatcher's epoch-swap
publication point: every published mutation emits a delta descriptor
(:meth:`repro.core.pending.PendingExtend.delta_descriptor`), and the
service runs one **tick** per delta, re-evaluating *only* the
subscriptions the delta can possibly affect.

The skip rule is sound, not heuristic.  A subscription is re-evaluated iff

* the delta added rows to a relation its query mentions — appends are
  monotone, so a query over disjoint relations keeps its relational
  lineage bit-identical; or
* the delta's recompiled/new MV-index components mention a variable of the
  subscription's answer lineages — the online probability is the
  conditional ratio ``P0(Q ∧ ¬W) / P0(¬W)`` over the components the
  lineage touches, and components it does not touch cancel, so a delta
  that recompiles only disjoint components cannot move the answer.

Everything else is *provably unchanged and skipped* (the CI smoke asserts
skipped answers stay bit-identical to fresh queries).

Determinism is the cluster story: ticks run inside the single-writer
mutex, immediately after publication, against a read-lock-pinned
generation; subscriptions are evaluated in registration order; the
notification payload contains no wall-clock.  Replicas that replay the
same op log (mutations interleaved with subscribe/unsubscribe, as the
router records them) therefore regenerate byte-identical notification
streams with the same sequence numbers — a client cursor resumed against
any replica sees every notification exactly once.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ServingError
from repro.mvindex.summaries import bitmap_from_hex, variables_bitmap
from repro.serving.session import QuerySession
from repro.subscribe.registry import (
    THRESHOLD_OPS,
    Subscription,
    SubscriptionRegistry,
)
from repro.subscribe.sinks import DEFAULT_LOG_CAPACITY, NotificationLog, WebhookSink

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.dispatch import Dispatcher

#: Capacity of the evaluator's dedicated session caches.  Sized well above
#: the expected standing-query count so a tick's shared batch pass leaves
#: every lineage cached for the per-subscription variable extraction.
EVALUATOR_CACHE_SIZE = 8192


class SubscriptionService:
    """Registry + evaluator + notification log behind one dispatcher.

    Parameters
    ----------
    dispatcher:
        The serving dispatcher to hook.  The service registers itself as
        ``dispatcher.subscription_service`` and as a delta listener.
    path:
        Optional JSON sidecar (conventionally ``<artifact>.subs.json``)
        holding the durable registrations; when the file exists its
        subscriptions are re-armed immediately (baselines re-evaluated
        against the engine's current state).
    log_capacity:
        Ring-buffer capacity of the notification log.
    """

    def __init__(
        self,
        dispatcher: "Dispatcher",
        path: str | None = None,
        log_capacity: int = DEFAULT_LOG_CAPACITY,
    ) -> None:
        self.dispatcher = dispatcher
        self.registry = SubscriptionRegistry(path)
        self.log = NotificationLog(log_capacity)
        self._session = QuerySession(dispatcher.engine, cache_size=EVALUATOR_CACHE_SIZE)
        self._evaluated_generation = -1
        self._lock = threading.Lock()
        self._webhook: WebhookSink | None = None
        self._ticks = 0
        self._evaluations = 0
        self._skips = 0
        self._skips_signature = 0
        self._skips_bitmap = 0
        self._notifications = 0
        self._delivered = 0
        self._delivery_failures = 0
        self._dead_letter = 0
        self._last_tick_ms = 0.0
        dispatcher.subscription_service = self
        dispatcher.add_delta_listener(self._on_delta)
        for spec in self.registry.load_specs():
            self.subscribe(spec, persist=False)

    # ------------------------------------------------------------ registration
    def subscribe(self, spec: Mapping[str, Any], persist: bool = True) -> dict[str, Any]:
        """Register a standing query and evaluate its baseline.

        Runs under the dispatcher's single-writer mutex so the baseline is
        computed at a well-defined generation — never halfway through a
        publish — and so fleet replicas that replay the same op order
        compute identical baselines.  Returns the subscription document.
        """
        with self.dispatcher.mutation_locked():
            with self.dispatcher.read_pinned() as generation:
                with self._lock:
                    subscription = self.registry.register(spec)
                try:
                    self._evaluate([subscription], generation, baseline=True)
                except Exception:
                    with self._lock:
                        self.registry.remove(subscription.sub_id)
                    raise
                if persist:
                    self.registry.save()
        return subscription.describe()

    def unsubscribe(self, sub_id: str, persist: bool = True) -> dict[str, Any]:
        """Remove a subscription (raises for unknown ids)."""
        with self.dispatcher.mutation_locked():
            with self._lock:
                subscription = self.registry.remove(sub_id)
            if persist:
                self.registry.save()
        return {"id": subscription.sub_id, "removed": True}

    def apply_log_entry(self, entry: Mapping[str, Any]) -> None:
        """Replay one fleet-log subscription entry (follower restart path)."""
        kind = entry.get("kind")
        if kind == "subscribe":
            self.subscribe(entry["subscription"], persist=False)
        elif kind == "unsubscribe":
            self.unsubscribe(str(entry["id"]), persist=False)
        else:
            raise ServingError(f"unknown subscription log entry kind {kind!r}")

    # -------------------------------------------------------------- the tick
    def _on_delta(self, descriptor: dict[str, Any]) -> None:
        """One tick: re-evaluate the overlapping subset, skip the rest.

        Called by the dispatcher after every published mutation, inside the
        single-writer mutex.  The read lock pins the generation for the
        whole tick, so every fired (and skipped) answer is exactly what a
        fresh query at that generation returns.
        """
        start = time.perf_counter()
        delta_relations = set(descriptor.get("relations", ()))
        # The delta's recompiled-component variables as a summary-layer
        # bitmap: published descriptors carry it pre-encoded; older ones
        # (replayed logs) fall back to encoding the variable list here.
        bitmap_hex = descriptor.get("component_bitmap")
        if bitmap_hex is not None:
            delta_bitmap = bitmap_from_hex(bitmap_hex)
        else:
            delta_bitmap = variables_bitmap(descriptor.get("component_variables", ()))
        with self.dispatcher.read_pinned() as generation:
            with self._lock:
                ordered = self.registry.ordered()
            overlapping = [
                subscription
                for subscription in ordered
                if (subscription.relations & delta_relations)
                or (subscription.variables_bitmap & delta_bitmap)
            ]
            fired = (
                self._evaluate(overlapping, generation, baseline=False)
                if overlapping
                else []
            )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        evaluated_ids = {subscription.sub_id for subscription in overlapping}
        with self._lock:
            self._ticks += 1
            tick = self._ticks
            self._evaluations += len(overlapping)
            self._skips += len(ordered) - len(overlapping)
            self._last_tick_ms = elapsed_ms
            for subscription in ordered:
                if subscription.sub_id not in evaluated_ids:
                    subscription.skips += 1
                    # Attribute the skip to the summary that was decisive:
                    # a delta with no recompiled components is cleared by
                    # the relation signature alone; otherwise the variable
                    # bitmap had to prove the lineage disjoint.
                    if delta_bitmap == 0:
                        subscription.skips_signature += 1
                        self._skips_signature += 1
                    else:
                        subscription.skips_bitmap += 1
                        self._skips_bitmap += 1
        for subscription, payload in fired:
            payload["generation"] = generation
            payload["tick"] = tick
            self.log.append(payload)
            with self._lock:
                subscription.notifications += 1
                self._notifications += 1
            if subscription.sink.get("kind") == "webhook":
                self._submit_webhook(subscription, payload)

    def _evaluate(
        self, subscriptions: list[Subscription], generation: int, baseline: bool
    ) -> list[tuple[Subscription, dict[str, Any]]]:
        """Batch re-evaluation at a pinned generation; returns fire decisions.

        Caller holds the dispatcher read lock.  One shared relational pass
        per method group (the existing :meth:`QuerySession.execute_batch`
        path), then per-subscription predicate checks against the previous
        state.
        """
        if generation != self._evaluated_generation:
            self._session.invalidate()
            self._evaluated_generation = generation
        by_method: dict[str, list[Subscription]] = {}
        for subscription in subscriptions:
            by_method.setdefault(subscription.method, []).append(subscription)
        results: dict[str, Any] = {}
        for method, group in by_method.items():
            batch = self._session.execute_batch(
                [subscription.ucq for subscription in group], method=method
            )
            for subscription, result in zip(group, batch):
                results[subscription.sub_id] = result
        fired: list[tuple[Subscription, dict[str, Any]]] = []
        for subscription in subscriptions:
            result = results[subscription.sub_id]
            lineages = self._session.answer_lineages(subscription.ucq)
            variables = frozenset().union(
                *(lineage.variables() for lineage in lineages.values())
            ) if lineages else frozenset()
            answers = {answer.values: answer.probability for answer in result.answers}
            payload = None if baseline else self._fire_decision(subscription, answers)
            matching = self._matching(subscription, answers)
            with self._lock:
                subscription.variables = variables
                subscription.variables_bitmap = variables_bitmap(variables)
                subscription.answers = answers
                subscription.matching = matching
                subscription.last_generation = generation
                subscription.evaluations += 1
            if payload is not None:
                fired.append((subscription, payload))
        return fired

    @staticmethod
    def _matching(subscription: Subscription, answers: dict[tuple, float]) -> frozenset:
        predicate = subscription.predicate
        if predicate["kind"] != "threshold":
            return frozenset()
        op = THRESHOLD_OPS[predicate["op"]]
        value = predicate["value"]
        return frozenset(
            values for values, probability in answers.items() if op(probability, value)
        )

    def _fire_decision(
        self, subscription: Subscription, answers: dict[tuple, float]
    ) -> dict[str, Any] | None:
        """The predicate check: a notification payload, or None to not fire.

        The payload deliberately contains no wall-clock time — it must be
        byte-identical on every replica that replays the same op log.
        """

        def rows(values_iterable: Any) -> list[list[Any]]:
            return [
                [list(values), answers[values]] if values in answers else [list(values)]
                for values in sorted(values_iterable, key=str)
            ]

        predicate = subscription.predicate
        if predicate["kind"] == "threshold":
            matching = self._matching(subscription, answers)
            if matching == subscription.matching:
                return None
            return {
                "subscription": subscription.sub_id,
                "kind": "threshold",
                "predicate": dict(predicate),
                "query": subscription.query,
                "entered": rows(matching - subscription.matching),
                "left": [
                    [list(values)] for values in sorted(
                        subscription.matching - matching, key=str
                    )
                ],
                "answers": rows(answers),
            }
        if answers == subscription.answers:
            return None
        return {
            "subscription": subscription.sub_id,
            "kind": "change",
            "predicate": dict(predicate),
            "query": subscription.query,
            "answers": rows(answers),
            "previous": [
                [list(values), probability]
                for values, probability in sorted(
                    subscription.answers.items(), key=lambda item: str(item[0])
                )
            ],
        }

    # -------------------------------------------------------------- delivery
    def _submit_webhook(self, subscription: Subscription, payload: dict[str, Any]) -> None:
        if self._webhook is None:
            self._webhook = WebhookSink(self._webhook_outcome)
        sink = subscription.sink
        self._webhook.submit(
            sink["url"], dict(payload), sink.get("retries", 3), sink.get("backoff_s", 0.05)
        )

    def _webhook_outcome(self, delivered: int, failures: int, dead: int) -> None:
        with self._lock:
            self._delivered += delivered
            self._delivery_failures += failures
            self._dead_letter += dead

    # ------------------------------------------------------------- inspection
    def notifications(
        self, since: int = 0, wait_s: float = 0.0, limit: int = 1000
    ) -> dict[str, Any]:
        """Long-poll read of the notification stream (cursor-based)."""
        return self.log.read(since=since, wait_s=wait_s, limit=limit)

    def list(self) -> dict[str, Any]:
        """The ``/v1/subscriptions`` document."""
        with self._lock:
            documents = [subscription.describe() for subscription in self.registry.ordered()]
        return {"subscriptions": documents, "active": len(documents)}

    def stats(self) -> dict[str, Any]:
        """The ``subscriptions`` section of ``/v1/stats``."""
        log = self.log.stats()
        with self._lock:
            return {
                "active": len(self.registry),
                "ticks_total": self._ticks,
                "evaluations_total": self._evaluations,
                "skips_total": self._skips,
                "skips_signature_total": self._skips_signature,
                "skips_bitmap_total": self._skips_bitmap,
                "notifications_total": self._notifications,
                "delivered_total": self._delivered,
                "delivery_failures_total": self._delivery_failures,
                "dead_letter_total": self._dead_letter,
                "seq_head": log["head"],
                "last_tick_ms": self._last_tick_ms,
            }

    def close(self) -> None:
        """Stop the webhook delivery worker (idempotent)."""
        if self._webhook is not None:
            self._webhook.close()
            self._webhook = None


__all__ = ["SubscriptionService", "EVALUATOR_CACHE_SIZE"]
