"""Durable registration of standing probabilistic queries.

A :class:`Subscription` is a canonical-UCQ standing query plus a firing
predicate (``change`` or ``threshold``) and a notification sink spec.  The
:class:`SubscriptionRegistry` owns the id namespace and, when given a path,
persists every registration as JSON next to the serving artifact so a
``repro serve`` restart re-arms the same subscriptions (baselines are then
re-evaluated against the restarted engine's current state).

Ids are deterministic (``sub-0``, ``sub-1``, ...): in a replica fleet the
leader assigns the id and the router broadcasts the *assigned* spec, so
every replica registers the same subscription under the same name — the
precondition for byte-identical notification streams.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ServingError
from repro.query.parser import parse_query
from repro.query.ucq import UCQ, as_ucq

#: Comparison operators a threshold predicate may use.
THRESHOLD_OPS = {
    ">": lambda p, v: p > v,
    ">=": lambda p, v: p >= v,
    "<": lambda p, v: p < v,
    "<=": lambda p, v: p <= v,
}

#: Sink kinds the service knows how to deliver to.
SINK_KINDS = ("memory", "webhook")


def canonical_predicate(predicate: Any) -> dict[str, Any]:
    """Validate and normalize a firing predicate.

    ``{"kind": "change"}`` fires whenever the answer set changes at all;
    ``{"kind": "threshold", "op": ">", "value": 0.8}`` fires whenever the
    set of answers satisfying ``P op value`` changes (an answer entering or
    leaving the threshold region).
    """
    if predicate is None:
        return {"kind": "change"}
    if not isinstance(predicate, Mapping):
        raise ServingError("'predicate' must be a mapping")
    kind = predicate.get("kind", "change")
    if kind == "change":
        return {"kind": "change"}
    if kind == "threshold":
        op = predicate.get("op", ">")
        if op not in THRESHOLD_OPS:
            raise ServingError(
                f"threshold op must be one of {sorted(THRESHOLD_OPS)}, got {op!r}"
            )
        try:
            value = float(predicate["value"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServingError("threshold predicate needs a numeric 'value'") from exc
        return {"kind": "threshold", "op": op, "value": value}
    raise ServingError(f"unknown predicate kind {kind!r}; choose 'change' or 'threshold'")


def canonical_sink(sink: Any) -> dict[str, Any]:
    """Validate and normalize a notification sink spec.

    ``memory`` (the default) delivers into the server's in-process
    notification log, read back via ``/v1/notifications`` long-polls;
    ``webhook`` additionally POSTs each notification to a URL with bounded
    retry/backoff (failures past the retry budget count as dead letters).
    """
    if sink is None:
        return {"kind": "memory"}
    if not isinstance(sink, Mapping):
        raise ServingError("'sink' must be a mapping")
    kind = sink.get("kind", "memory")
    if kind == "memory":
        return {"kind": "memory"}
    if kind == "webhook":
        url = sink.get("url")
        if not isinstance(url, str) or not url:
            raise ServingError("webhook sink needs a non-empty 'url'")
        retries = int(sink.get("retries", 3))
        backoff_s = float(sink.get("backoff_s", 0.05))
        if retries < 0 or backoff_s < 0:
            raise ServingError("webhook 'retries' and 'backoff_s' must be non-negative")
        return {"kind": "webhook", "url": url, "retries": retries, "backoff_s": backoff_s}
    raise ServingError(f"unknown sink kind {kind!r}; choose from {SINK_KINDS}")


@dataclass
class Subscription:
    """One standing query: spec (durable) plus evaluation state (runtime).

    The runtime state — last answers, last lineage variables, counters — is
    *not* persisted: after a restart the baseline is re-evaluated against
    the current engine state, which is exactly the semantics a re-armed
    subscription should have (no firing for changes that happened while the
    server was down).
    """

    sub_id: str
    query: str
    method: str = "mvindex"
    predicate: dict[str, Any] = field(default_factory=lambda: {"kind": "change"})
    sink: dict[str, Any] = field(default_factory=lambda: {"kind": "memory"})
    ucq: UCQ | None = field(default=None, repr=False)

    # Runtime evaluation state, owned by the evaluator.
    relations: frozenset[str] = frozenset()
    variables: frozenset[int] = frozenset()
    #: The same lineage variables as a summary-layer bitmap, so each tick's
    #: disjointness test is one integer AND against the delta's bitmap.
    variables_bitmap: int = 0
    answers: dict[tuple, float] = field(default_factory=dict, repr=False)
    matching: frozenset[tuple] = frozenset()
    last_generation: int = -1
    evaluations: int = 0
    skips: int = 0
    #: Skips attributed to the relation signature alone (the delta carried
    #: no recompiled component variables, e.g. a deterministic append).
    skips_signature: int = 0
    #: Skips where the variable-bitmap disjointness test was decisive.
    skips_bitmap: int = 0
    notifications: int = 0

    def spec(self) -> dict[str, Any]:
        """The durable JSON form (what the registry persists and replays)."""
        return {
            "id": self.sub_id,
            "query": self.query,
            "method": self.method,
            "predicate": dict(self.predicate),
            "sink": dict(self.sink),
        }

    def describe(self) -> dict[str, Any]:
        """The ``/v1/subscriptions`` document: spec plus evaluation state."""
        document = self.spec()
        document.update(
            {
                "relations": sorted(self.relations),
                "last_generation": self.last_generation,
                "evaluations": self.evaluations,
                "skips": self.skips,
                "skips_signature": self.skips_signature,
                "skips_bitmap": self.skips_bitmap,
                "notifications": self.notifications,
                "answers": [
                    [list(values), probability]
                    for values, probability in sorted(
                        self.answers.items(), key=lambda item: str(item[0])
                    )
                ],
            }
        )
        return document


class SubscriptionRegistry:
    """Id assignment plus (optional) durable storage of subscription specs.

    Not thread-safe on its own — the owning
    :class:`~repro.subscribe.evaluator.SubscriptionService` serializes all
    mutations behind the dispatcher's single-writer mutex.
    """

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._subscriptions: dict[str, Subscription] = {}
        self._next_id = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._subscriptions)

    def get(self, sub_id: str) -> Subscription | None:
        return self._subscriptions.get(sub_id)

    def ordered(self) -> list[Subscription]:
        """All subscriptions in deterministic (registration) id order."""
        return [
            self._subscriptions[sub_id]
            for sub_id in sorted(
                self._subscriptions, key=lambda sid: (len(sid), sid)
            )
        ]

    # -------------------------------------------------------------- mutation
    def register(self, spec: Mapping[str, Any]) -> Subscription:
        """Validate a subscription spec and add it to the registry.

        ``spec["id"]`` is honored when present (the follower half of a
        fleet broadcast and registry reload both replay leader-assigned
        ids); otherwise the next deterministic id is assigned.
        """
        if not isinstance(spec, Mapping):
            raise ServingError("subscription spec must be a mapping")
        query = spec.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ServingError("subscription needs a non-empty 'query' string")
        ucq = as_ucq(parse_query(query))
        method = spec.get("method", "mvindex")
        if not isinstance(method, str):
            raise ServingError("'method' must be a string")
        predicate = canonical_predicate(spec.get("predicate"))
        sink = canonical_sink(spec.get("sink"))
        sub_id = spec.get("id")
        if sub_id is None:
            sub_id = f"sub-{self._next_id}"
            self._next_id += 1
        else:
            if not isinstance(sub_id, str) or not sub_id:
                raise ServingError("subscription 'id' must be a non-empty string")
            if sub_id in self._subscriptions:
                raise ServingError(f"subscription {sub_id!r} is already registered")
            prefix, _, suffix = sub_id.partition("-")
            if prefix == "sub" and suffix.isdigit():
                self._next_id = max(self._next_id, int(suffix) + 1)
        subscription = Subscription(
            sub_id=sub_id,
            query=query.strip(),
            method=method,
            predicate=predicate,
            sink=sink,
            ucq=ucq,
            relations=frozenset(ucq.relations()),
        )
        self._subscriptions[sub_id] = subscription
        return subscription

    def remove(self, sub_id: str) -> Subscription:
        """Drop a subscription; raises :class:`ServingError` if unknown."""
        subscription = self._subscriptions.pop(sub_id, None)
        if subscription is None:
            raise ServingError(f"unknown subscription {sub_id!r}")
        return subscription

    # ------------------------------------------------------------ durability
    def save(self) -> None:
        """Persist every spec as JSON (atomic rename); no-op without a path."""
        if self.path is None:
            return
        document = {
            "version": 1,
            "next_id": self._next_id,
            "subscriptions": [sub.spec() for sub in self.ordered()],
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, staging = tempfile.mkstemp(dir=directory, suffix=".subs.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
            os.replace(staging, self.path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise

    def load_specs(self) -> list[dict[str, Any]]:
        """Read persisted specs back (empty when no path / no file yet)."""
        if self.path is None or not os.path.exists(self.path):
            return []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            specs = document["subscriptions"]
            if not isinstance(specs, list):
                raise TypeError("'subscriptions' must be a list")
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ServingError(
                f"corrupt subscription registry at {self.path!r}: {exc}"
            ) from exc
        return [dict(spec) for spec in specs]


__all__ = [
    "Subscription",
    "SubscriptionRegistry",
    "canonical_predicate",
    "canonical_sink",
    "THRESHOLD_OPS",
    "SINK_KINDS",
]
