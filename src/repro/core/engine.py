"""End-to-end query evaluation on MVDBs (Theorem 1 + MV-index).

The :class:`MVQueryEngine` wires together the whole pipeline of the paper:

1. translate the MVDB into a tuple-independent database and the view query
   ``W`` (offline, :mod:`repro.core.translate`);
2. compute the lineage of ``W`` and compile it into an MV-index (offline,
   :mod:`repro.mvindex`);
3. for a user query ``Q``, compute the lineage of every answer (a round trip
   to the relational engine) and evaluate
   ``P(Q) = P0(Q ∧ ¬W) / P0(¬W)`` online via MV-index intersection.

Evaluation strategies are resolved through the inference-method registry
(:mod:`repro.methods`): ``mvindex`` (CC-MVIntersect), ``mvindex-mv``
(pointer-based MVIntersect), ``obdd`` (construct the OBDD of ``Q ∨ W`` from
scratch for every query — the "augmented OBDD" line of Figs. 5/6),
``shannon`` (exact DPLL-style computation on the lineage), ``enumeration``
(brute force, tiny inputs only), ``sampling`` (Monte-Carlo, approximate),
plus anything registered by third parties via
:func:`repro.methods.register`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.mvdb import MVDB
from repro.core.pending import PendingExtend, canonical_facts
from repro.core.translate import Translation, _w_disjuncts_for_view, translate
from repro.errors import InferenceError, SchemaError, ServingError, WeightError
from repro.indb.database import TupleIndependentDatabase
from repro.indb.weights import (
    CERTAIN_WEIGHT,
    markoview_weight_to_indb_weight,
    weight_to_probability,
)
from repro.lineage.dnf import DNF
from repro.lineage.shannon import shannon_probability
from repro.mvindex.index import MVIndex
from repro.mvindex.summaries import SkipAnalysis, SummaryStore, summarize_component
from repro.obdd.order import VariableOrder, order_from_permutations
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import evaluate_ucq
from repro.query.ucq import UCQ, as_ucq

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.markoview import MarkoView
    from repro.methods import InferenceMethod
    from repro.mvindex.intersect import IntersectStatistics

#: The paper's five evaluation methods.  Deprecated: the authoritative list
#: (which includes registered third-party methods) is
#: :func:`repro.methods.names`.
METHODS = ("mvindex", "mvindex-mv", "obdd", "shannon", "enumeration")


class MVQueryEngine:
    """Query evaluation over an MVDB via the INDB translation of Theorem 1."""

    def __init__(
        self,
        mvdb: MVDB,
        build_index: bool = True,
        permutations: Mapping[str, Sequence[str]] | None = None,
        construction: str = "concat",
        workers: int | None = None,
        backend: Any = None,
    ) -> None:
        self.mvdb: MVDB | None = mvdb
        #: Bumped on every applied mutation; a :class:`PendingExtend` records
        #: the epoch it was prepared against and is rejected as stale if
        #: another mutation published in between.
        self.mutation_epoch: int = 0
        self.translation: Translation | None = translate(mvdb, backend=backend)
        self.indb: TupleIndependentDatabase = self.translation.indb
        self.probabilities: dict[int, float] = self.indb.probabilities()
        self._nonstandard: bool | None = None
        self.order: VariableOrder = order_from_permutations(self.indb, permutations)
        self.construction = construction

        if self.translation.has_views:
            self.w_lineage: DNF = self.indb.lineage_of(self.translation.w_query)
        else:
            self.w_lineage = DNF.false()

        self.mv_index: MVIndex | None = None
        if build_index and not self.w_lineage.is_false:
            self.mv_index = MVIndex(
                self.w_lineage,
                self.probabilities,
                self.order,
                construction=construction,
                workers=workers,
            )

        #: Per-component skip summaries (:mod:`repro.mvindex.summaries`),
        #: built alongside the index and maintained in O(delta) by
        #: :meth:`apply_pending`; ``None`` when no index exists or skipping
        #: was disabled.
        self.summaries: SummaryStore | None = None
        if self.mv_index is not None:
            self.summaries = SummaryStore.from_index(self.mv_index, self.indb.tuple_of)

        self._p0_w: float | None = None

    @classmethod
    def from_parts(
        cls,
        indb: TupleIndependentDatabase,
        w_lineage: DNF,
        order: VariableOrder,
        mv_index: MVIndex | None = None,
        mvdb: MVDB | None = None,
        construction: str = "concat",
        summaries: SummaryStore | None = None,
    ) -> "MVQueryEngine":
        """Assemble an engine from pre-built pipeline products.

        This is the cold-start path of the serving layer
        (:mod:`repro.serving.artifact`): instead of re-running the offline
        pipeline — MVDB translation, lineage of ``W``, MV-index compilation —
        the engine is wired directly from a translated INDB, the lineage of
        ``W`` and an (optionally ``None``) compiled index that were restored
        from a saved artifact.  ``mvdb`` may be ``None``; online query
        answering only needs the translated products, never the source MVDB.
        ``summaries`` carries skip summaries restored from the artifact;
        when absent they are recomputed from the restored index (the
        version-1 artifact upgrade path).
        """
        engine = cls.__new__(cls)
        engine.mvdb = mvdb
        engine.mutation_epoch = 0
        engine.translation = None
        engine.indb = indb
        engine.probabilities = indb.probabilities()
        engine._nonstandard = None
        engine.order = order
        engine.construction = construction
        engine.w_lineage = w_lineage
        engine.mv_index = mv_index
        engine.summaries = summaries
        if engine.summaries is None and mv_index is not None:
            engine.summaries = SummaryStore.from_index(mv_index, indb.tuple_of)
        engine._p0_w = None
        return engine

    # ------------------------------------------------------------ incremental
    def extend_views(self, mvdb: MVDB) -> list[int]:
        """Extend this engine (and its MV-index) to a superset of MarkoViews.

        Single-writer convenience: :meth:`prepare_extend` followed by
        :meth:`apply_pending`.  Serving callers split the two halves so the
        expensive prepare runs off the serving lock (see
        :meth:`repro.serving.dispatch.Dispatcher.extend`).  Returns the keys
        of the components added to the index.

        The extended engine answers queries with the same probabilities as a
        from-scratch build; artifacts saved from it are *not* byte-identical
        to a rebuild (component keys and appended variable levels differ).
        """
        return self.apply_pending(self.prepare_extend(mvdb))

    def append_facts(self, facts: Mapping[str, Any]) -> int:
        """Stream new base facts into the engine (prepare + apply in one call).

        ``facts`` maps base relation names to fact lists: plain rows for
        deterministic relations, ``(row, weight)`` pairs for probabilistic
        ones.  View outputs and the lineage of ``W`` are re-materialised
        against the appended data, and only the *delta* OBDD components are
        compiled — untouched views and components are reused as-is.  Returns
        the number of new possible tuples (probabilistic and deterministic).
        """
        pending = self.prepare_append(facts)
        self.apply_pending(pending)
        return pending.added_tuple_count

    def prepare_extend(self, mvdb: MVDB) -> PendingExtend:
        """Compile the delta for attaching new MarkoViews, off the serving lock.

        Read-only with respect to live engine state: the new views' outputs
        are materialised over a variable-faithful scratch reconstruction of
        the live INDB, the lineage of the extended ``W`` is diffed against
        the indexed one, and the delta components are compiled in a *fresh*
        OBDD manager.  Nothing the serving read path touches is mutated
        until :meth:`apply_pending`.

        ``mvdb`` must carry every currently attached view (by name) plus the
        new ones, over base data consistent with the engine's (the engine
        may additionally hold appended facts the spec does not know about).
        For artifact-restored engines (no source MVDB) the spec must carry
        the *identical* base data; a full translation is diffed instead.
        """
        if self.mvdb is None:
            return self._prepare_extend_translated(mvdb)
        existing_names = {view.name for view in self.mvdb.views}
        lost = existing_names - {view.name for view in mvdb.views}
        if lost:
            raise InferenceError(
                f"cannot extend: the extension spec dropped MarkoViews {sorted(lost)} "
                "(views may only be added, not removed or changed)"
            )
        for relation, row, weight, __ in mvdb.base.probabilistic_tuples():
            try:
                live_weight = self.indb.weight(relation, row)
            except KeyError:
                live_weight = None
            if live_weight != weight:
                raise InferenceError(
                    f"cannot extend: tuple {relation}{tuple(row)} has weight {weight} in "
                    f"the extension spec but {live_weight} in the engine; extension "
                    "requires the engine's base data with extra views"
                )
        new_views = [view for view in mvdb.views if view.name not in existing_names]
        return self._prepare_delta(new_views=new_views, facts=None, kind="extend")

    def prepare_append(self, facts: Mapping[str, Any]) -> PendingExtend:
        """Prepare a streaming fact append, off the serving lock.

        The incremental lineage patch needs the MarkoView definitions to
        re-materialise view outputs over the appended data, so this is only
        available on engines built from a source MVDB (an artifact-restored
        engine regains the capability after an extend with a full spec).
        """
        if self.mvdb is None:
            raise InferenceError(
                "cannot append facts to an artifact-restored engine: the MarkoView "
                "definitions are not part of the artifact, so view outputs cannot "
                "be re-materialised; extend it with a full spec first"
            )
        return self._prepare_delta(
            new_views=[], facts=canonical_facts(facts), kind="append"
        )

    def apply_pending(self, pending: PendingExtend) -> list[int]:
        """Publish a prepared delta: the O(delta) half the write lock covers.

        Inserts the new tuples into the live INDB (asserting the variable
        ids the delta was sealed with — the cross-replica byte-identity
        invariant), splices the ``W`` lineage, imports the pre-compiled node
        block into the shared manager, and bumps the mutation epoch.  A
        delta prepared against any earlier epoch is rejected as stale
        (:class:`~repro.errors.ServingError`) — re-prepare and retry.
        Returns the keys of the components added to the index.
        """
        if pending.base_epoch != self.mutation_epoch:
            raise ServingError(
                f"stale PendingExtend: prepared against engine epoch "
                f"{pending.base_epoch}, but the engine is at {self.mutation_epoch}"
            )
        live = self.indb
        for spec in pending.new_tables:
            if spec["probabilistic"]:
                live.add_probabilistic_table(spec["name"], spec["attributes"])
            else:
                live.add_deterministic_table(spec["name"], spec["attributes"])
        if pending.deterministic_facts:
            live.database.append_facts(pending.deterministic_facts)
        # Pre-insert the probabilistic rows in per-relation batches (one
        # transaction each on the sqlite backend); the per-tuple variable
        # assignment below then sees them as duplicate no-op inserts.
        by_relation: dict[str, list[tuple]] = {}
        for relation, row, __, __ in pending.new_tuples:
            by_relation.setdefault(relation, []).append(row)
        if by_relation:
            live.database.append_facts(by_relation)
        for relation, row, weight, variable in pending.new_tuples:
            assigned = live.add_probabilistic_tuple(relation, row, weight)
            if assigned != variable:
                raise InferenceError(
                    f"cannot apply sealed delta: tuple {relation}{row} was assigned "
                    f"variable {assigned}, expected {variable} (engine state diverged "
                    "from the prepared snapshot)"
                )
        removed = {frozenset(clause) for clause in pending.removed_clauses}
        added_clauses = {frozenset(clause) for clause in pending.added_clauses}
        clauses = (self.w_lineage.clauses - removed) | added_clauses
        new_w_lineage = DNF(clauses) if clauses else DNF.false()
        self.probabilities.update(pending.new_probabilities)
        added: list[int] = []
        if self.mv_index is not None and (
            pending.index_delta is not None or pending.order_append
        ):
            added = self.mv_index.apply_prepared(
                pending.order_append, pending.new_probabilities, pending.index_delta
            )
            self.order = self.mv_index.order
            if self.summaries is not None:
                # O(delta) summary maintenance: drop the recompiled
                # components, summarise the fresh ones from their tuples.
                # Set/bitmap unions are order-independent, so the maintained
                # store is bit-equal to a fresh scan of the whole index.
                if pending.index_delta is not None:
                    for key in pending.index_delta["removed_keys"]:
                        self.summaries.discard(key)
                for key in added:
                    self.summaries.add(
                        summarize_component(
                            key, self.mv_index.components[key].variables, self.indb.tuple_of
                        )
                    )
        elif pending.order_append:
            self.order = self.order.extend(pending.order_append)
        if pending.kind == "extend":
            if pending.new_views is not None and self.mvdb is not None:
                for view in pending.new_views:
                    self.mvdb.add_markoview(view)
            elif pending.mvdb is not None:
                self.mvdb = pending.mvdb
            elif pending.new_view_names:
                # Sealed import without view objects: the view set is no
                # longer known, so degrade to artifact-restored bookkeeping.
                self.mvdb = None
        elif self.mvdb is not None:
            self._mirror_facts(pending)
        self.w_lineage = new_w_lineage
        self.translation = None
        self._p0_w = None
        self._nonstandard = None
        self.mutation_epoch += 1
        return added

    # ----------------------------------------------------- delta preparation
    def _prepare_delta(
        self,
        new_views: "Sequence[MarkoView]",
        facts: Mapping[str, list] | None,
        kind: str,
    ) -> PendingExtend:
        """Shared prepare pipeline for extends and appends.

        Reconstructs a scratch INDB with the live variable assignment
        (re-adding tuples in variable order reproduces the sequential ids
        exactly), appends the new facts and view outputs at the tail, and
        re-derives the lineage of ``W`` over the result.  The relational
        pass covers all views (new derivations of existing view outputs must
        be found too), but OBDD compilation is delta-only.
        """
        live = self.indb
        all_views = list(self.mvdb.views) + list(new_views)
        new_tables: list[dict[str, Any]] = []
        deterministic_facts: dict[str, list[tuple]] = {}
        new_tuples: list[tuple[str, tuple, float, int]] = []
        scratch = TupleIndependentDatabase(backend=live.database.backend.spawn())
        try:
            for table in live.database:
                if live.is_probabilistic(table.name):
                    scratch.add_probabilistic_table(table.name, table.schema.attribute_names)
                else:
                    scratch.add_deterministic_table(
                        table.name, table.schema.attribute_names, table.rows()
                    )
            for relation, row, weight, variable in live.probabilistic_tuples():
                if scratch.add_probabilistic_tuple(relation, row, weight) != variable:
                    raise InferenceError(
                        "cannot prepare a delta: variable reconstruction diverged "
                        "from the live engine (corrupt INDB state)"
                    )
            if facts:
                nv_relations = {view.nv_relation for view in all_views}
                for relation in sorted(facts):
                    if relation not in live.database:
                        raise SchemaError(
                            f"cannot append facts to unknown relation {relation!r}"
                        )
                    if relation in nv_relations or relation.startswith("NV_"):
                        raise InferenceError(
                            f"facts must target base relations, not the translated "
                            f"{relation!r}"
                        )
                    if live.is_probabilistic(relation):
                        for entry in facts[relation]:
                            row, weight = self._fact_pair(relation, entry)
                            if scratch.has_tuple(relation, row):
                                raise InferenceError(
                                    f"cannot append: tuple {relation}{row} already exists; "
                                    "weights of existing tuples cannot change through appends"
                                )
                            variable = scratch.add_probabilistic_tuple(relation, row, weight)
                            new_tuples.append((relation, row, weight, variable))
                    else:
                        fresh = []
                        for entry in facts[relation]:
                            row = self._fact_row(relation, entry)
                            if scratch.database.insert(relation, row):
                                fresh.append(row)
                        if fresh:
                            deterministic_facts[relation] = fresh
            for view in new_views:
                nv_name = view.nv_relation
                if nv_name in scratch.database:
                    raise SchemaError(
                        f"cannot create relation {nv_name!r} for MarkoView "
                        f"{view.name!r}: name in use"
                    )
                attributes = [variable.name for variable in view.query.head]
                scratch.add_probabilistic_table(nv_name, attributes)
                new_tables.append(
                    {"name": nv_name, "attributes": attributes, "probabilistic": True}
                )
            w_disjuncts: list[ConjunctiveQuery] = []
            for view in all_views:
                nv_name = view.nv_relation
                result = evaluate_ucq(view.query, scratch.database, scratch)
                for row, __ in sorted(
                    result.lineages().items(), key=lambda item: repr(item[0])
                ):
                    weight = view.weight_of(row)
                    if weight == 1.0:
                        # Weight 1 asserts independence: no correlation to encode.
                        continue
                    translated = markoview_weight_to_indb_weight(weight)
                    if scratch.has_tuple(nv_name, row):
                        if scratch.weight(nv_name, row) != translated:
                            raise InferenceError(
                                f"cannot extend: view {view.name!r} changed the weight "
                                f"of existing output {row}; views may only be added"
                            )
                        continue
                    variable = scratch.add_probabilistic_tuple(nv_name, row, translated)
                    new_tuples.append((nv_name, row, translated, variable))
                w_disjuncts.extend(_w_disjuncts_for_view(view))
            if w_disjuncts:
                new_w_lineage = scratch.lineage_of(UCQ(w_disjuncts, name="W"))
            else:
                new_w_lineage = DNF.false()
        finally:
            scratch.database.close()
        return self._diff_and_compile(
            new_w_lineage,
            new_tables,
            deterministic_facts,
            new_tuples,
            kind=kind,
            new_views=list(new_views),
            mvdb=None,
            new_view_names=[view.name for view in new_views],
        )

    def _prepare_extend_translated(self, mvdb: MVDB) -> PendingExtend:
        """Prepare an extend for an artifact-restored engine (no source MVDB).

        Without view objects the engine cannot re-materialise views over its
        own data, so the spec MVDB must carry the *identical* base data: a
        full Theorem 1 translation is performed and every previously indexed
        tuple is checked to keep its variable id and weight.  Applying the
        delta also installs the spec MVDB, restoring view bookkeeping (and
        with it the ability to append facts).
        """
        translation = translate(mvdb)
        new_indb = translation.indb
        translated = {
            (relation, row): (weight, variable)
            for relation, row, weight, variable in new_indb.probabilistic_tuples()
        }
        for relation, row, weight, variable in self.indb.probabilistic_tuples():
            extended = translated.get((relation, row))
            if extended != (weight, variable):
                raise InferenceError(
                    f"cannot extend: tuple {relation}{row} is "
                    f"{extended} in the extended MVDB but was ({weight}, {variable}); "
                    "extension requires the same base data with extra views"
                )
        live_count = self.indb.tuple_count()
        new_tables = [
            {
                "name": table.name,
                "attributes": list(table.schema.attribute_names),
                "probabilistic": new_indb.is_probabilistic(table.name),
            }
            for table in new_indb.database
            if table.name not in self.indb.database
        ]
        deterministic_facts: dict[str, list[tuple]] = {}
        for table in new_indb.database:
            if new_indb.is_probabilistic(table.name):
                continue
            if table.name in self.indb.database:
                fresh = [
                    row
                    for row in table.rows()
                    if not self.indb.database.contains_row(table.name, row)
                ]
            else:
                fresh = list(table.rows())
            if fresh:
                deterministic_facts[table.name] = fresh
        new_tuples = [
            (relation, row, weight, variable)
            for relation, row, weight, variable in new_indb.probabilistic_tuples()
            if variable >= live_count
        ]
        if translation.has_views:
            new_w_lineage = new_indb.lineage_of(translation.w_query)
        else:
            new_w_lineage = DNF.false()
        return self._diff_and_compile(
            new_w_lineage,
            new_tables,
            deterministic_facts,
            new_tuples,
            kind="extend",
            new_views=None,
            mvdb=mvdb,
            new_view_names=[
                view.name
                for view in mvdb.views
                if view.nv_relation not in self.indb.database
            ],
        )

    def _diff_and_compile(
        self,
        new_w_lineage: DNF,
        new_tables: list[dict[str, Any]],
        deterministic_facts: dict[str, list[tuple]],
        new_tuples: list[tuple[str, tuple, float, int]],
        kind: str,
        new_views: "list[MarkoView] | None",
        mvdb: MVDB | None,
        new_view_names: list[str],
    ) -> PendingExtend:
        """Diff the ``W`` lineage and compile the delta components (off-lock)."""
        # An indexed clause may legitimately vanish from the extended lineage
        # when a new view's clause subsumes it (DNF absorption); only clauses
        # that disappeared *without* a subsuming replacement indicate that a
        # view was removed or changed.
        missing = {
            clause
            for clause in self.w_lineage.clauses - new_w_lineage.clauses
            if not any(new_clause <= clause for new_clause in new_w_lineage.clauses)
        }
        if missing:
            raise InferenceError(
                "cannot extend: the extended MVDB lost clauses of the indexed W "
                "(views may only be added, not removed or changed)"
            )
        new_clauses = new_w_lineage.clauses - self.w_lineage.clauses
        removed_clauses = self.w_lineage.clauses - new_w_lineage.clauses
        new_probabilities = {
            variable: weight_to_probability(weight)
            for __, __, weight, variable in new_tuples
        }
        order_append = [
            variable
            for __, __, weight, variable in new_tuples
            if weight != CERTAIN_WEIGHT and variable not in self.order
        ]
        index_delta = None
        if self.mv_index is not None and new_clauses:
            index_delta = self.mv_index.prepare_extend(
                DNF(new_clauses),
                order_append=order_append,
                probabilities=new_probabilities,
                existing_lineage=self.w_lineage,
            )
        return PendingExtend(
            kind=kind,
            base_epoch=self.mutation_epoch,
            new_tables=new_tables,
            deterministic_facts=deterministic_facts,
            new_tuples=new_tuples,
            added_clauses=sorted((sorted(clause) for clause in new_clauses)),
            removed_clauses=sorted((sorted(clause) for clause in removed_clauses)),
            order_append=order_append,
            new_probabilities=new_probabilities,
            index_delta=index_delta,
            new_views=new_views,
            mvdb=mvdb,
            new_view_names=new_view_names,
        )

    def _mirror_facts(self, pending: PendingExtend) -> None:
        """Keep the source MVDB truthful after an append (oracle bookkeeping)."""
        mvdb = self.mvdb
        assert mvdb is not None
        for relation, rows in pending.deterministic_facts.items():
            if relation in mvdb.database:
                for row in rows:
                    mvdb.database.insert(relation, row)
        for relation, row, weight, __ in pending.new_tuples:
            if relation in mvdb.database and mvdb.base.is_probabilistic(relation):
                mvdb.base.add_probabilistic_tuple(relation, row, weight)

    @staticmethod
    def _fact_row(relation: str, entry: Any) -> tuple:
        if isinstance(entry, (str, bytes)) or not isinstance(entry, Sequence):
            raise SchemaError(
                f"facts for deterministic relation {relation!r} must be rows (sequences)"
            )
        return tuple(entry)

    @staticmethod
    def _fact_pair(relation: str, entry: Any) -> tuple[tuple, float]:
        malformed = (
            isinstance(entry, (str, bytes))
            or not isinstance(entry, Sequence)
            or len(entry) != 2
            or isinstance(entry[0], (str, bytes))
            or not isinstance(entry[0], Sequence)
        )
        if malformed:
            raise SchemaError(
                f"facts for probabilistic relation {relation!r} must be "
                "(row, weight) pairs"
            )
        row, weight = entry
        weight = float(weight)
        if math.isnan(weight) or weight < 0:
            raise WeightError(
                f"appended tuple {relation}{tuple(row)} must have a non-negative weight"
            )
        return tuple(row), weight

    # ----------------------------------------------------------- W statistics
    @property
    def w_lineage_size(self) -> int:
        """Number of clauses in the lineage of ``W`` (the Fig. 4 quantity)."""
        return 0 if self.w_lineage.is_false else len(self.w_lineage)

    def p0_w(self) -> float:
        """``P0(W)`` on the translated INDB (cached)."""
        if self._p0_w is None:
            if self.w_lineage.is_false:
                self._p0_w = 0.0
            elif self.mv_index is not None:
                self._p0_w = self.mv_index.probability_w()
            else:
                self._p0_w = shannon_probability(self.w_lineage, self.probabilities)
        return self._p0_w

    def p0_not_w(self) -> float:
        """``P0(¬W)``."""
        return 1.0 - self.p0_w()

    # ------------------------------------------------------------- validation
    @property
    def has_nonstandard_probabilities(self) -> bool:
        """Whether the translation produced probabilities outside ``[0, 1]``.

        Positive MarkoView correlations (weight > 1) translate into
        negative NV weights and probabilities (Sect. 3.3); methods whose
        ``supports_negative_weights`` capability flag is ``False`` are
        rejected on such engines.
        """
        if self._nonstandard is None:
            self._nonstandard = any(
                not 0.0 <= probability <= 1.0 for probability in self.probabilities.values()
            )
        return self._nonstandard

    def resolve_method(self, method: "str | InferenceMethod") -> "InferenceMethod":
        """Resolve a method name through the registry and check capabilities."""
        from repro import methods as method_registry

        resolved = method_registry.get(method)
        if not resolved.supports_negative_weights and self.has_nonstandard_probabilities:
            raise InferenceError(
                f"method {resolved.name!r} does not support the negative tuple "
                "weights this MVDB's translation produced (a MarkoView with "
                "weight > 1); use an exact method such as 'mvindex'"
            )
        return resolved

    def validate_method(self, method: str) -> None:
        """Reject unknown or incapable evaluation methods."""
        self.resolve_method(method)

    def validate_query(self, query: UCQ | ConjunctiveQuery) -> None:
        """Reject queries over the translated ``NV_*`` relations.

        User queries must be phrased over the MVDB schema; the ``NV``
        relations are an artifact of the Theorem 1 translation and querying
        them directly would produce meaningless probabilities.
        """
        ucq = as_ucq(query)
        unknown_nv = {
            relation
            for relation in ucq.relations()
            if relation.startswith("NV_")
        }
        if unknown_nv:
            raise InferenceError(
                f"queries must be over the MVDB schema, not the translated NV relations {unknown_nv}"
            )

    # ------------------------------------------------------------ data skipping
    def skip_analysis(self, queries: "UCQ | list[UCQ]") -> "SkipAnalysis | None":
        """Match one query (or a batch) against the component summaries.

        Returns the provably-relevant component set as a
        :class:`~repro.mvindex.summaries.SkipAnalysis`, or ``None`` when the
        engine has no summaries (no index, or skipping disabled).  Sharing
        one analysis across a batch is sound — the union of the queries'
        atoms only widens the relevant set.
        """
        if self.summaries is None:
            return None
        return self.summaries.analyze(queries)

    def disable_skipping(self) -> None:
        """Drop the skip layer: every query takes the unrestricted path.

        The ablation/debug switch behind the CLI ``--no-skip`` flag.  Sound
        by construction (skipping only ever prunes provably-cancelling
        work), irreversible for this engine instance short of a rebuild.
        """
        self.summaries = None

    # ---------------------------------------------------------------- queries
    def query(
        self,
        query: UCQ | ConjunctiveQuery,
        method: str = "mvindex",
        *,
        use_skip: bool = True,
    ) -> dict[tuple[Any, ...], float]:
        """Probability of every answer of ``query`` on the MVDB.

        For a Boolean query the result maps the empty tuple to ``P(Q)``
        (absent if the query has no derivation, i.e. probability 0).  This
        is the low-level map interface; :meth:`repro.ProbDB.query` returns
        typed :class:`repro.QueryResult` objects instead.  ``use_skip=False``
        bypasses the summary-driven component pruning for this one call
        (answers are bit-identical either way; the flag exists for
        ablations).
        """
        ucq = as_ucq(query)
        resolved = self.resolve_method(method)
        self.validate_query(ucq)
        skip = None
        if use_skip and resolved.supports_skip:
            skip = self.skip_analysis(ucq)
        result = evaluate_ucq(ucq, self.indb.database, self.indb)
        answers: dict[tuple[Any, ...], float] = {}
        for answer, lineage in result.lineages().items():
            if skip is not None:
                answers[answer] = resolved.probability(self, lineage, skip=skip)
            else:
                answers[answer] = resolved.probability(self, lineage)
        return answers

    def boolean_probability(
        self,
        query: UCQ | ConjunctiveQuery,
        method: str = "mvindex",
        *,
        use_skip: bool = True,
    ) -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations).

        Raises :class:`~repro.errors.InferenceError` when the query has free
        head variables — the old behaviour of silently returning 0.0 for
        non-Boolean queries hid real mistakes.
        """
        ucq = as_ucq(query)
        if not ucq.is_boolean:
            raise InferenceError(
                f"boolean_probability requires a Boolean query, but {ucq.name!r} has "
                f"free head variables {tuple(v.name for v in ucq.head)}; "
                "use query() for non-Boolean queries"
            )
        return self.query(ucq, method=method, use_skip=use_skip).get((), 0.0)

    # ---------------------------------------------------------------- internals
    def _lineage_probability(
        self,
        lineage: DNF,
        method: str,
        statistics: "IntersectStatistics | None" = None,
    ) -> float:
        """Probability of one answer lineage via the resolved method."""
        return self.resolve_method(method).probability(self, lineage, statistics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        index = "no index" if self.mv_index is None else repr(self.mv_index)
        source = "restored artifact" if self.mvdb is None else repr(self.mvdb)
        return f"MVQueryEngine({source}, W lineage {self.w_lineage_size} clauses, {index})"
