"""End-to-end query evaluation on MVDBs (Theorem 1 + MV-index).

The :class:`MVQueryEngine` wires together the whole pipeline of the paper:

1. translate the MVDB into a tuple-independent database and the view query
   ``W`` (offline, :mod:`repro.core.translate`);
2. compute the lineage of ``W`` and compile it into an MV-index (offline,
   :mod:`repro.mvindex`);
3. for a user query ``Q``, compute the lineage of every answer (a round trip
   to the relational engine) and evaluate
   ``P(Q) = P0(Q ∧ ¬W) / P0(¬W)`` online via MV-index intersection.

Several evaluation methods are exposed so the experiments of Sect. 5 can
compare them: ``mvindex`` (CC-MVIntersect), ``mvindex-mv`` (pointer-based
MVIntersect), ``obdd`` (construct the OBDD of ``Q ∨ W`` from scratch for
every query — the "augmented OBDD" line of Figs. 5/6), ``shannon`` (exact
DPLL-style computation on the lineage), and ``enumeration`` (brute force,
tiny inputs only).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.mvdb import MVDB
from repro.core.translate import (
    Translation,
    clamp_probability,
    theorem1_probability,
    translate,
)
from repro.errors import InferenceError
from repro.indb.database import TupleIndependentDatabase
from repro.lineage.dnf import DNF
from repro.lineage.enumeration import brute_force_probability
from repro.lineage.shannon import shannon_probability
from repro.mvindex.cc_intersect import cc_mv_intersect
from repro.mvindex.index import MVIndex
from repro.mvindex.intersect import mv_intersect
from repro.obdd.construct import build_obdd
from repro.obdd.order import VariableOrder, order_from_permutations
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import evaluate_ucq
from repro.query.ucq import UCQ, as_ucq

#: Evaluation methods accepted by :meth:`MVQueryEngine.query`.
METHODS = ("mvindex", "mvindex-mv", "obdd", "shannon", "enumeration")


class MVQueryEngine:
    """Query evaluation over an MVDB via the INDB translation of Theorem 1."""

    def __init__(
        self,
        mvdb: MVDB,
        build_index: bool = True,
        permutations: Mapping[str, Sequence[str]] | None = None,
        construction: str = "concat",
        workers: int | None = None,
    ) -> None:
        self.mvdb: MVDB | None = mvdb
        self.translation: Translation | None = translate(mvdb)
        self.indb: TupleIndependentDatabase = self.translation.indb
        self.probabilities: dict[int, float] = self.indb.probabilities()
        self.order: VariableOrder = order_from_permutations(self.indb, permutations)
        self.construction = construction

        if self.translation.has_views:
            self.w_lineage: DNF = self.indb.lineage_of(self.translation.w_query)
        else:
            self.w_lineage = DNF.false()

        self.mv_index: MVIndex | None = None
        if build_index and not self.w_lineage.is_false:
            self.mv_index = MVIndex(
                self.w_lineage,
                self.probabilities,
                self.order,
                construction=construction,
                workers=workers,
            )

        self._p0_w: float | None = None

    @classmethod
    def from_parts(
        cls,
        indb: TupleIndependentDatabase,
        w_lineage: DNF,
        order: VariableOrder,
        mv_index: MVIndex | None = None,
        mvdb: MVDB | None = None,
        construction: str = "concat",
    ) -> "MVQueryEngine":
        """Assemble an engine from pre-built pipeline products.

        This is the cold-start path of the serving layer
        (:mod:`repro.serving.artifact`): instead of re-running the offline
        pipeline — MVDB translation, lineage of ``W``, MV-index compilation —
        the engine is wired directly from a translated INDB, the lineage of
        ``W`` and an (optionally ``None``) compiled index that were restored
        from a saved artifact.  ``mvdb`` may be ``None``; online query
        answering only needs the translated products, never the source MVDB.
        """
        engine = cls.__new__(cls)
        engine.mvdb = mvdb
        engine.translation = None
        engine.indb = indb
        engine.probabilities = indb.probabilities()
        engine.order = order
        engine.construction = construction
        engine.w_lineage = w_lineage
        engine.mv_index = mv_index
        engine._p0_w = None
        return engine

    # ------------------------------------------------------------ incremental
    def extend_views(self, mvdb: MVDB) -> list[int]:
        """Extend this engine (and its MV-index) to a superset of MarkoViews.

        ``mvdb`` must be the *same* base data with additional views attached:
        the Theorem 1 translation hands out tuple variables sequentially, so
        attaching views only appends variables, and the check below verifies
        that every previously indexed tuple keeps its variable id and weight.
        The lineage of the extended ``W`` is diffed against the indexed one
        and only the new clauses are compiled —
        :meth:`repro.mvindex.index.MVIndex.extend` recompiles an existing
        component only when a new clause connects to it.  Returns the keys
        of the components added to the index.

        The extended engine answers queries with the same probabilities as a
        from-scratch build; artifacts saved from it are *not* byte-identical
        to a rebuild (component keys and appended variable levels differ).
        """
        translation = translate(mvdb)
        new_indb = translation.indb
        new_tuples = {
            (relation, row): (weight, variable)
            for relation, row, weight, variable in new_indb.probabilistic_tuples()
        }
        for relation, row, weight, variable in self.indb.probabilistic_tuples():
            extended = new_tuples.get((relation, row))
            if extended != (weight, variable):
                raise InferenceError(
                    f"cannot extend: tuple {relation}{row} is "
                    f"{extended} in the extended MVDB but was ({weight}, {variable}); "
                    "extension requires the same base data with extra views"
                )

        if translation.has_views:
            new_w_lineage = new_indb.lineage_of(translation.w_query)
        else:
            new_w_lineage = DNF.false()
        # An indexed clause may legitimately vanish from the extended lineage
        # when a new view's clause subsumes it (DNF absorption); only clauses
        # that disappeared *without* a subsuming replacement indicate that a
        # view was removed or changed.
        missing = {
            clause
            for clause in self.w_lineage.clauses - new_w_lineage.clauses
            if not any(new_clause <= clause for new_clause in new_w_lineage.clauses)
        }
        if missing:
            raise InferenceError(
                "cannot extend: the extended MVDB lost clauses of the indexed W "
                "(views may only be added, not removed or changed)"
            )
        new_clauses = new_w_lineage.clauses - self.w_lineage.clauses
        new_probabilities = new_indb.probabilities()

        added: list[int] = []
        if self.mv_index is not None and new_clauses:
            added = self.mv_index.extend(
                DNF(new_clauses),
                probabilities=new_probabilities,
                existing_lineage=self.w_lineage,
            )
            self.order = self.mv_index.order
        elif new_clauses:
            unseen = {v for clause in new_clauses for v in clause if v not in self.order}
            self.order = self.order.extend(sorted(unseen))

        self.mvdb = mvdb
        self.translation = translation
        self.indb = new_indb
        self.probabilities = new_probabilities
        self.w_lineage = new_w_lineage
        self._p0_w = None
        return added

    # ----------------------------------------------------------- W statistics
    @property
    def w_lineage_size(self) -> int:
        """Number of clauses in the lineage of ``W`` (the Fig. 4 quantity)."""
        return 0 if self.w_lineage.is_false else len(self.w_lineage)

    def p0_w(self) -> float:
        """``P0(W)`` on the translated INDB (cached)."""
        if self._p0_w is None:
            if self.w_lineage.is_false:
                self._p0_w = 0.0
            elif self.mv_index is not None:
                self._p0_w = self.mv_index.probability_w()
            else:
                self._p0_w = shannon_probability(self.w_lineage, self.probabilities)
        return self._p0_w

    def p0_not_w(self) -> float:
        """``P0(¬W)``."""
        return 1.0 - self.p0_w()

    # ------------------------------------------------------------- validation
    def validate_method(self, method: str) -> None:
        """Reject evaluation methods not in :data:`METHODS`."""
        if method not in METHODS:
            raise InferenceError(f"unknown evaluation method {method!r}; choose from {METHODS}")

    def validate_query(self, query: UCQ | ConjunctiveQuery) -> None:
        """Reject queries over the translated ``NV_*`` relations.

        User queries must be phrased over the MVDB schema; the ``NV``
        relations are an artifact of the Theorem 1 translation and querying
        them directly would produce meaningless probabilities.
        """
        ucq = as_ucq(query)
        unknown_nv = {
            relation
            for relation in ucq.relations()
            if relation.startswith("NV_")
        }
        if unknown_nv:
            raise InferenceError(
                f"queries must be over the MVDB schema, not the translated NV relations {unknown_nv}"
            )

    # ---------------------------------------------------------------- queries
    def query(
        self,
        query: UCQ | ConjunctiveQuery,
        method: str = "mvindex",
    ) -> dict[tuple[Any, ...], float]:
        """Probability of every answer of ``query`` on the MVDB.

        For a Boolean query the result maps the empty tuple to ``P(Q)``
        (absent if the query has no derivation, i.e. probability 0).
        """
        ucq = as_ucq(query)
        self.validate_method(method)
        self.validate_query(ucq)
        result = evaluate_ucq(ucq, self.indb.database, self.indb)
        answers: dict[tuple[Any, ...], float] = {}
        for answer, lineage in result.lineages().items():
            answers[answer] = self._lineage_probability(lineage, method)
        return answers

    def boolean_probability(self, query: UCQ | ConjunctiveQuery, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations)."""
        return self.query(query, method=method).get((), 0.0)

    # ---------------------------------------------------------------- internals
    def _lineage_probability(self, lineage: DNF, method: str) -> float:
        if lineage.is_false:
            return 0.0
        if self.w_lineage.is_false:
            # No MarkoViews: this is an ordinary tuple-independent database.
            return self._independent_probability(lineage, method)
        if method in ("mvindex", "mvindex-mv"):
            return self._mvindex_probability(lineage, method)
        p0_w = self.p0_w()
        combined = lineage.or_(self.w_lineage)
        if method == "obdd":
            order = self.order.extend(sorted(lineage.variables()))
            compiled = build_obdd(combined, order, method="concat")
            p0_q_or_w = compiled.probability(self.probabilities)
        elif method == "shannon":
            p0_q_or_w = shannon_probability(combined, self.probabilities)
        else:
            p0_q_or_w = brute_force_probability(combined, self.probabilities)
        return theorem1_probability(p0_q_or_w, p0_w)

    def _independent_probability(self, lineage: DNF, method: str) -> float:
        if method == "enumeration":
            return brute_force_probability(lineage, self.probabilities)
        if method == "obdd":
            order = self.order.extend(sorted(lineage.variables()))
            return build_obdd(lineage, order).probability(self.probabilities)
        return shannon_probability(lineage, self.probabilities)

    def _mvindex_probability(self, lineage: DNF, method: str) -> float:
        if self.mv_index is None:
            raise InferenceError(
                "the MV-index was not built (build_index=False); use method='obdd' or 'shannon'"
            )
        intersect = cc_mv_intersect if method == "mvindex" else mv_intersect
        numerator = intersect(self.mv_index, lineage, self.probabilities)
        denominator = self.mv_index.probability_not_w()
        if denominator == 0.0:
            raise InferenceError(
                "P0(¬W) = 0: the MarkoView hard constraints are violated in every world"
            )
        value = numerator / denominator
        return clamp_probability(value, context=f"P0(Q ∧ ¬W) / P0(¬W) via {method!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        index = "no index" if self.mv_index is None else repr(self.mv_index)
        source = "restored artifact" if self.mvdb is None else repr(self.mvdb)
        return f"MVQueryEngine({source}, W lineage {self.w_lineage_size} clauses, {index})"
