"""End-to-end query evaluation on MVDBs (Theorem 1 + MV-index).

The :class:`MVQueryEngine` wires together the whole pipeline of the paper:

1. translate the MVDB into a tuple-independent database and the view query
   ``W`` (offline, :mod:`repro.core.translate`);
2. compute the lineage of ``W`` and compile it into an MV-index (offline,
   :mod:`repro.mvindex`);
3. for a user query ``Q``, compute the lineage of every answer (a round trip
   to the relational engine) and evaluate
   ``P(Q) = P0(Q ∧ ¬W) / P0(¬W)`` online via MV-index intersection.

Evaluation strategies are resolved through the inference-method registry
(:mod:`repro.methods`): ``mvindex`` (CC-MVIntersect), ``mvindex-mv``
(pointer-based MVIntersect), ``obdd`` (construct the OBDD of ``Q ∨ W`` from
scratch for every query — the "augmented OBDD" line of Figs. 5/6),
``shannon`` (exact DPLL-style computation on the lineage), ``enumeration``
(brute force, tiny inputs only), ``sampling`` (Monte-Carlo, approximate),
plus anything registered by third parties via
:func:`repro.methods.register`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.mvdb import MVDB
from repro.core.translate import Translation, translate
from repro.errors import InferenceError
from repro.indb.database import TupleIndependentDatabase
from repro.lineage.dnf import DNF
from repro.lineage.shannon import shannon_probability
from repro.mvindex.index import MVIndex
from repro.obdd.order import VariableOrder, order_from_permutations
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import evaluate_ucq
from repro.query.ucq import UCQ, as_ucq

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.methods import InferenceMethod
    from repro.mvindex.intersect import IntersectStatistics

#: The paper's five evaluation methods.  Deprecated: the authoritative list
#: (which includes registered third-party methods) is
#: :func:`repro.methods.names`.
METHODS = ("mvindex", "mvindex-mv", "obdd", "shannon", "enumeration")


class MVQueryEngine:
    """Query evaluation over an MVDB via the INDB translation of Theorem 1."""

    def __init__(
        self,
        mvdb: MVDB,
        build_index: bool = True,
        permutations: Mapping[str, Sequence[str]] | None = None,
        construction: str = "concat",
        workers: int | None = None,
        backend: Any = None,
    ) -> None:
        self.mvdb: MVDB | None = mvdb
        self.translation: Translation | None = translate(mvdb, backend=backend)
        self.indb: TupleIndependentDatabase = self.translation.indb
        self.probabilities: dict[int, float] = self.indb.probabilities()
        self._nonstandard: bool | None = None
        self.order: VariableOrder = order_from_permutations(self.indb, permutations)
        self.construction = construction

        if self.translation.has_views:
            self.w_lineage: DNF = self.indb.lineage_of(self.translation.w_query)
        else:
            self.w_lineage = DNF.false()

        self.mv_index: MVIndex | None = None
        if build_index and not self.w_lineage.is_false:
            self.mv_index = MVIndex(
                self.w_lineage,
                self.probabilities,
                self.order,
                construction=construction,
                workers=workers,
            )

        self._p0_w: float | None = None

    @classmethod
    def from_parts(
        cls,
        indb: TupleIndependentDatabase,
        w_lineage: DNF,
        order: VariableOrder,
        mv_index: MVIndex | None = None,
        mvdb: MVDB | None = None,
        construction: str = "concat",
    ) -> "MVQueryEngine":
        """Assemble an engine from pre-built pipeline products.

        This is the cold-start path of the serving layer
        (:mod:`repro.serving.artifact`): instead of re-running the offline
        pipeline — MVDB translation, lineage of ``W``, MV-index compilation —
        the engine is wired directly from a translated INDB, the lineage of
        ``W`` and an (optionally ``None``) compiled index that were restored
        from a saved artifact.  ``mvdb`` may be ``None``; online query
        answering only needs the translated products, never the source MVDB.
        """
        engine = cls.__new__(cls)
        engine.mvdb = mvdb
        engine.translation = None
        engine.indb = indb
        engine.probabilities = indb.probabilities()
        engine._nonstandard = None
        engine.order = order
        engine.construction = construction
        engine.w_lineage = w_lineage
        engine.mv_index = mv_index
        engine._p0_w = None
        return engine

    # ------------------------------------------------------------ incremental
    def extend_views(self, mvdb: MVDB) -> list[int]:
        """Extend this engine (and its MV-index) to a superset of MarkoViews.

        ``mvdb`` must be the *same* base data with additional views attached:
        the Theorem 1 translation hands out tuple variables sequentially, so
        attaching views only appends variables, and the check below verifies
        that every previously indexed tuple keeps its variable id and weight.
        The lineage of the extended ``W`` is diffed against the indexed one
        and only the new clauses are compiled —
        :meth:`repro.mvindex.index.MVIndex.extend` recompiles an existing
        component only when a new clause connects to it.  Returns the keys
        of the components added to the index.

        The extended engine answers queries with the same probabilities as a
        from-scratch build; artifacts saved from it are *not* byte-identical
        to a rebuild (component keys and appended variable levels differ).
        """
        translation = translate(mvdb)
        new_indb = translation.indb
        new_tuples = {
            (relation, row): (weight, variable)
            for relation, row, weight, variable in new_indb.probabilistic_tuples()
        }
        for relation, row, weight, variable in self.indb.probabilistic_tuples():
            extended = new_tuples.get((relation, row))
            if extended != (weight, variable):
                raise InferenceError(
                    f"cannot extend: tuple {relation}{row} is "
                    f"{extended} in the extended MVDB but was ({weight}, {variable}); "
                    "extension requires the same base data with extra views"
                )

        if translation.has_views:
            new_w_lineage = new_indb.lineage_of(translation.w_query)
        else:
            new_w_lineage = DNF.false()
        # An indexed clause may legitimately vanish from the extended lineage
        # when a new view's clause subsumes it (DNF absorption); only clauses
        # that disappeared *without* a subsuming replacement indicate that a
        # view was removed or changed.
        missing = {
            clause
            for clause in self.w_lineage.clauses - new_w_lineage.clauses
            if not any(new_clause <= clause for new_clause in new_w_lineage.clauses)
        }
        if missing:
            raise InferenceError(
                "cannot extend: the extended MVDB lost clauses of the indexed W "
                "(views may only be added, not removed or changed)"
            )
        new_clauses = new_w_lineage.clauses - self.w_lineage.clauses
        new_probabilities = new_indb.probabilities()

        added: list[int] = []
        if self.mv_index is not None and new_clauses:
            added = self.mv_index.extend(
                DNF(new_clauses),
                probabilities=new_probabilities,
                existing_lineage=self.w_lineage,
            )
            self.order = self.mv_index.order
        elif new_clauses:
            unseen = {v for clause in new_clauses for v in clause if v not in self.order}
            self.order = self.order.extend(sorted(unseen))

        self.mvdb = mvdb
        self.translation = translation
        self.indb = new_indb
        self.probabilities = new_probabilities
        self.w_lineage = new_w_lineage
        self._p0_w = None
        self._nonstandard = None
        return added

    # ----------------------------------------------------------- W statistics
    @property
    def w_lineage_size(self) -> int:
        """Number of clauses in the lineage of ``W`` (the Fig. 4 quantity)."""
        return 0 if self.w_lineage.is_false else len(self.w_lineage)

    def p0_w(self) -> float:
        """``P0(W)`` on the translated INDB (cached)."""
        if self._p0_w is None:
            if self.w_lineage.is_false:
                self._p0_w = 0.0
            elif self.mv_index is not None:
                self._p0_w = self.mv_index.probability_w()
            else:
                self._p0_w = shannon_probability(self.w_lineage, self.probabilities)
        return self._p0_w

    def p0_not_w(self) -> float:
        """``P0(¬W)``."""
        return 1.0 - self.p0_w()

    # ------------------------------------------------------------- validation
    @property
    def has_nonstandard_probabilities(self) -> bool:
        """Whether the translation produced probabilities outside ``[0, 1]``.

        Positive MarkoView correlations (weight > 1) translate into
        negative NV weights and probabilities (Sect. 3.3); methods whose
        ``supports_negative_weights`` capability flag is ``False`` are
        rejected on such engines.
        """
        if self._nonstandard is None:
            self._nonstandard = any(
                not 0.0 <= probability <= 1.0 for probability in self.probabilities.values()
            )
        return self._nonstandard

    def resolve_method(self, method: "str | InferenceMethod") -> "InferenceMethod":
        """Resolve a method name through the registry and check capabilities."""
        from repro import methods as method_registry

        resolved = method_registry.get(method)
        if not resolved.supports_negative_weights and self.has_nonstandard_probabilities:
            raise InferenceError(
                f"method {resolved.name!r} does not support the negative tuple "
                "weights this MVDB's translation produced (a MarkoView with "
                "weight > 1); use an exact method such as 'mvindex'"
            )
        return resolved

    def validate_method(self, method: str) -> None:
        """Reject unknown or incapable evaluation methods."""
        self.resolve_method(method)

    def validate_query(self, query: UCQ | ConjunctiveQuery) -> None:
        """Reject queries over the translated ``NV_*`` relations.

        User queries must be phrased over the MVDB schema; the ``NV``
        relations are an artifact of the Theorem 1 translation and querying
        them directly would produce meaningless probabilities.
        """
        ucq = as_ucq(query)
        unknown_nv = {
            relation
            for relation in ucq.relations()
            if relation.startswith("NV_")
        }
        if unknown_nv:
            raise InferenceError(
                f"queries must be over the MVDB schema, not the translated NV relations {unknown_nv}"
            )

    # ---------------------------------------------------------------- queries
    def query(
        self,
        query: UCQ | ConjunctiveQuery,
        method: str = "mvindex",
    ) -> dict[tuple[Any, ...], float]:
        """Probability of every answer of ``query`` on the MVDB.

        For a Boolean query the result maps the empty tuple to ``P(Q)``
        (absent if the query has no derivation, i.e. probability 0).  This
        is the low-level map interface; :meth:`repro.ProbDB.query` returns
        typed :class:`repro.QueryResult` objects instead.
        """
        ucq = as_ucq(query)
        resolved = self.resolve_method(method)
        self.validate_query(ucq)
        result = evaluate_ucq(ucq, self.indb.database, self.indb)
        answers: dict[tuple[Any, ...], float] = {}
        for answer, lineage in result.lineages().items():
            answers[answer] = resolved.probability(self, lineage)
        return answers

    def boolean_probability(self, query: UCQ | ConjunctiveQuery, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations).

        Raises :class:`~repro.errors.InferenceError` when the query has free
        head variables — the old behaviour of silently returning 0.0 for
        non-Boolean queries hid real mistakes.
        """
        ucq = as_ucq(query)
        if not ucq.is_boolean:
            raise InferenceError(
                f"boolean_probability requires a Boolean query, but {ucq.name!r} has "
                f"free head variables {tuple(v.name for v in ucq.head)}; "
                "use query() for non-Boolean queries"
            )
        return self.query(ucq, method=method).get((), 0.0)

    # ---------------------------------------------------------------- internals
    def _lineage_probability(
        self,
        lineage: DNF,
        method: str,
        statistics: "IntersectStatistics | None" = None,
    ) -> float:
        """Probability of one answer lineage via the resolved method."""
        return self.resolve_method(method).probability(self, lineage, statistics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        index = "no index" if self.mv_index is None else repr(self.mv_index)
        source = "restored artifact" if self.mvdb is None else repr(self.mvdb)
        return f"MVQueryEngine({source}, W lineage {self.w_lineage_size} clauses, {index})"
