"""The paper's core contribution: MarkoViews, MVDBs, translation, query engine.

.. deprecated::
    Package-level re-exports from ``repro.core`` (``MVQueryEngine``,
    ``MVDB``, ``MarkoView``, ``METHODS``, ...) are deprecated in favour of
    the unified facade: construct engines through :func:`repro.connect`,
    model with :class:`repro.MVDB` / :class:`repro.MarkoView`, and list
    evaluation methods with :func:`repro.methods.names`.  The submodules
    themselves (:mod:`repro.core.engine`, :mod:`repro.core.mvdb`,
    :mod:`repro.core.markoview`, :mod:`repro.core.translate`) remain
    importable without a warning.
"""

from __future__ import annotations

import importlib
import warnings

#: Deprecated package-level names: source module and blessed replacement.
_DEPRECATED = {
    "METHODS": ("repro.core.engine", "repro.methods.names()"),
    "MVQueryEngine": ("repro.core.engine", "repro.connect()"),
    "MVDB": ("repro.core.mvdb", "repro.MVDB"),
    "MarkoView": ("repro.core.markoview", "repro.MarkoView"),
    "Translation": ("repro.core.translate", "repro.core.translate.Translation"),
    "ViewTranslation": ("repro.core.translate", "repro.core.translate.ViewTranslation"),
    "answer_tuple_to_boolean": (
        "repro.core.translate",
        "repro.core.translate.answer_tuple_to_boolean",
    ),
    "clamp_probability": ("repro.core.translate", "repro.core.translate.clamp_probability"),
    "theorem1_probability": (
        "repro.core.translate",
        "repro.core.translate.theorem1_probability",
    ),
}

# ``translate`` (the function) has always shadowed the submodule of the same
# name on this package, and the import system would re-bind the attribute to
# the submodule behind a lazy shim's back — so this one name stays an eager,
# warning-free re-export.
from repro.core.translate import translate  # noqa: E402,F401

__all__ = sorted([*_DEPRECATED, "translate"])


def __getattr__(name: str):
    try:
        module_name, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    warnings.warn(
        f"importing {name!r} from 'repro.core' is deprecated; "
        f"use {replacement} (see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
