"""The paper's core contribution: MarkoViews, MVDBs, translation, query engine."""

from repro.core.engine import METHODS, MVQueryEngine
from repro.core.markoview import MarkoView
from repro.core.mvdb import MVDB
from repro.core.translate import (
    Translation,
    ViewTranslation,
    answer_tuple_to_boolean,
    clamp_probability,
    theorem1_probability,
    translate,
)

__all__ = [
    "METHODS",
    "MVDB",
    "MVQueryEngine",
    "MarkoView",
    "Translation",
    "ViewTranslation",
    "answer_tuple_to_boolean",
    "clamp_probability",
    "theorem1_probability",
    "translate",
]
