"""Sealed write-path deltas: the ``PendingExtend`` artifact.

The non-blocking write path splits every mutation — attaching MarkoViews
(``extend``) or streaming new base facts (``append``) — into two halves:

* **prepare** (off the serving lock): the engine evaluates the new view
  outputs and the lineage of ``W`` against an immutable snapshot of its
  state, diffs the clause sets, and compiles only the delta OBDD components
  in a *fresh* manager.  The result is a :class:`PendingExtend` — everything
  needed to publish the mutation, with no reference to live engine state.
* **apply** (under the brief write lock): an O(delta) patch — insert the new
  tuples, splice the lineage, import the pre-compiled node block into the
  shared manager, flip the generation.  Readers only ever wait for this.

A ``PendingExtend`` also doubles as the fleet's replication artifact:
:meth:`sealed` renders it as plain JSON (shipped by the router to follower
replicas, recorded in the fleet's replay log) and :meth:`from_sealed`
rehydrates it, so followers *import* the leader's compiled delta instead of
recompiling it — one compile, N byte-identical replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.markoview import MarkoView
    from repro.core.mvdb import MVDB


@dataclass
class PendingExtend:
    """A prepared, not-yet-published mutation of an :class:`MVQueryEngine`.

    Attributes
    ----------
    kind:
        ``"extend"`` (new MarkoViews) or ``"append"`` (new base facts).
    base_epoch:
        The engine's ``mutation_epoch`` the delta was prepared against;
        applying against any other epoch is rejected as stale.
    new_tables:
        Relations to create, in order: ``{"name", "attributes",
        "probabilistic"}`` (the ``NV`` relations of newly attached views).
    deterministic_facts:
        ``relation -> rows`` to insert into deterministic tables (batched —
        one transaction per relation on the sqlite backend).
    new_tuples:
        ``(relation, row, weight, variable)`` in ascending variable order;
        the variable ids are the ones the live engine *must* assign, which
        is what keeps replicas byte-identical.
    added_clauses / removed_clauses:
        The ``W``-lineage diff (removed = clauses absorbed by new ones).
    order_append:
        Non-certain new variables, in the order they join the variable
        order (appended at the tail, so existing OBDD levels are stable).
    new_probabilities:
        ``variable -> marginal probability`` for every new tuple.
    index_delta:
        The pre-compiled MV-index patch (``None`` when no new clauses):
        ``{"removed_keys", "nodes", "roots", "component_variables"}`` with
        the node block in stable children-first export form.
    new_views / mvdb / new_view_names:
        View bookkeeping: the attached :class:`MarkoView` objects (local
        prepare), or the full spec MVDB (artifact-restored engines), plus
        the view names for the sealed form (followers re-resolve them
        through their extender).
    """

    kind: str
    base_epoch: int
    new_tables: list[dict[str, Any]] = field(default_factory=list)
    deterministic_facts: dict[str, list[tuple]] = field(default_factory=dict)
    new_tuples: list[tuple[str, tuple, float, int]] = field(default_factory=list)
    added_clauses: list[list[int]] = field(default_factory=list)
    removed_clauses: list[list[int]] = field(default_factory=list)
    order_append: list[int] = field(default_factory=list)
    new_probabilities: dict[int, float] = field(default_factory=dict)
    index_delta: dict[str, Any] | None = None
    new_views: "list[MarkoView] | None" = None
    mvdb: "MVDB | None" = None
    new_view_names: list[str] = field(default_factory=list)

    @property
    def added_tuple_count(self) -> int:
        """Number of new possible tuples (probabilistic + deterministic)."""
        return len(self.new_tuples) + sum(
            len(rows) for rows in self.deterministic_facts.values()
        )

    def delta_descriptor(self) -> dict[str, Any]:
        """Summarize what this delta can possibly touch, for subscriptions.

        The subscription evaluator skips a standing query when the delta is
        provably disjoint from it, which needs exactly two facts about the
        mutation: which *relations* gained rows (a query over disjoint
        relations keeps its relational lineage — appends are monotone), and
        which *variables* sit in recompiled or new MV-index components (a
        lineage over disjoint variables keeps its conditional probability —
        untouched components cancel in ``P0(Q ∧ ¬W)/P0(¬W)``).  Recompiled
        components re-enter the index with their full variable pool, so
        ``component_variables`` of the index delta covers every removed
        component's variables too.
        """
        from repro.mvindex.summaries import bitmap_to_hex, variables_bitmap

        relations: set[str] = set(self.deterministic_facts)
        relations.update(table["name"] for table in self.new_tables)
        relations.update(relation for relation, *_ in self.new_tuples)
        component_variables: set[int] = set()
        removed_keys: list[int] = []
        if self.index_delta is not None:
            for variables in self.index_delta.get("component_variables", []):
                component_variables.update(int(v) for v in variables)
            removed_keys = [int(key) for key in self.index_delta.get("removed_keys", [])]
        return {
            "kind": self.kind,
            "base_epoch": self.base_epoch,
            "relations": sorted(relations),
            "component_variables": sorted(component_variables),
            # The same variable set as a summary-layer bitmap (hex), so the
            # subscription evaluator intersects it against each standing
            # query's variable bitmap with one integer AND per subscription.
            "component_bitmap": bitmap_to_hex(variables_bitmap(component_variables)),
            "removed_keys": removed_keys,
            "added_clauses": len(self.added_clauses),
            "added_tuples": self.added_tuple_count,
        }

    def sealed(self) -> dict[str, Any]:
        """Render this delta as plain JSON-compatible data.

        The sealed form is self-contained up to view *objects*: an
        ``extend`` records only the new view names, and the importer
        re-resolves them from its extend spec (every replica runs the same
        deterministic extender, so the resolved views are identical).
        """
        return {
            "kind": self.kind,
            "base_epoch": self.base_epoch,
            "new_tables": [dict(table) for table in self.new_tables],
            "deterministic_facts": {
                relation: [list(row) for row in rows]
                for relation, rows in self.deterministic_facts.items()
            },
            "new_tuples": [
                [relation, list(row), weight, variable]
                for relation, row, weight, variable in self.new_tuples
            ],
            "added_clauses": [list(clause) for clause in self.added_clauses],
            "removed_clauses": [list(clause) for clause in self.removed_clauses],
            "order_append": list(self.order_append),
            "new_probabilities": [
                [variable, probability]
                for variable, probability in self.new_probabilities.items()
            ],
            "index_delta": self.index_delta,
            "new_view_names": list(self.new_view_names),
        }

    @classmethod
    def from_sealed(
        cls, document: Mapping[str, Any], mvdb: "MVDB | None" = None
    ) -> "PendingExtend":
        """Rehydrate a sealed delta (the follower half of compile-once-ship).

        ``mvdb`` is the importer's freshly built spec MVDB (``extend`` only);
        the recorded view names are resolved against it.  Importing an
        ``extend`` without an MVDB is allowed but degrades the engine's view
        bookkeeping — subsequent appends on that replica are rejected.
        """
        try:
            kind = document["kind"]
            if kind not in ("extend", "append"):
                raise ServingError(f"unknown sealed mutation kind {kind!r}")
            new_views = None
            names = [str(name) for name in document.get("new_view_names", [])]
            if kind == "extend" and mvdb is not None:
                by_name = {view.name: view for view in mvdb.views}
                missing = [name for name in names if name not in by_name]
                if missing:
                    raise ServingError(
                        f"sealed extend names views {missing} absent from the spec MVDB"
                    )
                new_views = [by_name[name] for name in names]
            return cls(
                kind=kind,
                base_epoch=int(document["base_epoch"]),
                new_tables=[dict(table) for table in document.get("new_tables", [])],
                deterministic_facts={
                    relation: [tuple(row) for row in rows]
                    for relation, rows in document.get("deterministic_facts", {}).items()
                },
                new_tuples=[
                    (relation, tuple(row), float(weight), int(variable))
                    for relation, row, weight, variable in document.get("new_tuples", [])
                ],
                added_clauses=[
                    [int(v) for v in clause] for clause in document.get("added_clauses", [])
                ],
                removed_clauses=[
                    [int(v) for v in clause]
                    for clause in document.get("removed_clauses", [])
                ],
                order_append=[int(v) for v in document.get("order_append", [])],
                new_probabilities={
                    int(variable): float(probability)
                    for variable, probability in document.get("new_probabilities", [])
                },
                index_delta=document.get("index_delta"),
                new_views=new_views,
                new_view_names=names,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServingError(f"malformed sealed mutation: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PendingExtend({self.kind}, epoch {self.base_epoch}, "
            f"{self.added_tuple_count} tuples, {len(self.added_clauses)} clauses)"
        )


def canonical_facts(facts: Any) -> dict[str, list]:
    """Validate the shape of an ``append_facts`` payload (wire or local).

    ``facts`` maps relation names to fact lists; deterministic relations
    take plain rows, probabilistic relations take ``[row, weight]`` pairs.
    The per-relation interpretation is decided by the receiving engine —
    this helper only normalizes containers and rejects non-mappings early.
    """
    if not isinstance(facts, Mapping) or not facts:
        raise ServingError("'facts' must be a non-empty mapping of relation -> rows")
    normalized: dict[str, list] = {}
    for relation, entries in facts.items():
        if not isinstance(relation, str) or not relation:
            raise ServingError("relation names in 'facts' must be non-empty strings")
        if isinstance(entries, (str, bytes)) or not isinstance(entries, Sequence):
            raise ServingError(f"facts for {relation!r} must be a list of rows")
        normalized[relation] = list(entries)
    return normalized


__all__ = ["PendingExtend", "canonical_facts"]
