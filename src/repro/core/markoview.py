"""MarkoView definitions.

A MarkoView (Def. 3) is a rule ``V(x̄)[wexpr] :- Q`` where ``Q`` is a UCQ
over the probabilistic and deterministic relations and ``wexpr`` assigns a
non-negative weight to every output tuple.  Weights ``< 1`` assert a
negative correlation between the contributing tuples, ``> 1`` a positive
correlation, ``= 1`` independence, and ``= 0`` a hard (denial) constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.errors import QueryError, WeightError
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import UCQ, as_ucq

#: A view weight: a constant, or a function of the output row.
WeightSpec = Union[float, int, Callable[[tuple[Any, ...]], float]]


@dataclass(frozen=True)
class MarkoView:
    """One MarkoView: a named UCQ view plus a per-output-tuple weight.

    Parameters
    ----------
    name:
        View name (also used to derive the ``NV`` relation name in the
        translated INDB, e.g. ``V1`` → ``NV1``).
    query:
        The view definition: a non-Boolean UCQ (or CQ) whose head variables
        are the view's output attributes.
    weight:
        Either a non-negative constant weight applied to every output tuple,
        or a callable mapping an output row to its weight (this is how
        parameterised weights such as ``count(pid)/2`` are expressed — the
        caller pre-computes the aggregate and closes over it).
    description:
        Free-text description (used in reports).
    """

    name: str
    query: UCQ
    weight: WeightSpec
    description: str = ""

    def __init__(
        self,
        name: str,
        query: UCQ | ConjunctiveQuery,
        weight: WeightSpec,
        description: str = "",
    ) -> None:
        ucq = as_ucq(query, name=name)
        if ucq.is_boolean:
            raise QueryError(
                f"MarkoView {name!r} must have head variables (its outputs carry the weights)"
            )
        if not callable(weight):
            weight = float(weight)
            if weight < 0 or math.isnan(weight) or math.isinf(weight):
                raise WeightError(
                    f"MarkoView {name!r} has invalid constant weight {weight}; weights must be "
                    "finite and non-negative"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "query", ucq)
        object.__setattr__(self, "weight", weight)
        object.__setattr__(self, "description", description)

    @property
    def nv_relation(self) -> str:
        """Name of the fresh ``NV`` relation introduced by the translation."""
        return f"NV_{self.name}"

    @property
    def arity(self) -> int:
        """Number of output attributes of the view."""
        return len(self.query.head)

    def weight_of(self, row: tuple[Any, ...]) -> float:
        """Weight asserted by the view for the output tuple ``row``."""
        if callable(self.weight):
            value = float(self.weight(row))
        else:
            value = float(self.weight)
        if value < 0 or math.isnan(value) or math.isinf(value):
            raise WeightError(
                f"MarkoView {self.name!r} produced invalid weight {value} for row {row}; "
                "weights must be finite and non-negative"
            )
        return value

    @property
    def is_denial(self) -> bool:
        """True if the view has the constant weight 0 (a hard denial constraint)."""
        return not callable(self.weight) and float(self.weight) == 0.0

    def __repr__(self) -> str:
        weight = "fn" if callable(self.weight) else f"{self.weight:g}"
        return f"MarkoView({self.name}[{weight}] :- {self.query!r})"
