"""The MVDB data model: probabilistic tables plus MarkoViews.

An MVDB (Def. 3) is a triple ``(Tup, w, V)``: a set of possible tuples over
a relational schema, a weight for each possible tuple, and a set of
MarkoViews.  Its semantics (Def. 4) is the Markov Logic Network with one
feature per base tuple (the tuple itself, with its weight) and one feature
per view output tuple (the Boolean query ``Q(t)``, with the view weight).

The class below stores the base part as a
:class:`~repro.indb.TupleIndependentDatabase` (it *is* one when there are no
views) and adds view management, view materialisation over ``I_poss``, and
the exact possible-world semantics used as the test oracle.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from repro.db.database import Database
from repro.errors import InferenceError, SchemaError
from repro.indb.database import TupleIndependentDatabase
from repro.lineage.dnf import DNF
from repro.lineage.enumeration import MAX_ENUMERATION_VARIABLES
from repro.core.markoview import MarkoView
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import evaluate_ucq
from repro.query.ucq import UCQ, as_ucq


class MVDB:
    """A MarkoView database: base probabilistic tables + MarkoViews."""

    def __init__(self, backend: Any = None) -> None:
        self.base = TupleIndependentDatabase(backend=backend)
        self.views: list[MarkoView] = []

    # ------------------------------------------------------------- base data
    @property
    def database(self) -> Database:
        """The deterministic instance ``I_poss`` holding all possible tuples."""
        return self.base.database

    def add_deterministic_table(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Any]] = ()
    ):
        """Create a deterministic relation."""
        return self.base.add_deterministic_table(name, attributes, rows)

    def add_probabilistic_table(
        self,
        name: str,
        attributes: Sequence[str],
        weighted_rows: Iterable[tuple[Sequence[Any], float]] = (),
    ):
        """Create a probabilistic relation from ``(row, weight)`` pairs (weights are odds)."""
        return self.base.add_probabilistic_table(name, attributes, weighted_rows)

    def add_probabilistic_tuple(self, relation: str, row: Sequence[Any], weight: float) -> int:
        """Add one possible tuple with a non-negative weight; returns its variable id."""
        if weight < 0:
            raise SchemaError(
                f"base tuple weights must be non-negative, got {weight} for {relation}{tuple(row)}"
            )
        return self.base.add_probabilistic_tuple(relation, row, weight)

    # ----------------------------------------------------------------- views
    def add_markoview(self, view: MarkoView) -> MarkoView:
        """Register a MarkoView; its body relations must already exist."""
        missing = [name for name in view.query.relations() if name not in self.database]
        if missing:
            raise SchemaError(f"MarkoView {view.name!r} references unknown relations {missing}")
        if any(existing.name == view.name for existing in self.views):
            raise SchemaError(f"a MarkoView named {view.name!r} already exists")
        self.views.append(view)
        return view

    def view_tuples(self, view: MarkoView) -> list[tuple[tuple[Any, ...], float, DNF]]:
        """Materialise a view over ``I_poss``.

        Returns a list of ``(output row, weight, ground feature lineage)``:
        the lineage is the Boolean formula of the MLN feature ``Q(t)`` over
        the base probabilistic tuples.
        """
        result = evaluate_ucq(view.query, self.database, self.base)
        output: list[tuple[tuple[Any, ...], float, DNF]] = []
        for row, lineage in sorted(result.lineages().items(), key=lambda item: repr(item[0])):
            output.append((row, view.weight_of(row), lineage))
        return output

    # ------------------------------------------------------------- statistics
    def size_report(self) -> dict[str, int]:
        """Row counts of base relations plus output sizes of every MarkoView."""
        report = dict(self.database.size_report())
        for view in self.views:
            report[view.name] = len(self.view_tuples(view))
        return report

    def possible_tuple_count(self) -> int:
        """Number of possible probabilistic base tuples."""
        return self.base.tuple_count()

    # -------------------------------------------------------- exact semantics
    def _ground_features(self) -> list[tuple[DNF, float]]:
        """All grounded MLN features contributed by the views (lineage, weight)."""
        features: list[tuple[DNF, float]] = []
        for view in self.views:
            for __, weight, lineage in self.view_tuples(view):
                features.append((lineage, weight))
        return features

    def exact_answer_probabilities(
        self, query: UCQ | ConjunctiveQuery
    ) -> dict[tuple[Any, ...], float]:
        """Ground-truth answer probabilities by possible-world enumeration.

        This is the MLN semantics of Def. 4 computed literally:
        ``P(Q) = Φ(Q) / Z`` with ``Φ(I) = Π_{t∈I} w(t) · Π_{J ⊨ F_t} w_V(t)``.
        Exponential in the number of uncertain base tuples — use only on
        small instances (tests, examples).
        """
        ucq = as_ucq(query)
        uncertain = [
            variable
            for variable in self.base.variables()
            if not self.base.is_certain(variable)
        ]
        if len(uncertain) > MAX_ENUMERATION_VARIABLES:
            raise InferenceError(
                f"exact MVDB semantics requested over {len(uncertain)} uncertain tuples; "
                f"the enumeration oracle is limited to {MAX_ENUMERATION_VARIABLES}"
            )
        features = self._ground_features()
        answer_result = evaluate_ucq(ucq, self.database, self.base)
        answer_lineages = answer_result.lineages()

        weights = {variable: self.base.weight_of_variable(variable) for variable in uncertain}
        partition = 0.0
        unnormalised: dict[tuple[Any, ...], float] = {answer: 0.0 for answer in answer_lineages}
        for assignment in _assignments(uncertain):
            world_weight = 1.0
            for variable, present in assignment.items():
                if present:
                    world_weight *= weights[variable]
            for lineage, feature_weight in features:
                if lineage.evaluate(assignment):
                    world_weight *= feature_weight
            partition += world_weight
            if world_weight == 0.0:
                continue
            for answer, lineage in answer_lineages.items():
                if lineage.evaluate(assignment):
                    unnormalised[answer] += world_weight
        if partition <= 0.0 or math.isclose(partition, 0.0):
            raise InferenceError(
                "the MVDB partition function is zero: the hard constraints are unsatisfiable"
            )
        return {answer: value / partition for answer, value in unnormalised.items()}

    def exact_query_probability(self, query: UCQ | ConjunctiveQuery) -> float:
        """Ground-truth probability of a Boolean query (see :meth:`exact_answer_probabilities`)."""
        ucq = as_ucq(query)
        answers = self.exact_answer_probabilities(ucq)
        return answers.get((), 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MVDB({len(self.base.probabilistic_relations())} probabilistic relations, "
            f"{self.possible_tuple_count()} possible tuples, {len(self.views)} MarkoViews)"
        )


def _assignments(variables: list[int]):
    """All assignments of the given variables (iterative, deterministic order)."""
    from itertools import product

    for values in product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))
