"""The MVDB → INDB translation (Def. 5 and Theorem 1).

Given an MVDB ``(Tup, w, V)`` the translation builds a tuple-independent
database over the schema ``R ∪ NV``:

* every base relation keeps its possible tuples and weights;
* every MarkoView ``Vi`` contributes a fresh relation ``NVi`` whose possible
  tuples are the view's output tuples and whose weights are
  ``(1 - w) / w`` — *negative* when ``w > 1``;
* the Boolean query ``Wi = ∃x̄. NVi(x̄) ∧ Qi(x̄)`` is formed for every view and
  ``W = ∨ Wi``.

Theorem 1 then states, for every Boolean query ``Q`` over the base schema::

    P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W)) = P0(Q ∧ ¬W) / P0(¬W)

Two simplifications from the paper are applied:

* **denial views** (weight 0) make ``NVi`` deterministic, so its tuples
  contribute no Boolean variable and the ``NVi`` atom effectively drops out
  of ``Wi`` (end of Sect. 3.2);
* view output tuples with weight exactly 1 assert independence and are
  omitted entirely (their translated weight would be 0, i.e. probability 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.markoview import MarkoView
from repro.core.mvdb import MVDB
from repro.errors import InferenceError, SchemaError
from repro.indb.database import TupleIndependentDatabase
from repro.indb.weights import markoview_weight_to_indb_weight
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import UCQ


@dataclass
class ViewTranslation:
    """Bookkeeping for one translated MarkoView."""

    view: MarkoView
    nv_relation: str
    tuple_count: int
    denial_tuples: int
    independent_tuples: int
    w_disjuncts: tuple[ConjunctiveQuery, ...]


@dataclass
class Translation:
    """The result of translating an MVDB into a tuple-independent database."""

    indb: TupleIndependentDatabase
    w_query: UCQ | None
    views: list[ViewTranslation] = field(default_factory=list)

    @property
    def has_views(self) -> bool:
        """True if at least one MarkoView produced a ``W`` disjunct."""
        return self.w_query is not None


def _w_disjuncts_for_view(view: MarkoView) -> list[ConjunctiveQuery]:
    """Build the Boolean disjuncts of ``Wi = ∃x̄. NVi(x̄) ∧ Qi(x̄)``."""
    disjuncts = []
    for cq in view.query.disjuncts:
        atoms = list(cq.atoms) + [Atom(view.nv_relation, list(cq.head))]
        disjuncts.append(
            ConjunctiveQuery([], atoms, cq.comparisons, name=f"W_{view.name}")
        )
    return disjuncts


def translate(mvdb: MVDB, backend: Any = None) -> Translation:
    """Translate an MVDB into its associated tuple-independent database.

    ``backend`` selects the storage backend of the translated INDB; by
    default a fresh sibling of the MVDB's own backend is used, so a
    disk-backed MVDB translates into a disk-backed INDB.
    """
    if backend is None:
        backend = mvdb.database.backend.spawn()
    indb = TupleIndependentDatabase(backend=backend)

    # Base relations: identical possible tuples and weights.
    for table in mvdb.database:
        name = table.name
        attributes = table.schema.attribute_names
        if mvdb.base.is_probabilistic(name):
            indb.add_probabilistic_table(name, attributes)
            for row in table.rows():
                indb.add_probabilistic_tuple(name, row, mvdb.base.weight(name, row))
        else:
            indb.add_deterministic_table(name, attributes, table.rows())

    # One NV relation per MarkoView.
    view_translations: list[ViewTranslation] = []
    w_disjuncts: list[ConjunctiveQuery] = []
    for view in mvdb.views:
        nv_name = view.nv_relation
        if nv_name in indb.database:
            raise SchemaError(
                f"cannot create relation {nv_name!r} for MarkoView {view.name!r}: name in use"
            )
        attributes = [variable.name for variable in view.query.head]
        indb.add_probabilistic_table(nv_name, attributes)
        denial_tuples = 0
        independent_tuples = 0
        materialised = mvdb.view_tuples(view)
        for row, weight, __ in materialised:
            if weight == 1.0:
                # Weight 1 asserts independence: no correlation to encode.
                independent_tuples += 1
                continue
            translated = markoview_weight_to_indb_weight(weight)
            if weight == 0.0:
                denial_tuples += 1
            indb.add_probabilistic_tuple(nv_name, row, translated)
        disjuncts = _w_disjuncts_for_view(view)
        w_disjuncts.extend(disjuncts)
        view_translations.append(
            ViewTranslation(
                view=view,
                nv_relation=nv_name,
                tuple_count=len(materialised) - independent_tuples,
                denial_tuples=denial_tuples,
                independent_tuples=independent_tuples,
                w_disjuncts=tuple(disjuncts),
            )
        )

    w_query = UCQ(w_disjuncts, name="W") if w_disjuncts else None
    return Translation(indb=indb, w_query=w_query, views=view_translations)


#: Width of the boundary band inside which out-of-range probabilities are
#: attributed to floating-point noise and clamped; anything further out is a
#: genuine inference failure.
CLAMP_TOLERANCE = 1e-9


def clamp_probability(value: float, tolerance: float = CLAMP_TOLERANCE, context: str = "") -> float:
    """Clamp floating-point noise at the ``[0, 1]`` boundary; reject violations.

    Values within ``tolerance`` of the valid range are snapped onto it (the
    MarkoView translation works with negative probabilities, so catastrophic
    cancellation can push exact-in-theory results a hair past a boundary).
    Values beyond the band indicate a real inference bug — a wrong lineage, a
    corrupted index, inconsistent probabilities — and raise
    :class:`~repro.errors.InferenceError` instead of silently escaping to the
    caller as an out-of-range "probability".
    """
    if -tolerance < value < 1.0 + tolerance:
        return min(1.0, max(0.0, value))
    where = f" while computing {context}" if context else ""
    raise InferenceError(
        f"computed probability {value!r} lies outside [0, 1] beyond the "
        f"{tolerance:g} noise tolerance{where}"
    )


def theorem1_probability(p0_q_or_w: float, p0_w: float) -> float:
    """Evaluate Eq. 5 of Theorem 1 and clamp tiny numerical noise.

    ``P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))``.  The inputs may carry
    floating-point error of either sign (negative probabilities make
    catastrophic cancellation possible in principle), so results that stray a
    hair outside ``[0, 1]`` are clamped; results further out raise
    :class:`~repro.errors.InferenceError` (see :func:`clamp_probability`).
    """
    denominator = 1.0 - p0_w
    if denominator == 0.0:
        raise SchemaError(
            "1 - P0(W) = 0: the MarkoView hard constraints are violated in every world"
        )
    value = (p0_q_or_w - p0_w) / denominator
    return clamp_probability(value, context="Theorem 1 (Eq. 5)")


def answer_tuple_to_boolean(query: UCQ, answer: tuple[Any, ...]) -> UCQ:
    """Bind a query's head to an answer tuple, producing the Boolean query ``Q(ā)``."""
    return query.bind_head(list(answer))
