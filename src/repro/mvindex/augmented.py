"""Augmented OBDDs: per-node probability and reachability annotations.

Following Sect. 4.1 of the paper, an augmented OBDD stores for every node
``u``:

* ``prob_under[u]`` — the probability of the Boolean function rooted at ``u``
  (``p(u)`` in the paper), and
* ``reachability[u]`` — the sum over all root-to-``u`` paths of the product
  of edge probabilities.

With these two quantities the probability of the conjunction of the indexed
formula with a *small* query formula can be computed while touching only the
nodes on levels spanned by the query (Proposition 3): whenever a traversal
reaches a node below the query's last level, ``prob_under`` closes the whole
sub-OBDD in constant time, and ``reachability`` summarises every path above
the query's first level.  Both annotations are derived quantities: they are
*not* serialized with the MV-index artifact but recomputed (in linear time,
deterministically) when an index is restored, which keeps them consistent
with the probabilities supplied at load time — see
:meth:`repro.mvindex.index.MVIndex.from_state`.
"""

from __future__ import annotations

from typing import Mapping

from repro.obdd.manager import ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder


class AugmentedObdd:
    """An OBDD root together with probUnder / reachability annotations."""

    def __init__(
        self,
        manager: ObddManager,
        root: int,
        order: VariableOrder,
        probabilities: Mapping[int, float],
    ) -> None:
        self.manager = manager
        self.root = root
        self.order = order
        #: probability of each tuple variable, keyed by OBDD level.
        self.probability_of_level: dict[int, float] = order.probabilities_by_level(probabilities)
        self.prob_under: dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        self.reachability: dict[int, float] = {}
        self.nodes_by_level: dict[int, list[int]] = {}
        self._annotate()

    # ------------------------------------------------------------------ build
    def _annotate(self) -> None:
        manager = self.manager
        nodes = manager.reachable_nodes(self.root)
        # probUnder: children before parents (process by decreasing level).
        for node in sorted(nodes, key=manager.level, reverse=True):
            probability = self.probability_of_level[manager.level(node)]
            self.prob_under[node] = (1.0 - probability) * self.prob_under[
                manager.low(node)
            ] + probability * self.prob_under[manager.high(node)]
            self.nodes_by_level.setdefault(manager.level(node), []).append(node)
        # reachability: parents before children (process by increasing level).
        reach: dict[int, float] = {node: 0.0 for node in nodes}
        reach[ZERO] = 0.0
        reach[ONE] = 0.0
        if self.root in reach:
            reach[self.root] = 1.0
        for node in sorted(nodes, key=manager.level):
            probability = self.probability_of_level[manager.level(node)]
            mass = reach[node]
            reach[manager.low(node)] = reach.get(manager.low(node), 0.0) + mass * (1.0 - probability)
            reach[manager.high(node)] = reach.get(manager.high(node), 0.0) + mass * probability
        self.reachability = reach

    # -------------------------------------------------------------- interface
    @property
    def probability(self) -> float:
        """Probability of the whole indexed formula."""
        if self.manager.is_terminal(self.root):
            return float(self.root == ONE)
        return self.prob_under[self.root]

    @property
    def size(self) -> int:
        """Number of internal nodes."""
        return self.manager.size(self.root)

    @property
    def width(self) -> int:
        """Maximum number of nodes on a single level."""
        return self.manager.width(self.root)

    def levels(self) -> set[int]:
        """Levels (tuple variables) mentioned by the OBDD."""
        return set(self.nodes_by_level)

    def nodes_at_level(self, level: int) -> list[int]:
        """All nodes labelled with ``level`` (the IntraBddIndex of the paper)."""
        return list(self.nodes_by_level.get(level, ()))

    def conjunction_probability_at_level(self, level: int) -> float:
        """``P(X_level ∧ Φ)`` via the reachability/probUnder shortcut.

        This is the worked example of Sect. 4.1: if ``u1..uc`` are the nodes
        labelled with the variable and ``v1..vc`` their 1-children, then
        ``P(X ∧ Φ) = p · Σ_j reachability(u_j) · probUnder(v_j)``.
        """
        probability = self.probability_of_level[level]
        total = 0.0
        for node in self.nodes_at_level(level):
            total += self.reachability[node] * self.prob_under[self.manager.high(node)]
        return probability * total
