"""Augmented OBDDs: per-node probability and reachability annotations.

Following Sect. 4.1 of the paper, an augmented OBDD stores for every node
``u``:

* ``prob_under[u]`` — the probability of the Boolean function rooted at ``u``
  (``p(u)`` in the paper), and
* ``reachability[u]`` — the sum over all root-to-``u`` paths of the product
  of edge probabilities.

With these two quantities the probability of the conjunction of the indexed
formula with a *small* query formula can be computed while touching only the
nodes on levels spanned by the query (Proposition 3): whenever a traversal
reaches a node below the query's last level, ``prob_under`` closes the whole
sub-OBDD in constant time, and ``reachability`` summarises every path above
the query's first level.  Both annotations are derived quantities: they are
*not* serialized with the MV-index artifact but recomputed (in linear time,
deterministically) when an index is restored, which keeps them consistent
with the probabilities supplied at load time — see
:meth:`repro.mvindex.index.MVIndex.from_state`.

Construction is allocation-lean: only ``prob_under`` and the per-level node
index are computed eagerly (they are what the intersection algorithms need);
``reachability`` is derived lazily on first access, so building an MV-index
over thousands of components never pays for it.  A caller that already holds
a ``level → probability`` map (the MV-index shares one across all of its
components) can pass it as ``probability_of_level`` to skip re-keying the
full probability dictionary per component.
"""

from __future__ import annotations

from typing import Mapping

from repro.obdd.manager import ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder


class AugmentedObdd:
    """An OBDD root together with probUnder / reachability annotations."""

    def __init__(
        self,
        manager: ObddManager,
        root: int,
        order: VariableOrder,
        probabilities: Mapping[int, float],
        probability_of_level: Mapping[int, float] | None = None,
    ) -> None:
        self.manager = manager
        self.root = root
        self.order = order
        #: probability of each tuple variable, keyed by OBDD level.  When no
        #: shared map is supplied, only the levels actually appearing in this
        #: OBDD are keyed (annotating needs nothing else).
        self.probability_of_level: Mapping[int, float]
        self.prob_under: dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        self.nodes_by_level: dict[int, list[int]] = {}
        self._reachability: dict[int, float] | None = None
        self._annotate(probabilities, probability_of_level)

    # ------------------------------------------------------------------ build
    def _annotate(
        self,
        probabilities: Mapping[int, float],
        probability_of_level: Mapping[int, float] | None,
    ) -> None:
        manager = self.manager
        levels = manager._level
        lows = manager._low
        highs = manager._high
        nodes = manager.reachable_nodes(self.root)
        nodes.sort(key=levels.__getitem__, reverse=True)
        self._nodes_descending = nodes
        if probability_of_level is None:
            variable_at = self.order.variable_at
            probability_of_level = {
                level: probabilities[variable_at(level)]
                for level in {levels[node] for node in nodes}
            }
        self.probability_of_level = probability_of_level
        # probUnder: children before parents (process by decreasing level).
        prob_under = self.prob_under
        nodes_by_level = self.nodes_by_level
        for node in nodes:
            level = levels[node]
            probability = probability_of_level[level]
            prob_under[node] = (1.0 - probability) * prob_under[
                lows[node]
            ] + probability * prob_under[highs[node]]
            bucket = nodes_by_level.get(level)
            if bucket is None:
                nodes_by_level[level] = [node]
            else:
                bucket.append(node)

    @property
    def reachability(self) -> dict[int, float]:
        """Path-mass annotation, derived lazily on first access.

        The intersection algorithms never read it (they only need
        ``prob_under``), so index construction skips it; the worked example
        of Sect. 4.1 (:meth:`conjunction_probability_at_level`) triggers the
        one-time linear derivation.
        """
        if self._reachability is None:
            manager = self.manager
            probability_of_level = self.probability_of_level
            # reachability: parents before children (process by increasing level).
            nodes = self._nodes_descending[::-1]
            reach: dict[int, float] = {node: 0.0 for node in nodes}
            reach[ZERO] = 0.0
            reach[ONE] = 0.0
            if self.root in reach:
                reach[self.root] = 1.0
            for node in nodes:
                probability = probability_of_level[manager.level(node)]
                mass = reach[node]
                low, high = manager.low(node), manager.high(node)
                reach[low] = reach.get(low, 0.0) + mass * (1.0 - probability)
                reach[high] = reach.get(high, 0.0) + mass * probability
            self._reachability = reach
        return self._reachability

    # -------------------------------------------------------------- interface
    @property
    def probability(self) -> float:
        """Probability of the whole indexed formula."""
        if self.manager.is_terminal(self.root):
            return float(self.root == ONE)
        return self.prob_under[self.root]

    @property
    def size(self) -> int:
        """Number of internal nodes."""
        return len(self._nodes_descending)

    @property
    def width(self) -> int:
        """Maximum number of nodes on a single level."""
        return max((len(bucket) for bucket in self.nodes_by_level.values()), default=0)

    def levels(self) -> set[int]:
        """Levels (tuple variables) mentioned by the OBDD."""
        return set(self.nodes_by_level)

    def nodes_at_level(self, level: int) -> list[int]:
        """All nodes labelled with ``level`` (the IntraBddIndex of the paper)."""
        return list(self.nodes_by_level.get(level, ()))

    def conjunction_probability_at_level(self, level: int) -> float:
        """``P(X_level ∧ Φ)`` via the reachability/probUnder shortcut.

        This is the worked example of Sect. 4.1: if ``u1..uc`` are the nodes
        labelled with the variable and ``v1..vc`` their 1-children, then
        ``P(X ∧ Φ) = p · Σ_j reachability(u_j) · probUnder(v_j)``.
        """
        probability = self.probability_of_level[level]
        reachability = self.reachability
        total = 0.0
        for node in self.nodes_at_level(level):
            total += reachability[node] * self.prob_under[self.manager.high(node)]
        return probability * total
