"""The MV-index: offline compilation of the view query ``W``.

An MV-index (Sect. 4.1) is a collection of augmented OBDDs — one per
independent component of the lineage of ``W`` — plus two lookup structures:

* the **InterBddIndex** maps a tuple variable to the key of the component
  OBDD containing it, and
* the **IntraBddIndex** maps a tuple variable to the nodes labelled with it
  inside that OBDD.

Each component OBDD stores ``¬W_k`` (the negation is what Theorem 1's
evaluation needs), and the index pre-computes ``P0(¬W_k)`` for every
component so that queries only pay for the components their lineage touches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import CompilationError
from repro.lineage.dnf import DNF
from repro.obdd.construct import connected_components, build_obdd
from repro.obdd.manager import ONE, ObddManager
from repro.obdd.order import VariableOrder
from repro.mvindex.augmented import AugmentedObdd


@dataclass
class IndexedComponent:
    """One component of the MV-index: an augmented OBDD of ``¬W_k``."""

    key: int
    obdd: AugmentedObdd
    min_level: int
    max_level: int
    variables: frozenset[int]

    @property
    def probability_not_w(self) -> float:
        """``P0(¬W_k)`` for this component."""
        return self.obdd.probability


class MVIndex:
    """Offline-compiled index over the MarkoView query ``W``."""

    def __init__(
        self,
        w_lineage: DNF,
        probabilities: Mapping[int, float],
        order: VariableOrder,
        construction: str = "concat",
    ) -> None:
        self.order = order
        self.manager = ObddManager()
        self.probabilities = dict(probabilities)
        self.components: dict[int, IndexedComponent] = {}
        self._component_of_variable: dict[int, int] = {}
        #: Serializes the only query-time mutation of the shared manager (the
        #: interleaved-component fallback), making concurrent reads safe.
        self._lock = threading.RLock()
        self._build(w_lineage, construction)

    # ------------------------------------------------------------------ build
    def _build(self, w_lineage: DNF, construction: str) -> None:
        if w_lineage.is_true:
            raise CompilationError(
                "the view query W is certainly true: every possible world violates a "
                "MarkoView, so the MVDB distribution is undefined (P0(¬W) = 0)"
            )
        for key, clauses in enumerate(connected_components(w_lineage.clauses)):
            component_dnf = DNF(clauses)
            compiled = build_obdd(
                component_dnf, self.order, manager=self.manager, method=construction
            )
            negated_root = self.manager.negate(compiled.root)
            augmented = AugmentedObdd(self.manager, negated_root, self.order, self.probabilities)
            variables = component_dnf.variables()
            levels = [self.order.level_of(v) for v in variables]
            component = IndexedComponent(
                key=key,
                obdd=augmented,
                min_level=min(levels),
                max_level=max(levels),
                variables=variables,
            )
            self.components[key] = component
            for variable in variables:
                self._component_of_variable[variable] = key

    # ---------------------------------------------------------- serialization
    def export_state(self) -> dict[str, Any]:
        """Serialize the index into plain JSON-compatible data.

        The state holds the node tables of every component OBDD (children
        first, see :meth:`repro.obdd.manager.ObddManager.export_nodes`) and,
        per component, its key, root and tuple variables.  The probUnder /
        reachability annotations are *not* stored: they are recomputed in
        linear time by :meth:`from_state`, which guarantees they are always
        consistent with the probabilities supplied at load time.
        """
        ordered = [self.components[key] for key in sorted(self.components)]
        exported = self.manager.export_nodes(component.obdd.root for component in ordered)
        return {
            "nodes": exported["nodes"],
            "components": [
                {
                    "key": component.key,
                    "root": root,
                    "variables": sorted(component.variables),
                }
                for component, root in zip(ordered, exported["roots"])
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, Any],
        probabilities: Mapping[int, float],
        order: VariableOrder,
    ) -> "MVIndex":
        """Rebuild an index from :meth:`export_state` output.

        The restored index is bit-identical to the exported one: node ids,
        component iteration order and therefore every floating-point
        annotation and probability product match the original exactly.
        """
        index = cls.__new__(cls)
        index.order = order
        index.manager = ObddManager.import_nodes(state["nodes"])
        index.probabilities = dict(probabilities)
        index.components = {}
        index._component_of_variable = {}
        index._lock = threading.RLock()
        for entry in state["components"]:
            variables = frozenset(entry["variables"])
            if not variables:
                raise CompilationError("corrupt MV-index state: component without variables")
            augmented = AugmentedObdd(index.manager, entry["root"], order, index.probabilities)
            levels = [order.level_of(variable) for variable in variables]
            component = IndexedComponent(
                key=entry["key"],
                obdd=augmented,
                min_level=min(levels),
                max_level=max(levels),
                variables=variables,
            )
            index.components[component.key] = component
            for variable in variables:
                index._component_of_variable[variable] = component.key
        return index

    # ------------------------------------------------------------- statistics
    @property
    def size(self) -> int:
        """Total number of OBDD nodes across all components."""
        return sum(component.obdd.size for component in self.components.values())

    @property
    def width(self) -> int:
        """Maximum component width."""
        return max((component.obdd.width for component in self.components.values()), default=0)

    def component_count(self) -> int:
        """Number of independent components (augmented OBDDs)."""
        return len(self.components)

    def variables(self) -> set[int]:
        """All tuple variables indexed by W."""
        return set(self._component_of_variable)

    # --------------------------------------------------------------- indexes
    def component_of(self, variable: int) -> int | None:
        """InterBddIndex: the key of the component containing ``variable``."""
        return self._component_of_variable.get(variable)

    def nodes_for(self, variable: int) -> list[int]:
        """IntraBddIndex: OBDD nodes labelled with ``variable`` in its component."""
        key = self.component_of(variable)
        if key is None:
            return []
        return self.components[key].obdd.nodes_at_level(self.order.level_of(variable))

    def touched_components(self, variables: Iterable[int]) -> list[IndexedComponent]:
        """Components containing at least one of the given variables."""
        keys = {
            self._component_of_variable[v]
            for v in variables
            if v in self._component_of_variable
        }
        return [self.components[key] for key in sorted(keys)]

    # ------------------------------------------------------------ probability
    def probability_not_w(self) -> float:
        """``P0(¬W)``: product of the per-component complements."""
        result = 1.0
        for component in self.components.values():
            result *= component.probability_not_w
        return result

    def probability_w(self) -> float:
        """``P0(W)``."""
        return 1.0 - self.probability_not_w()

    def untouched_factor(self, touched_keys: set[int]) -> float:
        """Product of ``P0(¬W_k)`` over the components *not* touched by a query."""
        result = 1.0
        for key, component in self.components.items():
            if key not in touched_keys:
                result *= component.probability_not_w
        return result

    def conjoined_not_w_root(self, components: list[IndexedComponent]) -> int:
        """OBDD root of ``∧_k ¬W_k`` over the given components.

        Components with non-overlapping level ranges are chained by
        concatenation (replace the 1-terminal of the earlier component by the
        root of the next), which is linear; interleaving ranges fall back to
        ``apply``.
        """
        if not components:
            return ONE
        with self._lock:
            ordered = sorted(components, key=lambda c: c.min_level)
            root = ordered[-1].obdd.root
            previous_min = ordered[-1].min_level
            for component in reversed(ordered[:-1]):
                if component.max_level < previous_min:
                    root = self.manager.substitute_terminal(component.obdd.root, ONE, root)
                else:
                    root = self.manager.apply_and(component.obdd.root, root)
                previous_min = min(previous_min, component.min_level)
            return root

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MVIndex({self.component_count()} components, {self.size} nodes, "
            f"width {self.width})"
        )
