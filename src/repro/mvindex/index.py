"""The MV-index: offline compilation of the view query ``W``.

An MV-index (Sect. 4.1) is a collection of augmented OBDDs — one per
independent component of the lineage of ``W`` — plus two lookup structures:

* the **InterBddIndex** maps a tuple variable to the key of the component
  OBDD containing it, and
* the **IntraBddIndex** maps a tuple variable to the nodes labelled with it
  inside that OBDD.

Each component OBDD stores ``¬W_k`` (the negation is what Theorem 1's
evaluation needs), and the index pre-computes ``P0(¬W_k)`` for every
component so that queries only pay for the components their lineage touches.

Construction scales out: because the components are variable-disjoint by
definition, they can be compiled in parallel.  ``MVIndex(..., workers=N)``
shards the component list across a process pool; every worker compiles its
shard in a fresh manager, exports the stable children-first node tables
(:meth:`repro.obdd.manager.ObddManager.export_nodes`), and the parent
replays the shards — in deterministic component order — into the shared
manager via :meth:`repro.obdd.manager.ObddManager.import_into`.  Since the
serialized artifact re-exports canonically from the component roots, a
parallel build produces a byte-identical artifact to the serial one.

An existing index can also grow incrementally, and the growth is split
into two halves so serving reads never wait on a compile:
:meth:`MVIndex.prepare_extend` compiles the new clauses (plus any affected
components) in a *fresh* manager against a snapshot of the index — safe to
run concurrently with queries — and returns a sealed node-block delta;
:meth:`MVIndex.apply_prepared` then imports that block into the shared
manager and swaps the lookup maps, an O(delta) operation that is the only
part a serving write lock needs to cover.  :meth:`MVIndex.extend` is the
single-writer convenience wrapper over the two (see
:meth:`repro.core.engine.MVQueryEngine.extend_views` for the engine-level
workflow).
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import CompilationError
from repro.lineage.dnf import DNF, Clause
from repro.obdd.construct import build_component_root, connected_components
from repro.obdd.manager import ONE, ObddManager
from repro.obdd.order import VariableOrder
from repro.mvindex.augmented import AugmentedObdd


@dataclass
class IndexedComponent:
    """One component of the MV-index: an augmented OBDD of ``¬W_k``."""

    key: int
    obdd: AugmentedObdd
    min_level: int
    max_level: int
    variables: frozenset[int]

    @property
    def probability_not_w(self) -> float:
        """``P0(¬W_k)`` for this component."""
        return self.obdd.probability


def _compile_shard(
    clause_lists: Sequence[Sequence[Clause]],
    order_variables: Sequence[int],
    construction: str,
) -> dict[str, list]:
    """Process-pool worker: compile a shard of components in a fresh manager.

    Returns the stable children-first export of the *negated* component
    roots, in shard order; the parent replays it into the shared manager.
    """
    order = VariableOrder(order_variables)
    manager = ObddManager()
    roots = [
        manager.negate(build_component_root(manager, clauses, order, construction))
        for clauses in clause_lists
    ]
    return manager.export_nodes(roots)


class MVIndex:
    """Offline-compiled index over the MarkoView query ``W``."""

    def __init__(
        self,
        w_lineage: DNF,
        probabilities: Mapping[int, float],
        order: VariableOrder,
        construction: str = "concat",
        workers: int | None = None,
    ) -> None:
        self.order = order
        self.manager = ObddManager()
        self.probabilities = dict(probabilities)
        self.construction = construction
        self.components: dict[int, IndexedComponent] = {}
        self._component_of_variable: dict[int, int] = {}
        #: Shared ``level → probability`` map, computed once and reused by
        #: every component annotation (re-keying the full probability
        #: dictionary per component used to dominate construction time).
        self._probability_of_level: dict[int, float] = order.probabilities_by_level(
            self.probabilities
        )
        #: Serializes the only query-time mutation of the shared manager (the
        #: interleaved-component fallback), making concurrent reads safe.
        self._lock = threading.RLock()
        self._build(w_lineage, construction, workers)

    # ------------------------------------------------------------------ build
    def _build(self, w_lineage: DNF, construction: str, workers: int | None) -> None:
        if w_lineage.is_true:
            raise CompilationError(
                "the view query W is certainly true: every possible world violates a "
                "MarkoView, so the MVDB distribution is undefined (P0(¬W) = 0)"
            )
        components = connected_components(w_lineage.clauses)
        if workers is not None and workers > 1 and len(components) > 1:
            negated_roots = self._compile_components_parallel(
                components, construction, workers
            )
        else:
            manager = self.manager
            order = self.order
            negated_roots = [
                manager.negate(build_component_root(manager, clauses, order, construction))
                for clauses in components
            ]
        for key, (clauses, negated_root) in enumerate(zip(components, negated_roots)):
            self._register(key, frozenset().union(*clauses), negated_root)

    def _compile_components_parallel(
        self,
        components: list[list[Clause]],
        construction: str,
        workers: int,
    ) -> list[int]:
        """Sharded build: compile component shards in a process pool.

        Components are dealt round-robin across ``min(workers, len)`` shards
        for balance; the shard exports are replayed into the shared manager
        in shard order, and the resulting roots are re-assembled into the
        original component order, so the registered index is exactly the one
        a serial build produces (up to internal node ids, which the
        canonical artifact export normalizes away).
        """
        shard_count = min(workers, len(components))
        shard_indices = [
            list(range(start, len(components), shard_count))
            for start in range(shard_count)
        ]
        order_variables = self.order.variables()
        negated_roots: list[int] = [ONE] * len(components)
        with ProcessPoolExecutor(max_workers=shard_count) as pool:
            futures = [
                pool.submit(
                    _compile_shard,
                    [components[index] for index in indices],
                    order_variables,
                    construction,
                )
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                exported = future.result()
                roots = self.manager.import_into(exported["nodes"], exported["roots"])
                for index, root in zip(indices, roots):
                    negated_roots[index] = root
        return negated_roots

    def _register(self, key: int, variables: Iterable[int], negated_root: int) -> None:
        """Wrap a compiled (negated) component root and wire the lookup maps."""
        augmented = AugmentedObdd(
            self.manager,
            negated_root,
            self.order,
            self.probabilities,
            probability_of_level=self._probability_of_level,
        )
        level_of = self.order.level_map
        levels = [level_of[variable] for variable in variables]
        component = IndexedComponent(
            key=key,
            obdd=augmented,
            min_level=min(levels),
            max_level=max(levels),
            variables=frozenset(variables),
        )
        self.components[key] = component
        for variable in variables:
            self._component_of_variable[variable] = key

    # ------------------------------------------------------------ incremental
    def extend(
        self,
        new_lineage: DNF,
        probabilities: Mapping[int, float] | None = None,
        existing_lineage: DNF | None = None,
    ) -> list[int]:
        """Incrementally compile new view clauses into this index.

        ``new_lineage`` holds only the *new* clauses (the engine diffs the
        full lineage of the extended view set against the indexed one).
        Variables unseen so far are appended to the variable order — the
        existing component OBDDs stay valid — and their probabilities are
        supplied via ``probabilities``.  New components that share variables
        with already-indexed components cannot be compiled independently;
        pass ``existing_lineage`` (the clause set the index was built from)
        and the affected components are recompiled together with the new
        clauses.  Returns the keys of the components added.

        The extended index answers queries with the same probabilities as a
        from-scratch build (component OBDDs are canonical per order), but
        the artifact is not guaranteed byte-identical to a rebuild: appended
        variables and recompiled components change level and key layout.

        This is the single-writer convenience path:
        :meth:`prepare_extend` (slow, snapshot-safe) immediately followed by
        :meth:`apply_prepared` (O(delta), under the index lock).  Serving
        callers run the two halves separately so queries keep flowing while
        the delta compiles — no quiescing required.
        """
        if new_lineage.is_true:
            raise CompilationError(
                "the extended view query W is certainly true (P0(¬W) = 0)"
            )
        if new_lineage.is_false or not new_lineage.clauses:
            return []
        new_variables: set[int] = set()
        for clause in new_lineage.clauses:
            new_variables |= clause
        unseen = sorted(v for v in new_variables if v not in self.order)
        supplied = dict(probabilities or {})
        delta = self.prepare_extend(
            new_lineage,
            order_append=unseen,
            probabilities=supplied,
            existing_lineage=existing_lineage,
        )
        return self.apply_prepared(unseen, supplied, delta)

    def prepare_extend(
        self,
        new_lineage: DNF,
        order_append: Sequence[int],
        probabilities: Mapping[int, float],
        existing_lineage: DNF | None = None,
    ) -> dict[str, Any]:
        """Compile the extension delta against a snapshot, off the index lock.

        Validates the extension (probability conflicts, missing
        probabilities for appended variables, ``W`` certainly true), then
        compiles the new clauses — together with every existing component a
        new clause connects to — in a **fresh** manager over the appended
        variable order.  Nothing queries read is mutated; the slow compile
        may therefore run concurrently with serving reads, provided
        *mutations* are serialized externally (the dispatcher's write mutex).

        Returns the sealed delta consumed by :meth:`apply_prepared`:
        ``{"removed_keys", "nodes", "roots", "component_variables"}`` with
        the node block in stable children-first export form — the same
        artifact shape replicas import, which is what makes the fleet's
        compile-once-ship-artifact broadcast byte-identical.
        """
        if new_lineage.is_true:
            raise CompilationError(
                "the extended view query W is certainly true (P0(¬W) = 0)"
            )
        for variable, probability in probabilities.items():
            known = self.probabilities.get(variable)
            if known is not None and known != probability:
                raise CompilationError(
                    f"cannot change the probability of indexed variable "
                    f"{variable}; rebuild the index instead"
                )
        missing = [
            v for v in order_append if v not in self.probabilities and v not in probabilities
        ]
        if missing:
            raise CompilationError(
                f"no probabilities supplied for new variables {missing[:5]}"
            )
        with self._lock:
            order_variables = self.order.variables()
            new_variables: set[int] = set()
            for clause in new_lineage.clauses:
                new_variables |= clause
            pool: list[Clause] = list(new_lineage.clauses)
            affected = {
                self._component_of_variable[variable]
                for variable in new_variables
                if variable in self._component_of_variable
            }
            if affected:
                if existing_lineage is None:
                    raise CompilationError(
                        "new clauses share variables with existing components; pass "
                        "existing_lineage so the affected components can be recompiled"
                    )
                affected_variables: set[int] = set()
                for key in affected:
                    affected_variables |= self.components[key].variables
                pool.extend(
                    clause
                    for clause in existing_lineage.clauses
                    if clause & affected_variables
                )
        seen = set(order_variables)
        extended = VariableOrder(
            order_variables + [v for v in order_append if v not in seen]
        )
        manager = ObddManager()
        components = connected_components(pool)
        roots = [
            manager.negate(
                build_component_root(manager, clauses, extended, self.construction)
            )
            for clauses in components
        ]
        exported = manager.export_nodes(roots)
        return {
            "removed_keys": sorted(affected),
            "nodes": exported["nodes"],
            "roots": exported["roots"],
            "component_variables": [
                sorted(frozenset().union(*clauses)) for clauses in components
            ],
        }

    def apply_prepared(
        self,
        order_append: Sequence[int],
        probabilities: Mapping[int, float],
        delta: Mapping[str, Any] | None,
    ) -> list[int]:
        """Publish a :meth:`prepare_extend` delta: the O(delta) swap.

        Appends the new variables to the order (existing levels are
        untouched, so live component OBDDs stay valid), updates the shared
        level-probability map **in place** (every registered
        :class:`~repro.mvindex.augmented.AugmentedObdd` holds a reference to
        it), drops the recompiled components, imports the pre-compiled node
        block into the shared manager, and registers the new components
        under deterministic keys.  ``delta`` may be ``None`` when a mutation
        appended variables without touching ``W`` (a pure fact append) —
        then only the order and probabilities grow.  Returns the keys of the
        components added.
        """
        with self._lock:
            for variable, probability in probabilities.items():
                known = self.probabilities.get(variable)
                if known is not None and known != probability:
                    raise CompilationError(
                        f"cannot change the probability of indexed variable "
                        f"{variable}; rebuild the index instead"
                    )
            self.probabilities.update(probabilities)
            unseen = [v for v in order_append if v not in self.order]
            if unseen:
                self.order = self.order.extend(unseen)
                for variable in unseen:
                    self._probability_of_level[self.order.level_of(variable)] = (
                        self.probabilities[variable]
                    )
            if delta is None:
                return []
            for key in delta["removed_keys"]:
                component = self.components.pop(key)
                for variable in component.variables:
                    del self._component_of_variable[variable]
            roots = self.manager.import_into(delta["nodes"], delta["roots"])
            next_key = max(self.components, default=-1) + 1
            added: list[int] = []
            for variables, root in zip(delta["component_variables"], roots):
                self._register(next_key, variables, root)
                added.append(next_key)
                next_key += 1
            return added

    # ---------------------------------------------------------- serialization
    def export_state(self) -> dict[str, Any]:
        """Serialize the index into plain JSON-compatible data.

        The state holds the node tables of every component OBDD (children
        first, see :meth:`repro.obdd.manager.ObddManager.export_nodes`) and,
        per component, its key, root and tuple variables.  The probUnder /
        reachability annotations are *not* stored: they are recomputed in
        linear time by :meth:`from_state`, which guarantees they are always
        consistent with the probabilities supplied at load time.
        """
        ordered = [self.components[key] for key in sorted(self.components)]
        exported = self.manager.export_nodes(component.obdd.root for component in ordered)
        return {
            "nodes": exported["nodes"],
            "components": [
                {
                    "key": component.key,
                    "root": root,
                    "variables": sorted(component.variables),
                }
                for component, root in zip(ordered, exported["roots"])
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, Any],
        probabilities: Mapping[int, float],
        order: VariableOrder,
        construction: str = "concat",
    ) -> "MVIndex":
        """Rebuild an index from :meth:`export_state` output.

        The restored index is bit-identical to the exported one: node ids,
        component iteration order and therefore every floating-point
        annotation and probability product match the original exactly.
        """
        index = cls.__new__(cls)
        index.order = order
        index.manager = ObddManager.import_nodes(state["nodes"])
        index.probabilities = dict(probabilities)
        index.construction = construction
        index.components = {}
        index._component_of_variable = {}
        index._probability_of_level = order.probabilities_by_level(index.probabilities)
        index._lock = threading.RLock()
        for entry in state["components"]:
            variables = entry["variables"]
            if not variables:
                raise CompilationError("corrupt MV-index state: component without variables")
            index._register(entry["key"], variables, entry["root"])
        return index

    # ------------------------------------------------------------- statistics
    @property
    def size(self) -> int:
        """Total number of OBDD nodes across all components."""
        return sum(component.obdd.size for component in self.components.values())

    @property
    def width(self) -> int:
        """Maximum component width."""
        return max((component.obdd.width for component in self.components.values()), default=0)

    def component_count(self) -> int:
        """Number of independent components (augmented OBDDs)."""
        return len(self.components)

    def variables(self) -> set[int]:
        """All tuple variables indexed by W."""
        return set(self._component_of_variable)

    # --------------------------------------------------------------- indexes
    def component_of(self, variable: int) -> int | None:
        """InterBddIndex: the key of the component containing ``variable``."""
        return self._component_of_variable.get(variable)

    def nodes_for(self, variable: int) -> list[int]:
        """IntraBddIndex: OBDD nodes labelled with ``variable`` in its component."""
        key = self.component_of(variable)
        if key is None:
            return []
        return self.components[key].obdd.nodes_at_level(self.order.level_of(variable))

    def touched_components(self, variables: Iterable[int]) -> list[IndexedComponent]:
        """Components containing at least one of the given variables."""
        keys = {
            self._component_of_variable[v]
            for v in variables
            if v in self._component_of_variable
        }
        return [self.components[key] for key in sorted(keys)]

    # ------------------------------------------------------------ probability
    def _product_order(self) -> list[IndexedComponent]:
        """Components in canonical product order: by smallest tuple variable.

        Floating-point multiplication is not associative, so the order in
        which the per-component factors are folded determines the result at
        the ulp level.  Component *keys* are an artifact of build history —
        an incremental extend assigns recompiled components fresh keys while
        a from-scratch build numbers them by discovery — so folding in key
        order lets the summation order drift between a fresh build and an
        extended index.  The smallest contained variable is intrinsic to a
        component (the partition into components is a pure function of the
        clause set), so ordering by it makes every product fold identically
        no matter how the index reached its current state.
        """
        return sorted(self.components.values(), key=lambda c: min(c.variables))

    def probability_not_w(self) -> float:
        """``P0(¬W)``: product of the per-component complements."""
        result = 1.0
        for component in self._product_order():
            result *= component.probability_not_w
        return result

    def probability_w(self) -> float:
        """``P0(W)``."""
        return 1.0 - self.probability_not_w()

    def untouched_factor(self, touched_keys: set[int]) -> float:
        """Product of ``P0(¬W_k)`` over the components *not* touched by a query."""
        result = 1.0
        for component in self._product_order():
            if component.key not in touched_keys:
                result *= component.probability_not_w
        return result

    def touched_factor(self, touched_keys: set[int]) -> float:
        """Product of ``P0(¬W_k)`` over the components touched by a query.

        This is the denominator of the *conditional* Theorem 1 ratio: the
        untouched components cancel between ``P0(Q ∧ ¬W)`` and ``P0(¬W)``,
        so dividing the touched-only intersection by this product gives the
        same probability without ever forming the full ``P0(¬W)`` — which
        underflows to 0.0 once the index holds a few thousand components.
        """
        result = 1.0
        for component in self._product_order():
            if component.key in touched_keys:
                result *= component.probability_not_w
        return result

    def touched_factor_of(self, touched_keys: "set[int] | frozenset[int]") -> float:
        """:meth:`touched_factor` without the full-index scan.

        Folds only the touched components, sorted by smallest contained
        variable — the same *relative* order :meth:`_product_order` gives
        them, so the float product is bit-identical to
        :meth:`touched_factor` while the cost drops from O(N log N) over
        all components to O(T log T) over the touched ones.  This is the
        denominator path the skip layer takes once a
        :class:`~repro.mvindex.summaries.SkipAnalysis` has proved the
        touched set.
        """
        components = sorted(
            (self.components[key] for key in touched_keys),
            key=lambda component: min(component.variables),
        )
        result = 1.0
        for component in components:
            result *= component.probability_not_w
        return result

    def conjoined_not_w_root(self, components: list[IndexedComponent]) -> int:
        """OBDD root of ``∧_k ¬W_k`` over the given components.

        Components with non-overlapping level ranges are chained by
        concatenation (replace the 1-terminal of the earlier component by the
        root of the next), which is linear; interleaving ranges are conjoined
        with one multi-way apply instead of pairwise synthesis.
        """
        if not components:
            return ONE
        with self._lock:
            ordered = sorted(components, key=lambda c: c.min_level)
            if all(
                previous.max_level < current.min_level
                for previous, current in zip(ordered, ordered[1:])
            ):
                root = ordered[-1].obdd.root
                for component in reversed(ordered[:-1]):
                    root = self.manager.substitute_terminal(component.obdd.root, ONE, root)
                return root
            return self.manager.apply_and_multi(
                component.obdd.root for component in ordered
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MVIndex({self.component_count()} components, {self.size} nodes, "
            f"width {self.width})"
        )
