"""The MV-index: offline compilation of W and online intersection algorithms."""

from repro.mvindex.augmented import AugmentedObdd
from repro.mvindex.cc_intersect import FlatObdd, cc_mv_intersect
from repro.mvindex.index import IndexedComponent, MVIndex
from repro.mvindex.intersect import (
    IntersectStatistics,
    compile_query_obdd,
    mv_intersect,
    p0_q_or_w,
)
from repro.mvindex.summaries import (
    ComponentSummary,
    SkipAnalysis,
    SummaryStore,
    summarize_component,
)

__all__ = [
    "AugmentedObdd",
    "ComponentSummary",
    "FlatObdd",
    "IndexedComponent",
    "IntersectStatistics",
    "MVIndex",
    "SkipAnalysis",
    "SummaryStore",
    "cc_mv_intersect",
    "compile_query_obdd",
    "mv_intersect",
    "p0_q_or_w",
    "summarize_component",
]
