"""Per-component summaries that prune OBDD synthesis before it starts.

The MV-index partitions the lineage of ``W`` into variable-disjoint
components, and the conditional-ratio path of Theorem 1 already proves that
components a query's lineage does not touch cancel between ``P0(Q ∧ ¬W)``
and ``P0(¬W)``.  What the index could not do so far is *predict* the touched
set before paying for lineage extraction and the per-answer component scan.
This module closes that gap with three per-component summaries, computed at
build/extend time from the tuples behind the component's variables:

* a **relation signature** — the set of relations the component's tuples
  live in;
* a **constant-position value sketch** — the set of
  ``(relation, position, bucket)`` triples over the component's tuple rows,
  with :func:`value_bucket` hashing each attribute value into one of
  ``SKETCH_BUCKETS`` buckets;
* a **variable reachability bitmap** plus min/max variable-range bounds —
  one big integer with bit ``v`` set for every tuple variable ``v`` in the
  component (the delta-overlap test of the subscription service folds over
  the same bitmaps).

The store additionally maintains *inverted* bitmap indexes (one big integer
per relation and per sketch key, with bit ``k`` set for component key ``k``)
so that :meth:`SummaryStore.analyze` matches a whole query against the index
with a handful of integer ANDs/ORs instead of a per-component loop.

Soundness.  A query answer's lineage can only contain a tuple that some
query atom produced, and a tuple produced by an atom (a) lives in the atom's
relation and (b) carries the atom's constants at their positions (join
semantics).  Every such tuple's component therefore survives the relation
signature and every constant-position sketch probe — bucket collisions only
ever *keep* irrelevant components, never drop relevant ones, and comparisons
are ignored entirely (again a superset).  Hence the relevant set returned by
:meth:`SummaryStore.analyze` is a superset of the touched set of every
answer, which is exactly the premise under which the Theorem-1 cancellation
makes restricting the denominator fold (and the per-answer component work)
to the relevant set bit-identical to the unrestricted evaluation.

Everything in here is integers, frozensets and sorted lists — no floats —
so the summaries are bit-stable across export/import and an O(delta)
extend/append maintenance pass produces exactly the store a fresh scan
would.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ArtifactError
from repro.query.terms import is_variable
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import UCQ, as_ucq

#: Number of hash buckets per (relation, position) value sketch.  64 keeps
#: the sketch small while making a false-positive probe retain at most
#: ~1/64 of the per-relation components on selective constants.
SKETCH_BUCKETS = 64

#: Version tag of the exported summary block inside the serving artifact.
SUMMARIES_VERSION = 1


def value_bucket(value: Any) -> int:
    """Deterministic bucket of one attribute value.

    Numeric values are canonicalised through ``float`` first because the
    relational layer matches constants with ``==`` and Python deems
    ``1 == 1.0 == True``: equal-under-join values must land in the same
    bucket or a skip could drop a touched component.  Collisions between
    *unequal* values are harmless (they only retain extra components).
    """
    if isinstance(value, (bool, int, float)):
        try:
            token = repr(float(value))
        except OverflowError:  # ints beyond float range hash as themselves
            token = f"int:{value!r}"
    else:
        token = f"{type(value).__name__}:{value!r}"
    return zlib.crc32(token.encode("utf-8")) % SKETCH_BUCKETS


def variables_bitmap(variables: Iterable[int]) -> int:
    """One big integer with bit ``v`` set for every variable ``v``."""
    bitmap = 0
    for variable in variables:
        bitmap |= 1 << variable
    return bitmap


def bitmap_to_hex(bitmap: int) -> str:
    """Compact, bit-stable JSON encoding of a (possibly huge) bitmap."""
    return format(bitmap, "x")


def bitmap_from_hex(text: str) -> int:
    return int(text, 16) if text else 0


def decode_bitmap(bitmap: int) -> list[int]:
    """The set bit positions of a bitmap, in increasing order."""
    positions: list[int] = []
    while bitmap:
        low = bitmap & -bitmap
        positions.append(low.bit_length() - 1)
        bitmap ^= low
    return positions


@dataclass(frozen=True)
class ComponentSummary:
    """The skip-relevant fingerprint of one MV-index component."""

    key: int
    relations: frozenset[str]
    sketch_keys: frozenset[tuple[str, int, int]]
    variables_bitmap: int
    min_variable: int
    max_variable: int


def summarize_component(
    key: int,
    variables: Iterable[int],
    tuple_of: Callable[[int], tuple[str, Sequence[Any]]],
) -> ComponentSummary:
    """Summarise one component by resolving its variables to their tuples.

    ``tuple_of`` is :meth:`repro.indb.database.TupleIndependentDatabase.tuple_of`
    — the variable → ``(relation, row)`` resolver.  Only set/bitmap unions
    are involved, so the result is independent of the iteration order of
    ``variables`` (which is what makes O(delta) maintenance bit-equal to a
    fresh scan).
    """
    relations: set[str] = set()
    sketch: set[tuple[str, int, int]] = set()
    bitmap = 0
    low = high = None
    for variable in variables:
        relation, row = tuple_of(variable)
        relations.add(relation)
        bitmap |= 1 << variable
        low = variable if low is None else min(low, variable)
        high = variable if high is None else max(high, variable)
        for position, value in enumerate(row):
            sketch.add((relation, position, value_bucket(value)))
    if low is None or high is None:
        raise ArtifactError(f"component {key} has no variables to summarise")
    return ComponentSummary(
        key=key,
        relations=frozenset(relations),
        sketch_keys=frozenset(sketch),
        variables_bitmap=bitmap,
        min_variable=low,
        max_variable=high,
    )


@dataclass(frozen=True)
class SkipAnalysis:
    """The result of matching a query (or batch) against the summaries.

    ``relevant_keys`` is the provably-relevant component set: a superset of
    the touched set of every answer of every query the analysis covered.
    ``skipped_count`` components are pruned before any lineage or OBDD work
    happens on them.
    """

    relevant_keys: frozenset[int]
    relevant_bitmap: int
    skipped_count: int
    elapsed_ms: float

    @property
    def relevant_count(self) -> int:
        return len(self.relevant_keys)


class SummaryStore:
    """All component summaries of one MV-index, plus inverted bitmap indexes.

    Not thread-safe on its own: mutations happen only inside the engine's
    publish path (the dispatcher's single-writer mutex), exactly where the
    index itself is mutated; reads are plain dict lookups on immutable
    values, safe under the same epoch discipline as the index.
    """

    def __init__(self) -> None:
        self._summaries: dict[int, ComponentSummary] = {}
        #: relation name -> bitmap of component keys containing that relation.
        self._relation_bitmap: dict[str, int] = {}
        #: (relation, position, bucket) -> bitmap of component keys.
        self._sketch_bitmap: dict[tuple[str, int, int], int] = {}
        #: bitmap of every registered component key.
        self._all_keys_bitmap = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, key: int) -> bool:
        return key in self._summaries

    def summary_of(self, key: int) -> ComponentSummary:
        return self._summaries[key]

    def keys(self) -> list[int]:
        return sorted(self._summaries)

    # -------------------------------------------------------------- mutation
    def add(self, summary: ComponentSummary) -> None:
        """Register one component summary (O(summary))."""
        if summary.key in self._summaries:
            raise ArtifactError(f"component {summary.key} is already summarised")
        bit = 1 << summary.key
        self._summaries[summary.key] = summary
        self._all_keys_bitmap |= bit
        for relation in summary.relations:
            self._relation_bitmap[relation] = self._relation_bitmap.get(relation, 0) | bit
        for sketch_key in summary.sketch_keys:
            self._sketch_bitmap[sketch_key] = self._sketch_bitmap.get(sketch_key, 0) | bit

    def discard(self, key: int) -> None:
        """Drop one component summary (O(summary); unknown keys are a no-op).

        The stored summary records exactly which inverted entries carry its
        bit, so removal never scans the full store.
        """
        summary = self._summaries.pop(key, None)
        if summary is None:
            return
        mask = ~(1 << key)
        self._all_keys_bitmap &= mask
        for relation in summary.relations:
            remaining = self._relation_bitmap[relation] & mask
            if remaining:
                self._relation_bitmap[relation] = remaining
            else:
                del self._relation_bitmap[relation]
        for sketch_key in summary.sketch_keys:
            remaining = self._sketch_bitmap[sketch_key] & mask
            if remaining:
                self._sketch_bitmap[sketch_key] = remaining
            else:
                del self._sketch_bitmap[sketch_key]

    # -------------------------------------------------------------- analysis
    def analyze(self, ucqs: "UCQ | ConjunctiveQuery | Iterable[UCQ]") -> SkipAnalysis:
        """Match a query (or a batch of queries) against the summaries.

        One mask per atom — the relation signature ANDed with every
        constant-position sketch probe — ORed across the atoms of every
        disjunct of every query.  Comparisons are deliberately ignored and
        deterministic relations have no inverted entry, both of which only
        widen the relevant set (soundness is a superset argument; see the
        module docstring).
        """
        start = time.perf_counter()
        if isinstance(ucqs, (UCQ, ConjunctiveQuery)):
            queries = [as_ucq(ucqs)]
        else:
            queries = [as_ucq(query) for query in ucqs]
        relevant = 0
        relation_bitmap = self._relation_bitmap
        sketch_bitmap = self._sketch_bitmap
        for ucq in queries:
            for cq in ucq.disjuncts:
                for atom in cq.atoms:
                    mask = relation_bitmap.get(atom.relation, 0)
                    if not mask:
                        continue
                    for position, term in enumerate(atom.terms):
                        if is_variable(term):
                            continue
                        mask &= sketch_bitmap.get(
                            (atom.relation, position, value_bucket(term.value)), 0
                        )
                        if not mask:
                            break
                    relevant |= mask
        relevant &= self._all_keys_bitmap
        relevant_keys = frozenset(decode_bitmap(relevant))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return SkipAnalysis(
            relevant_keys=relevant_keys,
            relevant_bitmap=relevant,
            skipped_count=len(self._summaries) - len(relevant_keys),
            elapsed_ms=elapsed_ms,
        )

    # --------------------------------------------------------- serialization
    def export_state(self) -> dict[str, Any]:
        """Plain JSON-compatible, deterministically ordered state.

        Sorted keys and sorted set renderings make the export a pure
        function of the summarised content — the serving artifact's
        byte-identity contract (gzip with zeroed mtime) depends on it.
        """
        return {
            "version": SUMMARIES_VERSION,
            "buckets": SKETCH_BUCKETS,
            "components": [
                {
                    "key": summary.key,
                    "relations": sorted(summary.relations),
                    "sketch": sorted(list(item) for item in summary.sketch_keys),
                    "variables": bitmap_to_hex(summary.variables_bitmap),
                    "min_variable": summary.min_variable,
                    "max_variable": summary.max_variable,
                }
                for summary in (
                    self._summaries[key] for key in sorted(self._summaries)
                )
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SummaryStore":
        """Rebuild a store from :meth:`export_state` output (bit-identical)."""
        version = state.get("version")
        if version != SUMMARIES_VERSION:
            raise ArtifactError(
                f"unsupported summary version {version!r} (expected {SUMMARIES_VERSION})"
            )
        if state.get("buckets") != SKETCH_BUCKETS:
            raise ArtifactError(
                f"summary sketch bucket count {state.get('buckets')!r} does not match "
                f"this build ({SKETCH_BUCKETS}); recompute the summaries"
            )
        store = cls()
        for entry in state["components"]:
            store.add(
                ComponentSummary(
                    key=int(entry["key"]),
                    relations=frozenset(entry["relations"]),
                    sketch_keys=frozenset(
                        (str(relation), int(position), int(bucket))
                        for relation, position, bucket in entry["sketch"]
                    ),
                    variables_bitmap=bitmap_from_hex(entry["variables"]),
                    min_variable=int(entry["min_variable"]),
                    max_variable=int(entry["max_variable"]),
                )
            )
        return store

    @classmethod
    def from_index(
        cls,
        index: Any,
        tuple_of: Callable[[int], tuple[str, Sequence[Any]]],
    ) -> "SummaryStore":
        """Fresh scan over every component of an :class:`MVIndex`."""
        store = cls()
        for key in sorted(index.components):
            store.add(
                summarize_component(key, index.components[key].variables, tuple_of)
            )
        return store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SummaryStore({len(self._summaries)} components, "
            f"{len(self._relation_bitmap)} relations, "
            f"{len(self._sketch_bitmap)} sketch keys)"
        )


__all__ = [
    "SKETCH_BUCKETS",
    "SUMMARIES_VERSION",
    "ComponentSummary",
    "SkipAnalysis",
    "SummaryStore",
    "bitmap_from_hex",
    "bitmap_to_hex",
    "decode_bitmap",
    "summarize_component",
    "value_bucket",
    "variables_bitmap",
]
