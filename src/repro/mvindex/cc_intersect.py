"""CC-MVIntersect: the cache-conscious variant of MVIntersect.

The paper's CC-MVIntersect (Sect. 4.3) replaces the pointer-based BDD node
representation with a flat vector sorted by the DFS order of the OBDD, so
that the traversal touches memory sequentially.  The Python analogue of that
optimisation is to re-encode every component OBDD of the index — once, when
it is first needed — into dense parallel arrays (level, 0-child, 1-child,
probUnder), and to drive the online traversal with an explicit stack over
small integer indices and a flat memo keyed by packed integers, instead of
recursive calls over manager nodes and tuple-keyed dictionaries.  The
algorithmic behaviour (what is traversed, which shortcuts apply) is exactly
that of :func:`repro.mvindex.intersect.mv_intersect`; only the constant
factors differ, which is what Fig. 9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.lineage.dnf import DNF
from repro.mvindex.augmented import AugmentedObdd
from repro.mvindex.index import MVIndex
from repro.mvindex.intersect import IntersectStatistics, compile_query_obdd
from repro.mvindex.summaries import SkipAnalysis
from repro.obdd.manager import ONE, ZERO, ObddManager

#: Flat-array encoding of the two terminals.
_FLAT_ZERO = 0
_FLAT_ONE = 1
#: Level assigned to the terminals in the flat encoding (larger than any variable).
_FLAT_TERMINAL_LEVEL = 1 << 60


@dataclass
class FlatObdd:
    """A single OBDD re-encoded as dense arrays in DFS order.

    Index 0 and 1 are the terminals; internal nodes start at index 2 and are
    numbered in depth-first order from the root, so a top-down traversal
    walks the arrays mostly sequentially.
    """

    levels: list[int]
    lows: list[int]
    highs: list[int]
    prob_under: list[float]
    root: int

    @staticmethod
    def from_manager(
        manager: ObddManager, root: int, prob_under: Mapping[int, float] | None = None
    ) -> "FlatObdd":
        nodes = manager.reachable_nodes(root)
        position = {ZERO: _FLAT_ZERO, ONE: _FLAT_ONE}
        for offset, node in enumerate(nodes):
            position[node] = offset + 2
        count = len(nodes) + 2
        levels = [_FLAT_TERMINAL_LEVEL] * count
        lows = [0, 1] + [0] * len(nodes)
        highs = [0, 1] + [0] * len(nodes)
        under = [0.0, 1.0] + [0.0] * len(nodes)
        for node in nodes:
            index = position[node]
            levels[index] = manager.level(node)
            lows[index] = position[manager.low(node)]
            highs[index] = position[manager.high(node)]
            if prob_under is not None:
                under[index] = prob_under[node]
        flat_root = position.get(root, _FLAT_ONE if root == ONE else _FLAT_ZERO)
        return FlatObdd(levels, lows, highs, under, flat_root)

    @staticmethod
    def from_augmented(augmented: AugmentedObdd) -> "FlatObdd":
        """Flatten an augmented OBDD, carrying its probUnder annotations over."""
        return FlatObdd.from_manager(augmented.manager, augmented.root, augmented.prob_under)

    def __len__(self) -> int:
        return len(self.levels)


def _flat_component(component) -> FlatObdd:
    """The cached flat encoding of one index component (built on first use)."""
    cached = getattr(component, "_flat", None)
    if cached is None:
        cached = FlatObdd.from_augmented(component.obdd)
        component._flat = cached
    return cached


def prewarm_flat_encodings(index: MVIndex) -> None:
    """Build the flat encoding of every component of ``index`` eagerly.

    The flat arrays are normally built lazily the first time a component is
    touched, which is a (benign) write to shared state.  Serving layers that
    want the index to be strictly read-only during concurrent queries call
    this once up front (see :meth:`repro.serving.session.QuerySession.warm`).
    """
    for component in index.components.values():
        _flat_component(component)


def cc_mv_intersect(
    index: MVIndex,
    query_lineage: DNF,
    probabilities: Mapping[int, float] | None = None,
    statistics: IntersectStatistics | None = None,
    include_untouched: bool = True,
    skip: SkipAnalysis | None = None,
) -> float:
    """``P0(Q ∧ ¬W)`` by the cache-conscious flat-array traversal.

    With ``include_untouched=False`` the product over components the query
    does not touch is left out — the caller divides by the touched-only
    ``P0(¬W_k)`` product instead, which keeps the Theorem 1 ratio finite on
    indexes with thousands of components (see :meth:`MVIndex.touched_factor`).
    ``skip`` threads a pre-computed
    :class:`~repro.mvindex.summaries.SkipAnalysis` through, enabling the
    index-order reuse fast path of :func:`compile_query_obdd`.
    """
    probabilities = probabilities or {}
    stats = statistics if statistics is not None else IntersectStatistics()

    if query_lineage.is_false:
        return 0.0
    if query_lineage.is_true:
        return index.probability_not_w() if include_untouched else 1.0

    query, order = compile_query_obdd(index, query_lineage, probabilities, skip=skip)
    touched = index.touched_components(query_lineage.variables())
    touched_keys = {component.key for component in touched}
    stats.touched_components = len(touched)
    stats.untouched_components = index.component_count() - len(touched)
    stats.query_obdd_nodes = max(0, len(query.prob_under) - 2)
    if skip is not None:
        stats.skipped_components = skip.skipped_count
    untouched = index.untouched_factor(touched_keys) if include_untouched else 1.0
    if not touched:
        return query.probability * untouched

    ordered = sorted(touched, key=lambda c: c.min_level)
    interleaved = any(
        current.min_level <= previous.max_level
        for previous, current in zip(ordered, ordered[1:])
    )
    if interleaved:
        # Rare case (components overlap in the variable order): delegate to the
        # pointer-based algorithm, which has a synthesised fallback.
        from repro.mvindex.intersect import mv_intersect

        return mv_intersect(
            index,
            query_lineage,
            probabilities,
            statistics=stats,
            include_untouched=include_untouched,
            skip=skip,
        )

    flat_query = FlatObdd.from_manager(query.manager, query.root, query.prob_under)
    chain = [_flat_component(component) for component in ordered]
    suffix = [1.0] * (len(ordered) + 1)
    for position in range(len(ordered) - 1, -1, -1):
        suffix[position] = ordered[position].probability_not_w * suffix[position + 1]

    if skip is not None:
        # The traversal only probes levels of nodes in the query OBDD and
        # the touched chain, i.e. levels of the query lineage's and the
        # touched components' variables — fill just those slots instead of
        # scanning every probabilistic variable per answer.  Each filled
        # slot holds exactly the value the full scan would store (same
        # override precedence), so the traversal arithmetic is
        # bit-identical.
        needed = set(query_lineage.variables())
        for component in ordered:
            needed.update(component.variables)
        needed_levels = [order.level_of(v) for v in needed if v in order]
        max_level = max(needed_levels, default=-1)
        probability_of_level = [0.0] * (max_level + 2)
        for variable in needed:
            if variable not in order:
                continue
            value = probabilities.get(variable)
            if value is None:
                value = index.probabilities.get(variable, 0.0)
            probability_of_level[order.level_of(variable)] = value
    else:
        merged_probabilities = dict(index.probabilities)
        merged_probabilities.update(probabilities)
        max_level = max(
            (order.level_of(v) for v in merged_probabilities if v in order), default=-1
        )
        probability_of_level = [0.0] * (max_level + 2)
        for variable, value in merged_probabilities.items():
            if variable in order:
                probability_of_level[order.level_of(variable)] = value

    chain_count = len(chain)
    q_levels, q_lows, q_highs, q_under = (
        flat_query.levels,
        flat_query.lows,
        flat_query.highs,
        flat_query.prob_under,
    )
    # Memo keys pack (chain index, component node, query node) into one integer:
    # nodes of component i are offset by the total size of earlier components.
    q_span = len(q_levels)
    offsets = [0] * chain_count
    running = 0
    for position, component in enumerate(chain):
        offsets[position] = running
        running += len(component.levels)

    def resolve(q_node: int, chain_index: int, w_node: int):
        """Normalise a state: advance past exhausted components, detect leaves."""
        while True:
            if q_node == _FLAT_ZERO or w_node == _FLAT_ZERO:
                return 0.0
            if w_node == _FLAT_ONE:
                if chain_index + 1 < chain_count:
                    chain_index += 1
                    w_node = chain[chain_index].root
                    continue
                return q_under[q_node] if q_node != _FLAT_ONE else 1.0
            if q_node == _FLAT_ONE:
                return chain[chain_index].prob_under[w_node] * suffix[chain_index + 1]
            return (q_node, chain_index, w_node)

    memo: dict[int, float] = {}
    initial = resolve(flat_query.root, 0, chain[0].root)
    if isinstance(initial, float):
        return initial * untouched

    stack: list[tuple[int, int, int]] = [initial]
    while stack:
        q_node, chain_index, w_node = stack[-1]
        component = chain[chain_index]
        key = (offsets[chain_index] + w_node) * q_span + q_node
        if key in memo:
            stack.pop()
            continue
        q_level = q_levels[q_node]
        w_level = component.levels[w_node]
        if q_level <= w_level:
            level = q_level
            q_low, q_high = q_lows[q_node], q_highs[q_node]
        else:
            level = w_level
            q_low, q_high = q_node, q_node
        if w_level <= q_level:
            w_low, w_high = component.lows[w_node], component.highs[w_node]
        else:
            w_low, w_high = w_node, w_node
        low_state = resolve(q_low, chain_index, w_low)
        high_state = resolve(q_high, chain_index, w_high)
        pending = []
        low_key = high_key = -1
        if type(low_state) is not float:
            low_key = (offsets[low_state[1]] + low_state[2]) * q_span + low_state[0]
            if low_key not in memo:
                pending.append(low_state)
        if type(high_state) is not float:
            high_key = (offsets[high_state[1]] + high_state[2]) * q_span + high_state[0]
            if high_key not in memo:
                pending.append(high_state)
        if pending:
            stack.extend(pending)
            continue
        low_value = low_state if type(low_state) is float else memo[low_key]
        high_value = high_state if type(high_state) is float else memo[high_key]
        probability = probability_of_level[level]
        memo[key] = (1.0 - probability) * low_value + probability * high_value
        stats.pair_expansions += 1
        stack.pop()

    initial_key = (offsets[initial[1]] + initial[2]) * q_span + initial[0]
    return memo[initial_key] * untouched
