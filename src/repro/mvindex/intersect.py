"""MVIntersect: online evaluation of ``P0(Q ∧ ¬W)`` against an MV-index.

Given a query lineage ``Φ_Q`` (small) and the MV-index of ``W`` (large), the
numerator of Theorem 1, ``P0(Q ∨ W) − P0(W) = P0(Q ∧ ¬W)``, is computed by a
top-down simultaneous traversal of the query OBDD and the indexed component
OBDDs of ``¬W``:

* components of ``W`` not touched by the query contribute their pre-computed
  ``P0(¬W_k)`` as a multiplicative factor (this is why typical queries touch
  only a small fraction of the index);
* inside the touched region the traversal is a memoized pairwise Shannon
  expansion; whenever the query OBDD reaches its 1-terminal, the pre-computed
  ``probUnder`` annotation of the index node closes the remaining sub-OBDD in
  constant time (the augmentation of Sect. 4.1).

Every traversal here is *iterative* — an explicit stack over
``(query node, chain position, index node)`` states — so arbitrarily deep
index OBDDs are evaluated without recursion.  The old implementation
recursed to the depth of the OBDDs and had to raise (and guard, across
threads) the process-global ``sys.setrecursionlimit``; the iterative kernel
made all of that machinery obsolete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.mvindex.augmented import AugmentedObdd
from repro.mvindex.index import IndexedComponent, MVIndex
from repro.mvindex.summaries import SkipAnalysis
from repro.obdd.construct import build_obdd
from repro.obdd.manager import ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder


@dataclass
class IntersectStatistics:
    """Work counters reported by an intersection run (used by benchmarks)."""

    touched_components: int = 0
    untouched_components: int = 0
    pair_expansions: int = 0
    #: Nodes of the query OBDD compiled for the traversal (also filled by the
    #: from-scratch ``obdd`` method with the size of its ``Q ∨ W`` OBDD).
    query_obdd_nodes: int = 0
    #: Components a :class:`~repro.mvindex.summaries.SkipAnalysis` pruned
    #: before any lineage or OBDD work touched them (0 without skipping).
    skipped_components: int = 0


class _ChainView:
    """A virtual concatenation of touched component OBDDs of ``¬W``.

    Components are ordered by level range; the conjunction ``∧_k ¬W_k`` is
    never materialised — reaching the 1-terminal of one component simply
    advances the traversal to the next component's root.
    """

    def __init__(self, components: list[IndexedComponent]) -> None:
        self.components = sorted(components, key=lambda c: c.min_level)
        for previous, current in zip(self.components, self.components[1:]):
            if current.min_level <= previous.max_level:
                raise InferenceError(
                    "touched MV-index components have interleaving level ranges; "
                    "use the synthesised fallback"
                )
        # Suffix products of P0(¬W_k): suffix[i] = Π_{j ≥ i} P0(¬W_j).
        self.suffix = [1.0] * (len(self.components) + 1)
        for index in range(len(self.components) - 1, -1, -1):
            self.suffix[index] = (
                self.components[index].probability_not_w * self.suffix[index + 1]
            )

    def __len__(self) -> int:
        return len(self.components)

    def obdd(self, index: int) -> AugmentedObdd:
        return self.components[index].obdd


def compile_query_obdd(
    index: MVIndex,
    query_lineage: DNF,
    probabilities: Mapping[int, float],
    skip: SkipAnalysis | None = None,
) -> tuple[AugmentedObdd, VariableOrder]:
    """Compile the query lineage under the index order (free variables appended).

    With a ``skip`` analysis in hand the common case — every lineage
    variable already indexed — reuses ``index.order`` directly instead of
    copying it into an extended order.  The reused order assigns every
    variable the same level the extended one would, so the compiled OBDD
    and all downstream float products are bit-identical.
    """
    if skip is not None:
        variables = query_lineage.variables()
        if all(variable in index.order for variable in variables):
            order = index.order
        else:
            order = index.order.extend(sorted(variables))
        # The annotation only keys levels of the compiled OBDD, i.e. the
        # lineage's own variables — merge just those instead of copying the
        # full per-database probability dictionary for every answer.  Each
        # entry is the exact value the full merge would hold (same override
        # precedence), so the annotations are bit-identical.
        merged_probabilities = {}
        for variable in variables:
            value = probabilities.get(variable)
            if value is None:
                value = index.probabilities.get(variable)
            if value is not None:
                merged_probabilities[variable] = value
    else:
        order = index.order.extend(sorted(query_lineage.variables()))
        merged_probabilities = dict(index.probabilities)
        merged_probabilities.update(probabilities)
    manager = ObddManager()
    compiled = build_obdd(query_lineage, order, manager=manager, method="concat")
    augmented = AugmentedObdd(manager, compiled.root, order, merged_probabilities)
    return augmented, order


def mv_intersect(
    index: MVIndex,
    query_lineage: DNF,
    probabilities: Mapping[int, float] | None = None,
    statistics: IntersectStatistics | None = None,
    include_untouched: bool = True,
    skip: SkipAnalysis | None = None,
) -> float:
    """``P0(Q ∧ ¬W)`` by the (pointer-based) MVIntersect algorithm.

    ``include_untouched=False`` omits the product over components the query
    does not touch (see :func:`repro.mvindex.cc_intersect.cc_mv_intersect`).
    ``skip`` threads a pre-computed
    :class:`~repro.mvindex.summaries.SkipAnalysis` through: it enables the
    index-order reuse fast path of :func:`compile_query_obdd` and fills the
    ``skipped_components`` work counter.
    """
    probabilities = probabilities or {}
    stats = statistics if statistics is not None else IntersectStatistics()

    if query_lineage.is_false:
        return 0.0
    if query_lineage.is_true:
        return index.probability_not_w() if include_untouched else 1.0

    query, order = compile_query_obdd(index, query_lineage, probabilities, skip=skip)
    touched = index.touched_components(query_lineage.variables())
    touched_keys = {component.key for component in touched}
    stats.touched_components = len(touched)
    stats.untouched_components = index.component_count() - len(touched)
    stats.query_obdd_nodes = max(0, len(query.prob_under) - 2)
    if skip is not None:
        stats.skipped_components = skip.skipped_count
    untouched = index.untouched_factor(touched_keys) if include_untouched else 1.0

    if not touched:
        return query.probability * untouched

    try:
        chain = _ChainView(touched)
    except InferenceError:
        # Touched components interleave in the variable order: conjoin them
        # explicitly and fall back to a plain pairwise traversal.
        return _synthesised_intersect(index, query, touched, probabilities) * untouched
    w_manager = index.manager
    q_manager = query.manager
    if skip is not None:
        # The traversal only probes levels of nodes in the query OBDD and
        # the touched chain, and those nodes carry exactly the query
        # lineage's and the touched components' variables — key just them
        # instead of scanning every probabilistic variable per answer.
        # Values match the full scan entry-for-entry (same precedence), so
        # the Shannon products are bit-identical.
        needed = set(query_lineage.variables())
        for component in touched:
            needed.update(component.variables)
        probability_of_level = {}
        for variable in needed:
            if variable not in order:
                continue
            value = probabilities.get(variable)
            if value is None:
                value = index.probabilities.get(variable, 0.0)
            probability_of_level[order.level_of(variable)] = value
    else:
        merged_probabilities = dict(index.probabilities)
        merged_probabilities.update(probabilities)
        probability_of_level = {
            order.level_of(variable): value
            for variable, value in merged_probabilities.items()
            if variable in order
        }

    chain_count = len(chain)
    chain_roots = [chain.obdd(position).root for position in range(chain_count)]
    chain_under = [chain.obdd(position).prob_under for position in range(chain_count)]
    suffix = chain.suffix
    q_under = query.prob_under

    def resolve(q_node: int, chain_index: int, w_node: int):
        """Normalise a state: advance past exhausted components, detect leaves."""
        while True:
            if q_node == ZERO or w_node == ZERO:
                return 0.0
            if w_node == ONE:
                if chain_index + 1 < chain_count:
                    chain_index += 1
                    w_node = chain_roots[chain_index]
                    continue
                return q_under[q_node] if q_node != ONE else 1.0
            if q_node == ONE:
                # The augmentation shortcut: close the remaining index
                # sub-OBDD and the untouched suffix of the chain with
                # pre-computed quantities.
                return chain_under[chain_index][w_node] * suffix[chain_index + 1]
            return (q_node, chain_index, w_node)

    memo: dict[tuple[int, int, int], float] = {}
    memo_get = memo.get
    initial = resolve(query.root, 0, chain_roots[0])
    if type(initial) is float:
        return initial * untouched

    expansions = 0
    stack: list[tuple[int, int, int]] = [initial]
    while stack:
        state = stack[-1]
        if state in memo:
            stack.pop()
            continue
        q_node, chain_index, w_node = state
        q_level = q_manager.level(q_node)
        w_level = w_manager.level(w_node)
        if q_level <= w_level:
            level = q_level
            q_low, q_high = q_manager.low(q_node), q_manager.high(q_node)
        else:
            level = w_level
            q_low, q_high = q_node, q_node
        if w_level <= q_level:
            w_low, w_high = w_manager.low(w_node), w_manager.high(w_node)
        else:
            w_low, w_high = w_node, w_node
        low_state = resolve(q_low, chain_index, w_low)
        high_state = resolve(q_high, chain_index, w_high)
        pending = False
        if type(low_state) is not float:
            low_value = memo_get(low_state)
            if low_value is None:
                stack.append(low_state)
                pending = True
            else:
                low_state = low_value
        if type(high_state) is not float:
            high_value = memo_get(high_state)
            if high_value is None:
                stack.append(high_state)
                pending = True
            else:
                high_state = high_value
        if pending:
            continue
        probability = probability_of_level[level]
        memo[state] = (1.0 - probability) * low_state + probability * high_state
        expansions += 1
        stack.pop()

    stats.pair_expansions += expansions
    return memo[initial] * untouched


def _synthesised_intersect(
    index: MVIndex,
    query: AugmentedObdd,
    touched: list[IndexedComponent],
    probabilities: Mapping[int, float],
) -> float:
    """Fallback for interleaving components: conjoin ``¬W_k`` explicitly.

    The conjunction of the touched components is materialised with one
    multi-way apply (:meth:`repro.mvindex.index.MVIndex.conjoined_not_w_root`),
    ``probUnder`` is computed for it, and the standard pairwise Shannon
    traversal — iterative, like everything else — is run against the query
    OBDD.
    """
    w_manager = index.manager
    q_manager = query.manager
    w_root = index.conjoined_not_w_root(touched)
    merged_probabilities = dict(index.probabilities)
    merged_probabilities.update(probabilities)
    probability_of_level = {
        query.order.level_of(variable): value
        for variable, value in merged_probabilities.items()
        if variable in query.order
    }

    prob_under = w_manager.prob_under_map(w_root, probability_of_level)
    q_under = query.prob_under

    def resolve(q_node: int, w_node: int):
        if q_node == ZERO or w_node == ZERO:
            return 0.0
        if q_node == ONE:
            return prob_under[w_node]
        if w_node == ONE:
            return q_under[q_node]
        return (q_node, w_node)

    memo: dict[tuple[int, int], float] = {}
    memo_get = memo.get
    initial = resolve(query.root, w_root)
    if type(initial) is float:
        return initial

    stack: list[tuple[int, int]] = [initial]
    while stack:
        state = stack[-1]
        if state in memo:
            stack.pop()
            continue
        q_node, w_node = state
        q_level = q_manager.level(q_node)
        w_level = w_manager.level(w_node)
        if q_level <= w_level:
            level = q_level
            q_low, q_high = q_manager.low(q_node), q_manager.high(q_node)
        else:
            level = w_level
            q_low, q_high = q_node, q_node
        if w_level <= q_level:
            w_low, w_high = w_manager.low(w_node), w_manager.high(w_node)
        else:
            w_low, w_high = w_node, w_node
        low_state = resolve(q_low, w_low)
        high_state = resolve(q_high, w_high)
        pending = False
        if type(low_state) is not float:
            low_value = memo_get(low_state)
            if low_value is None:
                stack.append(low_state)
                pending = True
            else:
                low_state = low_value
        if type(high_state) is not float:
            high_value = memo_get(high_state)
            if high_value is None:
                stack.append(high_state)
                pending = True
            else:
                high_state = high_value
        if pending:
            continue
        probability = probability_of_level[level]
        memo[state] = (1.0 - probability) * low_state + probability * high_state
        stack.pop()

    return memo[initial]


def p0_q_or_w(
    index: MVIndex,
    query_lineage: DNF,
    probabilities: Mapping[int, float] | None = None,
    algorithm: str = "cc",
) -> float:
    """``P0(Q ∨ W) = P0(W) + P0(Q ∧ ¬W)`` using the chosen intersection algorithm."""
    from repro.mvindex.cc_intersect import cc_mv_intersect

    if algorithm == "cc":
        conjunction = cc_mv_intersect(index, query_lineage, probabilities)
    elif algorithm == "mv":
        conjunction = mv_intersect(index, query_lineage, probabilities)
    else:
        raise InferenceError(f"unknown intersection algorithm {algorithm!r}")
    return index.probability_w() + conjunction
