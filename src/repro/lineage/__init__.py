"""Lineage formulas and exact probability computation over them."""

from repro.lineage.dnf import DNF, Clause, disjoin
from repro.lineage.events import (
    FALSE,
    TRUE,
    And,
    Event,
    Not,
    Or,
    Var,
    event_from_dnf,
)
from repro.lineage.enumeration import brute_force_probability, enumerate_worlds
from repro.lineage.shannon import ShannonEvaluator, shannon_probability

__all__ = [
    "DNF",
    "Clause",
    "disjoin",
    "Event",
    "Var",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "event_from_dnf",
    "brute_force_probability",
    "enumerate_worlds",
    "ShannonEvaluator",
    "shannon_probability",
]
