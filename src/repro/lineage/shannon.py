"""Exact probability of monotone DNF lineage by Shannon expansion.

This is a Davis–Putnam-style exact weighted model counter specialised to
monotone DNF: it decomposes the formula into independent components
(clauses over disjoint variable sets), applies Shannon expansion on the most
frequent variable otherwise, and memoizes sub-formulas.  Because it only
uses independence and Shannon expansion, it remains exact when variable
probabilities are negative (Sect. 3.3 of the paper).

It is used as a second, OBDD-free exact inference path — handy both for
cross-checking the OBDD/MV-index pipeline and for queries whose lineage is
small but whose OBDD order would be awkward.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.lineage.dnf import DNF, Clause


def _components(clauses: frozenset[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables.

    Clauses are visited in a sorted order so the component list — and hence
    the floating-point association of the independent-OR product — is a pure
    function of the clause *set*, not of its hash-table iteration order.
    This makes Shannon probabilities bit-identical across processes and for
    formulas rebuilt from serialized artifacts.
    """
    remaining = sorted(clauses, key=sorted)
    var_to_clauses: dict[int, list[int]] = {}
    for index, clause in enumerate(remaining):
        for var in clause:
            var_to_clauses.setdefault(var, []).append(index)
    visited = [False] * len(remaining)
    components: list[list[Clause]] = []
    for start in range(len(remaining)):
        if visited[start]:
            continue
        stack = [start]
        visited[start] = True
        component: list[Clause] = []
        while stack:
            index = stack.pop()
            component.append(remaining[index])
            for var in remaining[index]:
                for other in var_to_clauses[var]:
                    if not visited[other]:
                        visited[other] = True
                        stack.append(other)
        components.append(component)
    return components


class ShannonEvaluator:
    """Memoizing exact evaluator for monotone DNF probabilities."""

    def __init__(self, probabilities: Mapping[int, float]) -> None:
        self._probabilities = probabilities
        self._cache: dict[frozenset[Clause], float] = {}

    def probability(self, formula: DNF) -> float:
        """Exact probability of ``formula`` under independent tuple variables."""
        return self._probability(formula.clauses)

    # ----------------------------------------------------------------- internals
    def _probability(self, clauses: frozenset[Clause]) -> float:
        if not clauses:
            return 0.0
        if frozenset() in clauses:
            return 1.0
        cached = self._cache.get(clauses)
        if cached is not None:
            return cached
        components = _components(clauses)
        if len(components) > 1:
            # Independent OR: P(∨ Ci) = 1 - ∏ (1 - P(Ci)).
            complement = 1.0
            for component in components:
                complement *= 1.0 - self._probability(frozenset(component))
            result = 1.0 - complement
        else:
            result = self._shannon(clauses)
        self._cache[clauses] = result
        return result

    def _shannon(self, clauses: frozenset[Clause]) -> float:
        counts: Counter[int] = Counter()
        for clause in clauses:
            counts.update(clause)
        # Most frequent variable, ties broken by smallest id: deterministic
        # regardless of set iteration order (see _components).
        variable = min(counts, key=lambda candidate: (-counts[candidate], candidate))
        probability = self._probabilities[variable]
        positive = DNF(clauses).condition(variable, True).clauses
        negative = DNF(clauses).condition(variable, False).clauses
        return probability * self._probability(positive) + (1.0 - probability) * self._probability(
            negative
        )


def shannon_probability(formula: DNF, probabilities: Mapping[int, float]) -> float:
    """Convenience wrapper: exact probability of ``formula`` via Shannon expansion."""
    return ShannonEvaluator(probabilities).probability(formula)
