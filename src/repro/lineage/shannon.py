"""Exact probability of monotone DNF lineage by Shannon expansion.

This is a Davis–Putnam-style exact weighted model counter specialised to
monotone DNF: it decomposes the formula into independent components
(clauses over disjoint variable sets), applies Shannon expansion on the most
frequent variable otherwise, and memoizes sub-formulas.  Because it only
uses independence and Shannon expansion, it remains exact when variable
probabilities are negative (Sect. 3.3 of the paper).

It is used as a second, OBDD-free exact inference path — handy both for
cross-checking the OBDD/MV-index pipeline and for queries whose lineage is
small but whose OBDD order would be awkward.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.lineage.dnf import DNF, Clause


def _components(clauses: frozenset[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables.

    Clauses are visited in a sorted order so the component list — and hence
    the floating-point association of the independent-OR product — is a pure
    function of the clause *set*, not of its hash-table iteration order.
    This makes Shannon probabilities bit-identical across processes and for
    formulas rebuilt from serialized artifacts.
    """
    remaining = sorted(clauses, key=sorted)
    var_to_clauses: dict[int, list[int]] = {}
    for index, clause in enumerate(remaining):
        for var in clause:
            var_to_clauses.setdefault(var, []).append(index)
    visited = [False] * len(remaining)
    components: list[list[Clause]] = []
    for start in range(len(remaining)):
        if visited[start]:
            continue
        stack = [start]
        visited[start] = True
        component: list[Clause] = []
        while stack:
            index = stack.pop()
            component.append(remaining[index])
            for var in remaining[index]:
                for other in var_to_clauses[var]:
                    if not visited[other]:
                        visited[other] = True
                        stack.append(other)
        components.append(component)
    return components


class ShannonEvaluator:
    """Memoizing exact evaluator for monotone DNF probabilities.

    The evaluation is iterative: sub-formulas wait on an explicit stack with
    a per-formula *plan* (either the independent-component decomposition or
    the Shannon cofactor pair), so chains of thousands of variables evaluate
    without approaching the interpreter recursion limit.  The combination
    arithmetic — the association order of the independent-OR product and the
    cofactor mix — matches the recursive formulation exactly, keeping
    results bit-identical.
    """

    def __init__(self, probabilities: Mapping[int, float]) -> None:
        self._probabilities = probabilities
        self._cache: dict[frozenset[Clause], float] = {}

    def probability(self, formula: DNF) -> float:
        """Exact probability of ``formula`` under independent tuple variables."""
        return self._probability(formula.clauses)

    # ----------------------------------------------------------------- internals
    def _plan(
        self, clauses: frozenset[Clause]
    ) -> tuple[float | None, list[frozenset[Clause]]]:
        """Decompose a formula: components, or Shannon cofactors.

        Returns ``(probability, children)``: for the component case the
        probability slot is ``None`` and the children are the component
        clause sets; for the Shannon case it holds the branch variable's
        probability and the children are the positive/negative cofactors.
        """
        components = _components(clauses)
        if len(components) > 1:
            return None, [frozenset(component) for component in components]
        counts: Counter[int] = Counter()
        for clause in clauses:
            counts.update(clause)
        # Most frequent variable, ties broken by smallest id: deterministic
        # regardless of set iteration order (see _components).
        variable = min(counts, key=lambda candidate: (-counts[candidate], candidate))
        positive = DNF(clauses).condition(variable, True).clauses
        negative = DNF(clauses).condition(variable, False).clauses
        return self._probabilities[variable], [positive, negative]

    def _probability(self, clauses: frozenset[Clause]) -> float:
        if not clauses:
            return 0.0
        if frozenset() in clauses:
            return 1.0
        cache = self._cache
        cached = cache.get(clauses)
        if cached is not None:
            return cached

        plans: dict[frozenset[Clause], tuple[float | None, list[frozenset[Clause]]]] = {}
        stack: list[frozenset[Clause]] = [clauses]
        while stack:
            state = stack[-1]
            if state in cache:
                stack.pop()
                continue
            plan = plans.get(state)
            if plan is None:
                plan = self._plan(state)
                plans[state] = plan
            probability, children = plan
            pending = False
            values: list[float] = []
            for child in children:
                if not child:
                    values.append(0.0)
                elif frozenset() in child:
                    values.append(1.0)
                else:
                    value = cache.get(child)
                    if value is None:
                        stack.append(child)
                        pending = True
                    else:
                        values.append(value)
            if pending:
                continue
            if probability is None:
                # Independent OR: P(∨ Ci) = 1 - ∏ (1 - P(Ci)).
                complement = 1.0
                for value in values:
                    complement *= 1.0 - value
                cache[state] = 1.0 - complement
            else:
                cache[state] = probability * values[0] + (1.0 - probability) * values[1]
            del plans[state]
            stack.pop()
        return cache[clauses]


def shannon_probability(formula: DNF, probabilities: Mapping[int, float]) -> float:
    """Convenience wrapper: exact probability of ``formula`` via Shannon expansion."""
    return ShannonEvaluator(probabilities).probability(formula)
