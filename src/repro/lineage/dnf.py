"""Monotone DNF lineage expressions.

The lineage of a UCQ over a probabilistic database is a *positive* Boolean
formula in disjunctive normal form: each derivation of an answer contributes
one clause, the conjunction of the Boolean variables of the probabilistic
tuples used by that derivation (deterministic tuples contribute nothing).
Variables are integers (tuple variable identifiers assigned by the
tuple-independent database).

The empty clause denotes ``True`` (a derivation using only deterministic
tuples); an empty set of clauses denotes ``False`` (no derivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator

Clause = FrozenSet[int]

#: The clause that is always true (a derivation with no probabilistic tuples).
TRUE_CLAUSE: Clause = frozenset()


def _absorb(clauses: Iterable[Clause]) -> frozenset[Clause]:
    """Remove subsumed clauses (absorption law): drop C if some C' ⊆ C exists.

    Kept clauses are indexed by variable: a subsuming clause shares every
    one of its variables with the subsumed clause, so only kept clauses
    mentioning at least one variable of the candidate need a subset check.
    For the common case of (near-)disjoint clauses — big view lineages —
    this makes normalization linear instead of quadratic.
    """
    unique = set(clauses)
    if TRUE_CLAUSE in unique:
        return frozenset({TRUE_CLAUSE})
    kept: list[Clause] = []
    by_variable: dict[int, list[int]] = {}
    for clause in sorted(unique, key=len):
        candidates: set[int] = set()
        for variable in clause:
            candidates.update(by_variable.get(variable, ()))
        if any(kept[index] <= clause for index in candidates):
            continue
        position = len(kept)
        kept.append(clause)
        for variable in clause:
            by_variable.setdefault(variable, []).append(position)
    return frozenset(kept)


@dataclass(frozen=True)
class DNF:
    """An immutable monotone DNF formula over integer variables."""

    clauses: frozenset[Clause]

    def __init__(self, clauses: Iterable[Iterable[int]] = ()) -> None:
        normalized = _absorb(frozenset(frozenset(c) for c in clauses))
        object.__setattr__(self, "clauses", normalized)

    # ------------------------------------------------------------ constructors
    @staticmethod
    def false() -> "DNF":
        """The unsatisfiable lineage (no derivations)."""
        return DNF()

    @staticmethod
    def true() -> "DNF":
        """The valid lineage (a purely deterministic derivation)."""
        return DNF([TRUE_CLAUSE])

    @staticmethod
    def variable(var: int) -> "DNF":
        """The lineage of a single probabilistic tuple."""
        return DNF([[var]])

    @staticmethod
    def clause(variables: Iterable[int]) -> "DNF":
        """A single-conjunct lineage."""
        return DNF([frozenset(variables)])

    # ------------------------------------------------------------- inspection
    @property
    def is_false(self) -> bool:
        """True if the formula has no clauses."""
        return not self.clauses

    @property
    def is_true(self) -> bool:
        """True if the formula contains the empty clause."""
        return TRUE_CLAUSE in self.clauses

    def variables(self) -> frozenset[int]:
        """All variables mentioned by the formula."""
        result: set[int] = set()
        for clause in self.clauses:
            result |= clause
        return frozenset(result)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a total assignment of the formula's variables."""
        return any(all(assignment.get(v, False) for v in clause) for clause in self.clauses)

    # ------------------------------------------------------------ connectives
    def or_(self, other: "DNF") -> "DNF":
        """Disjunction; lineage of a UCQ is the union of disjunct lineages."""
        return DNF(self.clauses | other.clauses)

    def and_(self, other: "DNF") -> "DNF":
        """Conjunction by clause-wise distribution (used for small formulas only)."""
        if self.is_false or other.is_false:
            return DNF.false()
        return DNF(a | b for a in self.clauses for b in other.clauses)

    def condition(self, var: int, value: bool) -> "DNF":
        """The cofactor of the formula with ``var`` fixed to ``value``."""
        new_clauses: list[Clause] = []
        for clause in self.clauses:
            if var in clause:
                if value:
                    new_clauses.append(clause - {var})
            else:
                new_clauses.append(clause)
        return DNF(new_clauses)

    def restrict_to(self, variables: Iterable[int]) -> "DNF":
        """Keep only clauses entirely contained in ``variables``."""
        allowed = set(variables)
        return DNF(clause for clause in self.clauses if clause <= allowed)

    def __repr__(self) -> str:
        if self.is_false:
            return "DNF(false)"
        if self.is_true:
            return "DNF(true)"
        parts = sorted(
            ("·".join(f"x{v}" for v in sorted(clause)) or "⊤") for clause in self.clauses
        )
        return "DNF(" + " ∨ ".join(parts) + ")"


def disjoin(formulas: Iterable[DNF]) -> DNF:
    """Disjunction of many DNF formulas."""
    clauses: set[Clause] = set()
    for formula in formulas:
        clauses |= formula.clauses
    return DNF(clauses)
