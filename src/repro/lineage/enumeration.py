"""Brute-force probability computation by world enumeration.

This is the ground-truth oracle used by the test suite: it enumerates every
assignment of the variables appearing in a formula and sums the product of
per-variable probabilities.  It works unchanged when some probabilities are
negative (Sect. 3.3 of the paper), because it only relies on the product
form of the tuple-independent distribution.

Complexity is ``O(2^n)``, so it is only ever used for formulas with a small
number of variables (tests, examples, sanity checks).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Mapping

from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.lineage.events import Event

#: Above this many variables brute force enumeration refuses to run.
MAX_ENUMERATION_VARIABLES = 24


def _check_size(variables: Iterable[int]) -> list[int]:
    ordered = sorted(set(variables))
    if len(ordered) > MAX_ENUMERATION_VARIABLES:
        raise InferenceError(
            f"brute-force enumeration over {len(ordered)} variables refused "
            f"(limit {MAX_ENUMERATION_VARIABLES}); use OBDD or Shannon evaluation instead"
        )
    return ordered


def brute_force_probability(formula: DNF | Event, probabilities: Mapping[int, float]) -> float:
    """Exact probability of ``formula`` by enumerating all assignments.

    Parameters
    ----------
    formula:
        A monotone DNF lineage or a general Boolean event.
    probabilities:
        Mapping from variable id to marginal probability (may be negative,
        per the negative-probability translation of Sect. 3.3).
    """
    variables = _check_size(formula.variables())
    total = 0.0
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if not formula.evaluate(assignment):
            continue
        weight = 1.0
        for var, value in assignment.items():
            probability = probabilities[var]
            weight *= probability if value else (1.0 - probability)
        total += weight
    return total


def enumerate_worlds(variables: Iterable[int], probabilities: Mapping[int, float]):
    """Yield ``(assignment, probability)`` pairs for every world over ``variables``."""
    ordered = _check_size(variables)
    for values in product((False, True), repeat=len(ordered)):
        assignment = dict(zip(ordered, values))
        weight = 1.0
        for var, value in assignment.items():
            probability = probabilities[var]
            weight *= probability if value else (1.0 - probability)
        yield assignment, weight
