"""General Boolean event expressions.

While query lineage is always a monotone DNF, some parts of the system need
arbitrary Boolean combinations — most importantly ``Q ∧ ¬W`` from Theorem 1
and the ground features of a Markov Logic Network.  This module provides a
tiny immutable expression tree with evaluation and conversion from DNF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.lineage.dnf import DNF


class Event:
    """Base class for Boolean event expressions over integer variables."""

    def variables(self) -> frozenset[int]:
        """All variables mentioned by the expression."""
        raise NotImplementedError

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a (total) assignment."""
        raise NotImplementedError

    # Convenience connectives -------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        return And((self, other))

    def __or__(self, other: "Event") -> "Event":
        return Or((self, other))

    def __invert__(self) -> "Event":
        return Not(self)


@dataclass(frozen=True)
class TrueEvent(Event):
    """The event that always holds."""

    def variables(self) -> frozenset[int]:
        return frozenset()

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return True

    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseEvent(Event):
    """The event that never holds."""

    def variables(self) -> frozenset[int]:
        return frozenset()

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return False

    def __repr__(self) -> str:
        return "⊥"


TRUE = TrueEvent()
FALSE = FalseEvent()


@dataclass(frozen=True)
class Var(Event):
    """The event that tuple variable ``index`` is present."""

    index: int

    def variables(self) -> frozenset[int]:
        return frozenset({self.index})

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return bool(assignment.get(self.index, False))

    def __repr__(self) -> str:
        return f"x{self.index}"


@dataclass(frozen=True)
class Not(Event):
    """Negation of an event."""

    operand: Event

    def variables(self) -> frozenset[int]:
        return self.operand.variables()

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def __repr__(self) -> str:
        return f"¬({self.operand!r})"


@dataclass(frozen=True)
class And(Event):
    """Conjunction of events."""

    operands: tuple[Event, ...]

    def __init__(self, operands: Iterable[Event]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def variables(self) -> frozenset[int]:
        result: set[int] = set()
        for operand in self.operands:
            result |= operand.variables()
        return frozenset(result)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def __repr__(self) -> str:
        return " ∧ ".join(f"({operand!r})" for operand in self.operands) or "⊤"


@dataclass(frozen=True)
class Or(Event):
    """Disjunction of events."""

    operands: tuple[Event, ...]

    def __init__(self, operands: Iterable[Event]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def variables(self) -> frozenset[int]:
        result: set[int] = set()
        for operand in self.operands:
            result |= operand.variables()
        return frozenset(result)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def __repr__(self) -> str:
        return " ∨ ".join(f"({operand!r})" for operand in self.operands) or "⊥"


def event_from_dnf(formula: DNF) -> Event:
    """Convert a monotone DNF lineage into an :class:`Event` tree."""
    if formula.is_false:
        return FALSE
    if formula.is_true:
        return TRUE
    clauses = []
    for clause in formula:
        literals = [Var(v) for v in sorted(clause)]
        clauses.append(literals[0] if len(literals) == 1 else And(literals))
    return clauses[0] if len(clauses) == 1 else Or(clauses)
