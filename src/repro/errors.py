"""Exception hierarchy for the MarkoViews reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while more
specific classes document *where* in the pipeline the failure happened
(schema handling, query parsing/evaluation, knowledge compilation, or
probabilistic inference).
"""

from __future__ import annotations

import re


def wire_name(exception_class: type) -> str:
    """The HTTP wire name of an exception class: ``ParseError`` → ``parse_error``.

    The one definition shared by the server (writing ``error.type`` into
    response bodies) and the remote client (mapping it back onto this
    hierarchy), so the two cannot drift apart.
    """
    name = exception_class.__name__
    if name.endswith("Error"):
        name = name[: -len("Error")] + "_error"
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or a row does not match its schema."""


class UnknownRelationError(SchemaError):
    """A query or operation referenced a relation that does not exist."""


class QueryError(ReproError):
    """A query expression is syntactically or semantically invalid."""


class ParseError(QueryError):
    """A datalog-style query string could not be parsed."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. unbound variable in a comparison)."""


class WeightError(ReproError):
    """An invalid weight or probability was supplied (e.g. negative view weight)."""


class CompilationError(ReproError):
    """OBDD / MV-index compilation failed."""


class ArtifactError(ReproError):
    """A persisted MV-index artifact is missing, corrupt, or incompatible."""


class ClientError(ReproError):
    """The client facade (``repro.connect`` / ``repro.open``) was misused."""


class ServingError(ReproError):
    """The over-the-wire serving tier failed or refused a request."""


class AdmissionError(ServingError):
    """The serving tier's bounded request queue is full (HTTP 429).

    ``retry_after`` is the server's estimate, in seconds, of when capacity
    will be available again; the HTTP layer forwards it as ``Retry-After``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class InferenceError(ReproError):
    """Probabilistic inference failed."""


class UnsafeQueryError(InferenceError):
    """The lifted-inference engine could not find a safe plan for the query.

    This mirrors the dichotomy of Dalvi & Suciu: queries without a safe plan
    are #P-hard and must be evaluated through lineage/knowledge compilation
    instead.
    """
