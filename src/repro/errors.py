"""Exception hierarchy for the MarkoViews reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while more
specific classes document *where* in the pipeline the failure happened
(schema handling, query parsing/evaluation, knowledge compilation, or
probabilistic inference).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or a row does not match its schema."""


class UnknownRelationError(SchemaError):
    """A query or operation referenced a relation that does not exist."""


class QueryError(ReproError):
    """A query expression is syntactically or semantically invalid."""


class ParseError(QueryError):
    """A datalog-style query string could not be parsed."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. unbound variable in a comparison)."""


class WeightError(ReproError):
    """An invalid weight or probability was supplied (e.g. negative view weight)."""


class CompilationError(ReproError):
    """OBDD / MV-index compilation failed."""


class ArtifactError(ReproError):
    """A persisted MV-index artifact is missing, corrupt, or incompatible."""


class ClientError(ReproError):
    """The client facade (``repro.connect`` / ``repro.open``) was misused."""


class InferenceError(ReproError):
    """Probabilistic inference failed."""


class UnsafeQueryError(InferenceError):
    """The lifted-inference engine could not find a safe plan for the query.

    This mirrors the dichotomy of Dalvi & Suciu: queries without a safe plan
    are #P-hard and must be evaluated through lineage/knowledge compilation
    instead.
    """
