"""repro — a reproduction of "Probabilistic Databases with MarkoViews" (VLDB 2012).

One front door
--------------

The blessed client API lives right here::

    import repro

    mvdb = repro.MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
    mvdb.add_probabilistic_table("S", ["x"], [(("a",), 2.0)])
    mvdb.add_markoview(
        repro.MarkoView("V", repro.parse_query("V(x) :- R(x), S(x)"), weight=0.25)
    )

    db = repro.connect(mvdb)                  # offline pipeline: translate + compile
    result = db.query("Q :- R(x), S(x)")      # typed QueryResult
    db.save("index.json.gz")                  # persist; repro.open() cold-starts it

* :func:`connect` / :func:`open` / :class:`ProbDB` — the client facade
  (:mod:`repro.client`): queries, prepared queries, batches, artifact
  save/load, incremental view extension, statistics;
* :func:`connect_remote` / :class:`RemoteProbDB` — the same query surface
  over HTTP, against a server started with ``python -m repro serve``
  (:mod:`repro.serving.server`);
* :class:`QueryResult` / :class:`Answer` — typed results
  (:mod:`repro.results`) with probabilities, lineage sizes, work counters,
  cache provenance and wall time;
* :mod:`repro.methods` — the pluggable inference-method registry
  (``mvindex``, ``mvindex-mv``, ``obdd``, ``shannon``, ``enumeration``,
  ``sampling``, plus anything you :func:`repro.methods.register`).

Building blocks (stable, importable directly)
---------------------------------------------

* :mod:`repro.db` — an in-memory relational engine (the deterministic substrate);
* :mod:`repro.query` — conjunctive queries / UCQs, a datalog-style parser and an
  evaluator that extracts lineage;
* :mod:`repro.lineage` — lineage formulas and exact probability computation;
* :mod:`repro.indb` — tuple-independent probabilistic databases (weights/odds);
* :mod:`repro.obdd` — an OBDD manager and the ConOBDD construction algorithm;
* :mod:`repro.mvindex` — the MV-index and the MVIntersect / CC-MVIntersect
  query-time intersection algorithms;
* :mod:`repro.safe` — lifted inference (safe plans) for UCQs on INDBs;
* :mod:`repro.mln` — a Markov Logic Network substrate with exact, Gibbs and
  MC-SAT inference (the "Alchemy" baseline);
* :mod:`repro.dblp` — a synthetic DBLP-style workload generator reproducing the
  schema, probabilistic tables and MarkoViews of Fig. 1;
* :mod:`repro.experiments` — runners that regenerate every figure of Sect. 5.

Deprecated surfaces
-------------------

Package-level imports from :mod:`repro.core` and :mod:`repro.serving`
(e.g. ``from repro.core import MVQueryEngine``) still work but emit a
:class:`DeprecationWarning`; see ``docs/api.md`` for the replacement of
each name.
"""

from repro.client import ProbDB, RemoteProbDB, connect, connect_remote, open_artifact
from repro.core.markoview import MarkoView
from repro.core.mvdb import MVDB
from repro.db.database import Database
from repro.db.table import Table
from repro.errors import (
    ArtifactError,
    ClientError,
    InferenceError,
    QueryError,
    ReproError,
)
from repro.indb.database import TupleIndependentDatabase
from repro.lineage.dnf import DNF
from repro.query.atoms import Atom, Comparison
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.terms import Variable
from repro.query.ucq import UCQ
from repro.results import Answer, QueryResult

from repro import methods  # noqa: E402  (registry module, re-exported by name)

#: ``repro.open(path)`` — cold-start a :class:`ProbDB` from a saved artifact.
open = open_artifact

__all__ = [
    # the facade
    "ProbDB",
    "RemoteProbDB",
    "connect",
    "connect_remote",
    "open",
    "open_artifact",
    "Answer",
    "QueryResult",
    "methods",
    # modelling
    "MVDB",
    "MarkoView",
    # query language
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "UCQ",
    "Variable",
    "parse_query",
    # substrates
    "DNF",
    "Database",
    "Table",
    "TupleIndependentDatabase",
    # errors
    "ArtifactError",
    "ClientError",
    "InferenceError",
    "QueryError",
    "ReproError",
]

__version__ = "1.1.0"
