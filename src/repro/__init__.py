"""repro — a reproduction of "Probabilistic Databases with MarkoViews" (VLDB 2012).

The package provides:

* :mod:`repro.db` — an in-memory relational engine (the deterministic substrate);
* :mod:`repro.query` — conjunctive queries / UCQs, a datalog-style parser and an
  evaluator that extracts lineage;
* :mod:`repro.lineage` — lineage formulas and exact probability computation;
* :mod:`repro.indb` — tuple-independent probabilistic databases (weights/odds);
* :mod:`repro.obdd` — an OBDD manager and the ConOBDD construction algorithm;
* :mod:`repro.mvindex` — the MV-index and the MVIntersect / CC-MVIntersect
  query-time intersection algorithms;
* :mod:`repro.core` — MarkoViews, MVDBs, the MVDB→INDB translation (Theorem 1)
  and the end-to-end query engine;
* :mod:`repro.safe` — lifted inference (safe plans) for UCQs on INDBs;
* :mod:`repro.mln` — a Markov Logic Network substrate with exact, Gibbs and
  MC-SAT inference (the "Alchemy" baseline);
* :mod:`repro.dblp` — a synthetic DBLP-style workload generator reproducing the
  schema, probabilistic tables and MarkoViews of Fig. 1;
* :mod:`repro.experiments` — runners that regenerate every figure of Sect. 5.
"""

from repro.db import Database, Table
from repro.indb import TupleIndependentDatabase
from repro.lineage import DNF
from repro.query import UCQ, Atom, Comparison, ConjunctiveQuery, Variable, parse_query

__all__ = [
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "DNF",
    "Database",
    "Table",
    "TupleIndependentDatabase",
    "UCQ",
    "Variable",
    "parse_query",
]

__version__ = "1.0.0"
