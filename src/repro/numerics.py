"""Floating-point comparison in units in the last place (ulps).

The OBDD kernel is deterministic: evaluating the same lineage twice yields
bit-identical floats.  The one sanctioned source of drift is the
*incremental* MV-index extension, which appends freshly compiled components
to an existing index instead of rebuilding from scratch.  The root cause is
**summation/association order**: floating-point ``+`` and ``*`` are not
associative, so any reduction whose operand order depends on build history
(rather than on the data) can round differently.  Two places matter:

* the **product over components** in ``probability_not_w`` and the
  touched/untouched factor split — canonicalized since the non-blocking
  write path landed by folding components in ascending minimum-variable
  order (:meth:`~repro.mvindex.index.MVIndex._product_order`), which is
  intrinsic to the clause partition and therefore identical between a
  fresh build and any extend/append history;
* the **intra-component OBDD evaluation**, where an extended index's
  component was compiled in a *fresh* manager against a shorter variable
  order prefix than the from-scratch build uses.  The weighted sums at
  each node can therefore still round differently by a step — this is the
  residual drift the constant below bounds.

The observed divergence is a single ulp (see ``tests/test_numerics.py``,
which pins the bound in both directions and asserts that the *prepared*
extend path — snapshot-compile plus epoch swap — stays inside the same
budget as the legacy blocking extend).

Absolute tolerances such as the old ``1e-9`` are the wrong shape for this:
for probabilities near 1.0 they allow ~4.5 million ulps of drift, while for
the huge MLN-style weights the benchmark gate compares (magnitude ~1e22,
where one ulp is ~8e6) they demand more than bit-identity and only pass
because the values happen to be exactly equal.  Comparing in ulps is
scale-free: it bounds the number of *representable doubles* between the two
values, which is the honest measure of "how different two deterministic
computations came out".
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "GATE_PROBABILITY_ULPS",
    "INCREMENTAL_REBUILD_ULPS",
    "ulps_between",
    "within_ulps",
]

#: Maximum sanctioned divergence between an incrementally extended MV-index
#: and a from-scratch build of the same view set.  With the component
#: product canonicalized (min-variable fold order), the remaining drift is
#: the intra-component evaluation of delta-compiled OBDDs — at most one
#: rounding step, with one spare ulp of headroom for stacked mutations
#: (e.g. append-then-extend).  Anything beyond this is a correctness bug,
#: not noise.
INCREMENTAL_REBUILD_ULPS = 2

#: Tolerance of the benchmark gate's probability-drift check.  The gate
#: recomputes every value from scratch with the deterministic kernel, so the
#: budget is deliberately tight — a handful of ulps merely leaves room for a
#: reassociated reduction, not for algorithmic drift.
GATE_PROBABILITY_ULPS = 4


def _ordered(value: float) -> int:
    """Map a finite float to an integer preserving numeric order.

    IEEE-754 doubles compare like sign-magnitude integers; flipping the
    negative range turns the bit pattern into a monotone (two's-complement
    style) ordering, so ulp distance becomes plain integer subtraction.
    """
    (bits,) = struct.unpack("<q", struct.pack("<d", value))
    if bits < 0:
        bits = -(bits & 0x7FFFFFFFFFFFFFFF)
    return bits


def ulps_between(a: float, b: float) -> int:
    """Number of representable doubles strictly between ``a`` and ``b``... +1.

    Formally: the number of ulp-steps needed to walk from ``a`` to ``b``
    (0 when they are bit-identical; also 0 for ``-0.0`` vs ``0.0``, which
    compare numerically equal).  Raises :class:`ValueError` on NaN — a NaN
    is never "close" to anything.
    """
    if math.isnan(a) or math.isnan(b):
        raise ValueError("ulps_between is undefined for NaN")
    if a == b:  # covers -0.0 == 0.0, and infinities equal to themselves
        return 0
    if math.isinf(a) or math.isinf(b):
        raise ValueError("ulps_between is undefined between finite values and infinity")
    return abs(_ordered(a) - _ordered(b))


def within_ulps(a: float, b: float, ulps: int) -> bool:
    """Whether ``a`` and ``b`` are at most ``ulps`` rounding steps apart."""
    try:
        return ulps_between(a, b) <= ulps
    except ValueError:
        return False
