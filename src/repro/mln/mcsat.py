"""MC-SAT inference for grounded MLNs (the Alchemy baseline of Figs. 5–6).

MC-SAT (Poon & Domingos, AAAI 2006) is a slice sampler: at every step it
selects a random subset ``M`` of the ground formulas that the current world
satisfies — a formula with multiplicative weight ``ω > 1`` is selected with
probability ``1 − 1/ω`` — plus all hard constraints, and then draws the next
world (near-)uniformly from the assignments satisfying ``M`` using
SampleSAT (a mixture of WalkSAT and simulated-annealing moves).

Features with weight ``ω < 1`` are handled by the standard trick of treating
them as the *negated* formula with weight ``1/ω``; weight-0 features are
hard denial constraints; per-tuple base weights act as single-literal
features.  This mirrors how Alchemy grounds an MLN built from MarkoViews.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable

from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.mln.model import MarkovLogicNetwork


@dataclass(frozen=True)
class Constraint:
    """A constraint handed to SampleSAT: a formula that must be true or false."""

    formula: DNF
    must_hold: bool

    def satisfied(self, assignment: dict[int, bool]) -> bool:
        """Whether the constraint holds under ``assignment``."""
        return self.formula.evaluate(assignment) == self.must_hold

    def variables(self) -> frozenset[int]:
        """Variables the constraint depends on."""
        return self.formula.variables()


class SampleSat:
    """Approximately uniform sampling of assignments satisfying a constraint set."""

    def __init__(
        self,
        rng: random.Random,
        walk_probability: float = 0.5,
        greedy_probability: float = 0.8,
        temperature: float = 0.5,
        max_flips: int = 2000,
    ) -> None:
        self.rng = rng
        self.walk_probability = walk_probability
        self.greedy_probability = greedy_probability
        self.temperature = temperature
        self.max_flips = max_flips

    def sample(
        self,
        constraints: list[Constraint],
        variables: list[int],
        start: dict[int, bool],
    ) -> dict[int, bool]:
        """Return an assignment satisfying all constraints (best effort).

        The walk starts from a random perturbation of ``start`` and returns the
        first satisfying assignment reached after a randomly chosen number of
        additional flips (to decorrelate), or ``start`` itself if the walk
        fails — ``start`` always satisfies the constraints by construction of
        MC-SAT, so the chain remains valid.

        The set of unsatisfied constraints is maintained incrementally: a flip
        only re-evaluates the constraints mentioning the flipped variable.
        """
        if not constraints:
            return {variable: self.rng.random() < 0.5 for variable in variables}
        state = dict(start)
        for variable in variables:
            if self.rng.random() < 0.2:
                state[variable] = not state[variable]

        by_variable: dict[int, list[int]] = {}
        for position, constraint in enumerate(constraints):
            for variable in constraint.variables():
                by_variable.setdefault(variable, []).append(position)
        unsatisfied = {
            position
            for position, constraint in enumerate(constraints)
            if not constraint.satisfied(state)
        }

        def flip(variable: int) -> None:
            state[variable] = not state[variable]
            for position in by_variable.get(variable, ()):
                if constraints[position].satisfied(state):
                    unsatisfied.discard(position)
                else:
                    unsatisfied.add(position)

        last_good: dict[int, bool] | None = None
        extra_steps = self.rng.randrange(1, 20)
        for __ in range(self.max_flips):
            if not unsatisfied:
                last_good = dict(state)
                if extra_steps <= 0:
                    break
                extra_steps -= 1
                flip(self.rng.choice(variables))
            elif self.rng.random() < self.walk_probability:
                constraint = constraints[next(iter(unsatisfied))]
                candidates = list(constraint.variables()) or variables
                flip(self.rng.choice(candidates))
            else:
                variable = self.rng.choice(variables)
                delta = self._flip_delta(constraints, by_variable, state, variable)
                if delta <= 0 or self.rng.random() < math.exp(-delta / self.temperature):
                    flip(variable)
        if last_good is not None:
            return last_good
        return dict(start)

    def _flip_delta(
        self,
        constraints: list[Constraint],
        by_variable: dict[int, list[int]],
        state: dict[int, bool],
        variable: int,
    ) -> int:
        affected = by_variable.get(variable, ())
        before = sum(not constraints[position].satisfied(state) for position in affected)
        state[variable] = not state[variable]
        after = sum(not constraints[position].satisfied(state) for position in affected)
        state[variable] = not state[variable]
        return after - before


class McSatSampler:
    """The MC-SAT Markov chain over worlds of a grounded MLN."""

    def __init__(self, mln: MarkovLogicNetwork, seed: int | None = 0) -> None:
        self.mln = mln
        self.rng = random.Random(seed)
        self.sample_sat = SampleSat(self.rng)
        self._soft: list[tuple[DNF, bool, float]] = []
        self._hard: list[Constraint] = []
        self._prepare_constraints()
        self.state = self._initial_state()

    # ------------------------------------------------------------------ setup
    def _prepare_constraints(self) -> None:
        for variable, weight in self.mln.base_weights.items():
            formula = DNF.variable(variable)
            if math.isinf(weight):
                self._hard.append(Constraint(formula, True))
            elif weight == 0.0:
                self._hard.append(Constraint(formula, False))
            elif weight > 1.0:
                self._soft.append((formula, True, 1.0 - 1.0 / weight))
            elif weight < 1.0:
                self._soft.append((formula, False, 1.0 - weight))
        for feature in self.mln.features:
            if feature.is_hard_requirement:
                self._hard.append(Constraint(feature.formula, True))
            elif feature.is_hard_denial:
                self._hard.append(Constraint(feature.formula, False))
            elif feature.weight > 1.0:
                self._soft.append((feature.formula, True, 1.0 - 1.0 / feature.weight))
            elif feature.weight < 1.0:
                self._soft.append((feature.formula, False, 1.0 - feature.weight))

    def _initial_state(self) -> dict[int, bool]:
        state = {variable: False for variable in self.mln.variables}
        for constraint in self._hard:
            if constraint.must_hold and not constraint.satisfied(state):
                for variable in constraint.variables():
                    state[variable] = True
        if not all(constraint.satisfied(state) for constraint in self._hard):
            state = self.sample_sat.sample(self._hard, list(self.mln.variables), state)
            if not all(constraint.satisfied(state) for constraint in self._hard):
                raise InferenceError("MC-SAT could not find a world satisfying the hard constraints")
        return state

    # ------------------------------------------------------------------ steps
    def step(self) -> dict[int, bool]:
        """One MC-SAT transition; returns the new world."""
        selected: list[Constraint] = list(self._hard)
        for formula, must_hold, selection_probability in self._soft:
            holds = formula.evaluate(self.state) == must_hold
            if holds and self.rng.random() < selection_probability:
                selected.append(Constraint(formula, must_hold))
        self.state = self.sample_sat.sample(selected, list(self.mln.variables), self.state)
        return self.state

    def samples(self, count: int, burn_in: int = 20) -> Iterable[dict[int, bool]]:
        """Yield ``count`` worlds after ``burn_in`` discarded transitions."""
        for __ in range(burn_in):
            self.step()
        for __ in range(count):
            yield dict(self.step())

    # -------------------------------------------------------------- estimates
    def estimate_query(self, formula: DNF, samples: int = 300, burn_in: int = 30) -> float:
        """Estimate ``P(formula)`` by averaging over MC-SAT samples."""
        hits = 0
        total = 0
        for world in self.samples(samples, burn_in=burn_in):
            total += 1
            if formula.evaluate(world):
                hits += 1
        return hits / total if total else 0.0

    def estimate_marginals(self, samples: int = 300, burn_in: int = 30) -> dict[int, float]:
        """Estimate the marginal probability of every variable."""
        counts = {variable: 0 for variable in self.mln.variables}
        total = 0
        for world in self.samples(samples, burn_in=burn_in):
            total += 1
            for variable, present in world.items():
                if present:
                    counts[variable] += 1
        return {variable: count / total for variable, count in counts.items()}


def mcsat_query_probability(
    mln: MarkovLogicNetwork,
    formula: DNF,
    samples: int = 300,
    burn_in: int = 30,
    seed: int | None = 0,
) -> float:
    """Convenience wrapper: estimate ``P(formula)`` with a fresh MC-SAT chain."""
    return McSatSampler(mln, seed=seed).estimate_query(formula, samples=samples, burn_in=burn_in)
