"""Markov Logic Network substrate (grounded form).

An MVDB *is* an MLN (Def. 4): one single-literal feature per possible base
tuple (weight = the tuple's odds) and one feature per MarkoView output tuple
(formula = the Boolean query ``Q(t)``, weight = the view weight for ``t``).
This module represents that grounded MLN explicitly and is the substrate for
the "Alchemy" baseline of the experiments: exact inference (enumeration),
Gibbs sampling, and MC-SAT.

Weights here are *multiplicative* (a world's weight is the product of the
weights of the satisfied features), exactly as in Eq. 1 of the paper; a
weight ``ω`` corresponds to the conventional log-linear weight ``log ω``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import WeightError
from repro.lineage.dnf import DNF


@dataclass(frozen=True)
class GroundFeature:
    """One grounded feature: a monotone lineage formula and its weight.

    ``weight = 0`` is a hard *denial* constraint (worlds satisfying the
    formula have weight 0); ``weight = math.inf`` is a hard requirement.
    """

    formula: DNF
    weight: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.weight < 0 or math.isnan(self.weight):
            raise WeightError(f"feature weights must be non-negative, got {self.weight}")

    @property
    def is_hard_denial(self) -> bool:
        """True for weight-0 features (the formula must be false)."""
        return self.weight == 0.0

    @property
    def is_hard_requirement(self) -> bool:
        """True for weight-∞ features (the formula must be true)."""
        return math.isinf(self.weight)

    @property
    def log_weight(self) -> float:
        """The conventional MLN log-weight ``log ω``."""
        if self.weight == 0.0:
            return -math.inf
        return math.log(self.weight)


@dataclass
class MarkovLogicNetwork:
    """A grounded MLN over Boolean tuple variables.

    Parameters
    ----------
    variables:
        The tuple variables of the network.
    base_weights:
        Per-variable weight (odds); equivalent to a single-literal feature.
    features:
        The grounded view features.
    """

    variables: list[int]
    base_weights: dict[int, float]
    features: list[GroundFeature] = field(default_factory=list)

    def __post_init__(self) -> None:
        missing = [v for v in self.variables if v not in self.base_weights]
        if missing:
            raise WeightError(f"variables {missing[:5]} have no base weight")

    # ------------------------------------------------------------- inspection
    def variable_count(self) -> int:
        """Number of Boolean variables."""
        return len(self.variables)

    def feature_count(self) -> int:
        """Number of grounded (non-unary) features."""
        return len(self.features)

    def features_of_variable(self) -> dict[int, list[int]]:
        """Index: variable → positions of the features whose formula mentions it."""
        index: dict[int, list[int]] = {variable: [] for variable in self.variables}
        for position, feature in enumerate(self.features):
            for variable in feature.formula.variables():
                index.setdefault(variable, []).append(position)
        return index

    # ------------------------------------------------------------ world weight
    def world_weight(self, assignment: Mapping[int, bool]) -> float:
        """``Φ(I)``: product of base weights of present tuples and satisfied features."""
        weight = 1.0
        for variable in self.variables:
            if assignment.get(variable, False):
                base = self.base_weights[variable]
                if math.isinf(base):
                    continue
                weight *= base
            else:
                if math.isinf(self.base_weights[variable]):
                    return 0.0
        for feature in self.features:
            if feature.formula.evaluate(dict(assignment)):
                if feature.is_hard_denial:
                    return 0.0
                if not feature.is_hard_requirement:
                    weight *= feature.weight
            else:
                if feature.is_hard_requirement:
                    return 0.0
        return weight

    def satisfies_hard_constraints(self, assignment: Mapping[int, bool]) -> bool:
        """True if no hard constraint (weight 0 or ∞ feature) is violated."""
        assignment = dict(assignment)
        for feature in self.features:
            value = feature.formula.evaluate(assignment)
            if feature.is_hard_denial and value:
                return False
            if feature.is_hard_requirement and not value:
                return False
        return True


def mln_from_mvdb(mvdb) -> MarkovLogicNetwork:
    """Ground the MLN associated with an MVDB (Def. 4).

    Certain base tuples (weight ∞) are treated as deterministically present
    and therefore never appear in the variable list; view features keep only
    the lineage over the uncertain tuples.
    """
    variables = [v for v in mvdb.base.variables() if not mvdb.base.is_certain(v)]
    base_weights = {v: mvdb.base.weight_of_variable(v) for v in variables}
    features: list[GroundFeature] = []
    for view in mvdb.views:
        for row, weight, lineage in mvdb.view_tuples(view):
            if weight == 1.0:
                continue
            features.append(GroundFeature(lineage, weight, name=f"{view.name}{row}"))
    return MarkovLogicNetwork(variables, base_weights, features)


def features_as_constraints(mln: MarkovLogicNetwork) -> Iterable[tuple[DNF, float]]:
    """Yield ``(formula, weight)`` pairs including the unary base-weight features."""
    for variable in mln.variables:
        yield DNF.variable(variable), mln.base_weights[variable]
    for feature in mln.features:
        yield feature.formula, feature.weight
