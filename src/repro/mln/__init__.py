"""Markov Logic Network substrate: grounding, exact, Gibbs and MC-SAT inference."""

from repro.mln.exact import marginals, partition_function, query_probability
from repro.mln.gibbs import GibbsSampler, gibbs_query_probability
from repro.mln.mcsat import Constraint, McSatSampler, SampleSat, mcsat_query_probability
from repro.mln.model import (
    GroundFeature,
    MarkovLogicNetwork,
    features_as_constraints,
    mln_from_mvdb,
)

__all__ = [
    "Constraint",
    "GibbsSampler",
    "GroundFeature",
    "MarkovLogicNetwork",
    "McSatSampler",
    "SampleSat",
    "features_as_constraints",
    "gibbs_query_probability",
    "marginals",
    "mcsat_query_probability",
    "mln_from_mvdb",
    "partition_function",
    "query_probability",
]
