"""Exact MLN inference by possible-world enumeration (test oracle)."""

from __future__ import annotations

from itertools import product
from typing import Mapping

from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.lineage.enumeration import MAX_ENUMERATION_VARIABLES
from repro.mln.model import MarkovLogicNetwork


def _worlds(mln: MarkovLogicNetwork):
    variables = mln.variables
    if len(variables) > MAX_ENUMERATION_VARIABLES:
        raise InferenceError(
            f"exact MLN inference over {len(variables)} variables refused "
            f"(limit {MAX_ENUMERATION_VARIABLES})"
        )
    for values in product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def partition_function(mln: MarkovLogicNetwork) -> float:
    """``Z = Σ_I Φ(I)``."""
    return sum(mln.world_weight(world) for world in _worlds(mln))


def query_probability(mln: MarkovLogicNetwork, formula: DNF) -> float:
    """Exact probability that ``formula`` holds under the MLN distribution."""
    numerator = 0.0
    denominator = 0.0
    for world in _worlds(mln):
        weight = mln.world_weight(world)
        denominator += weight
        if weight and formula.evaluate(world):
            numerator += weight
    if denominator == 0.0:
        raise InferenceError("the MLN partition function is zero (unsatisfiable hard constraints)")
    return numerator / denominator


def marginals(mln: MarkovLogicNetwork) -> dict[int, float]:
    """Exact marginal probability of every variable."""
    totals: Mapping[int, float] = {variable: 0.0 for variable in mln.variables}
    totals = dict(totals)
    partition = 0.0
    for world in _worlds(mln):
        weight = mln.world_weight(world)
        partition += weight
        if weight == 0.0:
            continue
        for variable, present in world.items():
            if present:
                totals[variable] += weight
    if partition == 0.0:
        raise InferenceError("the MLN partition function is zero (unsatisfiable hard constraints)")
    return {variable: value / partition for variable, value in totals.items()}
