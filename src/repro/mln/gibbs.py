"""Gibbs sampling for grounded MLNs.

A straightforward single-site Gibbs sampler over the tuple variables.  Hard
constraints (weight 0 / ∞ features) are respected by giving zero conditional
probability to values that would violate them; note that hard constraints
can in principle disconnect the state space, in which case MC-SAT
(:mod:`repro.mln.mcsat`) is the appropriate sampler — this mirrors the
Alchemy tool-box.
"""

from __future__ import annotations

import math
import random

from repro.lineage.dnf import DNF
from repro.mln.model import MarkovLogicNetwork


class GibbsSampler:
    """Single-site Gibbs sampler with marginal and query estimation."""

    def __init__(self, mln: MarkovLogicNetwork, seed: int | None = None) -> None:
        self.mln = mln
        self.random = random.Random(seed)
        self._feature_index = mln.features_of_variable()
        self.state: dict[int, bool] = {variable: False for variable in mln.variables}
        for variable, weight in mln.base_weights.items():
            if math.isinf(weight):
                self.state[variable] = True

    # ----------------------------------------------------------------- moves
    def _conditional_probability(self, variable: int) -> float:
        """P(X_variable = 1 | rest of the current state)."""
        base = self.mln.base_weights[variable]
        if math.isinf(base):
            return 1.0
        ratio = base
        state = self.state
        for position in self._feature_index.get(variable, ()):
            feature = self.mln.features[position]
            state[variable] = True
            true_if_present = feature.formula.evaluate(state)
            state[variable] = False
            true_if_absent = feature.formula.evaluate(state)
            if true_if_present == true_if_absent:
                continue
            # Monotone formulas: presence can only turn the feature on.
            if feature.is_hard_denial:
                return 0.0
            if feature.is_hard_requirement:
                return 1.0
            ratio *= feature.weight
        return ratio / (1.0 + ratio)

    def sweep(self) -> None:
        """One Gibbs sweep over all variables (random order)."""
        variables = list(self.mln.variables)
        self.random.shuffle(variables)
        for variable in variables:
            probability = self._conditional_probability(variable)
            self.state[variable] = self.random.random() < probability

    # -------------------------------------------------------------- estimates
    def estimate_marginals(self, samples: int = 500, burn_in: int = 50) -> dict[int, float]:
        """Estimated marginal probability of every variable."""
        counts: dict[int, int] = {variable: 0 for variable in self.mln.variables}
        for __ in range(burn_in):
            self.sweep()
        for __ in range(samples):
            self.sweep()
            for variable, present in self.state.items():
                if present:
                    counts[variable] += 1
        return {variable: count / samples for variable, count in counts.items()}

    def estimate_query(self, formula: DNF, samples: int = 500, burn_in: int = 50) -> float:
        """Estimated probability that ``formula`` holds."""
        hits = 0
        for __ in range(burn_in):
            self.sweep()
        for __ in range(samples):
            self.sweep()
            if formula.evaluate(self.state):
                hits += 1
        return hits / samples


def gibbs_query_probability(
    mln: MarkovLogicNetwork,
    formula: DNF,
    samples: int = 500,
    burn_in: int = 50,
    seed: int | None = 0,
) -> float:
    """Convenience wrapper: estimate ``P(formula)`` with a fresh sampler."""
    return GibbsSampler(mln, seed=seed).estimate_query(formula, samples=samples, burn_in=burn_in)
