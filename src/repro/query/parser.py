"""A small datalog-style parser for conjunctive queries and UCQs.

The syntax follows the paper's notation::

    Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1),
              n1 like '%Madden%'

* relation atoms are ``Name(term, term, ...)``;
* terms are variables (identifiers), quoted string constants, or numbers;
* comparisons are ``term op term`` with ``op`` in ``= != <> < <= > >= like``;
* a UCQ is written as several rules with the same head, separated by ``;``
  or newlines, or passed as a list of rule strings.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.errors import ParseError
from repro.query.atoms import Atom, Comparison
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Variable
from repro.query.ucq import UCQ

_TOKEN_RE = re.compile(
    r"""
    \s*(
        :-                                   # rule separator
      | <=|>=|<>|!=|==|=|<|>                 # comparison operators
      | [A-Za-z_][A-Za-z_0-9]*               # identifiers / keywords
      | -?\d+\.\d+                           # floats
      | -?\d+                                # integers
      | '(?:[^'\\]|\\.)*'                    # single-quoted strings
      | "(?:[^"\\]|\\.)*"                    # double-quoted strings
      | [(),;]                               # punctuation
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def _parse_term(token: str) -> Any:
    if token.startswith(("'", '"')):
        return Constant(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if re.fullmatch(r"-?\d+\.\d+", token):
        return Constant(float(token))
    if token.isidentifier():
        return Variable(token)
    raise ParseError(f"cannot parse term {token!r}")


class _RuleParser:
    """Recursive-descent parser over a token list for a single rule."""

    def __init__(self, tokens: list[str], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._pos = 0

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of rule in {self._text!r}")
        self._pos += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._next()
        if token != expected:
            raise ParseError(f"expected {expected!r} but found {token!r} in {self._text!r}")

    def parse(self) -> tuple[str, ConjunctiveQuery]:
        head_name, head_vars = self._parse_head()
        self._expect(":-")
        atoms: list[Atom] = []
        comparisons: list[Comparison] = []
        while True:
            self._parse_body_item(atoms, comparisons)
            token = self._peek()
            if token == ",":
                self._next()
                continue
            if token is None:
                break
            raise ParseError(f"unexpected token {token!r} in {self._text!r}")
        cq = ConjunctiveQuery(head_vars, atoms, comparisons, name=head_name)
        return head_name, cq

    def _parse_head(self) -> tuple[str, list[Variable]]:
        name = self._next()
        if not name.isidentifier():
            raise ParseError(f"invalid head predicate {name!r}")
        head_vars: list[Variable] = []
        if self._peek() == "(":
            self._next()
            if self._peek() != ")":
                while True:
                    term = _parse_term(self._next())
                    if not isinstance(term, Variable):
                        raise ParseError(f"head arguments must be variables, got {term!r}")
                    head_vars.append(term)
                    if self._peek() == ",":
                        self._next()
                        continue
                    break
            self._expect(")")
        return name, head_vars

    def _parse_body_item(self, atoms: list[Atom], comparisons: list[Comparison]) -> None:
        first = self._next()
        if self._peek() == "(" and first.isidentifier():
            self._next()
            terms: list[Any] = []
            if self._peek() != ")":
                while True:
                    terms.append(_parse_term(self._next()))
                    if self._peek() == ",":
                        self._next()
                        continue
                    break
            self._expect(")")
            atoms.append(Atom(first, terms))
            return
        operator_token = self._next()
        if operator_token.lower() == "like":
            operator_token = "like"
        right = self._next()
        comparisons.append(Comparison(_parse_term(first), operator_token, _parse_term(right)))


def parse_rule(text: str) -> ConjunctiveQuery:
    """Parse a single datalog rule into a :class:`ConjunctiveQuery`."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty rule")
    __, cq = _RuleParser(tokens, text).parse()
    return cq


def parse_query(text: str | Iterable[str], name: str | None = None) -> UCQ:
    """Parse one or more rules into a UCQ.

    Rules may be given as a single string (separated by ``;`` or newlines)
    or as an iterable of rule strings.  All rules must share the same head
    predicate and head arity.
    """
    if isinstance(text, str):
        pieces = [piece for piece in re.split(r"[;\n]", text) if piece.strip()]
    else:
        pieces = [piece for piece in text if piece.strip()]
    if not pieces:
        raise ParseError("no rules to parse")
    disjuncts = [parse_rule(piece) for piece in pieces]
    names = {cq.name for cq in disjuncts}
    if len(names) != 1:
        raise ParseError(f"all rules of a UCQ must share the same head predicate, got {names}")
    return UCQ(disjuncts, name=name or disjuncts[0].name)


# ----------------------------------------------------------------- rendering
def _render_term(term: Any) -> str:
    from repro.query.terms import is_variable

    if is_variable(term):
        return term.name
    value = term.value
    if isinstance(value, str):
        # The tokenizer strips quotes without unescaping, so a value can only
        # travel inside the quote character it does not itself contain, and a
        # trailing backslash would escape the closing quote.
        if value.endswith("\\"):
            raise ParseError(f"cannot serialize constant {value!r}: ends with a backslash")
        if "'" not in value:
            return f"'{value}'"
        if '"' not in value:
            return f'"{value}"'
        raise ParseError(f"cannot serialize constant {value!r}: contains both quote kinds")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParseError(f"cannot serialize constant {value!r} as a datalog term")
    rendered = repr(value)
    if not re.fullmatch(r"-?\d+(\.\d+)?", rendered):
        raise ParseError(f"cannot serialize numeric constant {value!r} as a datalog term")
    return rendered


def _render_rule(cq: ConjunctiveQuery) -> str:
    head = cq.name
    if cq.head:
        head += "(" + ", ".join(v.name for v in cq.head) + ")"
    body = [
        f"{atom.relation}(" + ", ".join(_render_term(t) for t in atom.terms) + ")"
        for atom in cq.atoms
    ]
    body += [
        f"{_render_term(c.left)} {c.op} {_render_term(c.right)}" for c in cq.comparisons
    ]
    return f"{head} :- " + ", ".join(body)


def to_datalog(query: "UCQ | ConjunctiveQuery") -> str:
    """Render a parsed query back to datalog text (inverse of :func:`parse_query`).

    ``parse_query(to_datalog(q))`` reconstructs a query with the same
    canonical form, so parsed queries can travel over text-only transports
    (the HTTP serving protocol uses this).  Constants containing both quote
    characters, and floats without a plain decimal notation, cannot be
    tokenized by the parser and raise :class:`~repro.errors.ParseError`.
    """
    if isinstance(query, ConjunctiveQuery):
        return _render_rule(query)
    return " ; ".join(_render_rule(cq) for cq in query.disjuncts)
