"""Conjunctive queries (CQ).

A conjunctive query ``Q(x̄) :- A1, ..., Ak, c1, ..., cm`` has head variables
``x̄``, positive relational atoms ``Ai`` and comparison predicates ``cj``.
Boolean queries have an empty head.  This is the building block of the UCQ
language used both for user queries and MarkoView definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.query.atoms import Atom, Comparison
from repro.query.terms import Variable, is_variable, make_term


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A single conjunctive query.

    Parameters
    ----------
    head:
        Head variables (possibly empty for a Boolean query).
    atoms:
        Positive relational atoms.
    comparisons:
        Built-in comparison predicates; every variable used in a comparison
        must also occur in some relational atom (safety).
    name:
        Optional name used for pretty printing (e.g. ``"Q"`` or ``"V1"``).
    """

    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...]
    name: str

    def __init__(
        self,
        head: Sequence[Any] = (),
        atoms: Iterable[Atom] = (),
        comparisons: Iterable[Comparison] = (),
        name: str = "Q",
    ) -> None:
        head_vars = tuple(make_term(h) for h in head)
        if not all(is_variable(h) for h in head_vars):
            raise QueryError(f"head terms must all be variables, got {head_vars}")
        atoms = tuple(atoms)
        comparisons = tuple(comparisons)
        if not atoms:
            raise QueryError("a conjunctive query must have at least one relational atom")
        body_vars = {v for atom in atoms for v in atom.variables()}
        missing_head = [v for v in head_vars if v not in body_vars]
        if missing_head:
            raise QueryError(f"head variables {missing_head} do not occur in the body")
        missing_cmp = sorted(
            {v.name for c in comparisons for v in c.variables() if v not in body_vars}
        )
        if missing_cmp:
            raise QueryError(
                f"comparison variables {missing_cmp} do not occur in any relational atom"
            )
        object.__setattr__(self, "head", tuple(head_vars))
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "comparisons", comparisons)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------ inspection
    @property
    def is_boolean(self) -> bool:
        """True if the query has no head variables."""
        return not self.head

    def variables(self) -> set[Variable]:
        """All variables in the query body."""
        return {v for atom in self.atoms for v in atom.variables()}

    def existential_variables(self) -> set[Variable]:
        """Body variables that are not head variables."""
        return self.variables() - set(self.head)

    def relations(self) -> set[str]:
        """Names of the relations used by the query."""
        return {atom.relation for atom in self.atoms}

    def has_self_join(self) -> bool:
        """True if some relation appears in more than one atom."""
        names = [atom.relation for atom in self.atoms]
        return len(names) != len(set(names))

    # ---------------------------------------------------------- manipulation
    def substitute(self, substitution: dict[Variable, Any]) -> "ConjunctiveQuery":
        """Apply a variable substitution to head and body.

        Substituted head variables are dropped from the head (they become
        constants), so substituting all head variables yields a Boolean
        query — this is how answer tuples are turned into Boolean queries
        for probability computation.
        """
        new_head = [v for v in self.head if v not in substitution]
        new_atoms = [atom.substitute(substitution) for atom in self.atoms]
        new_comparisons = []
        for comparison in self.comparisons:
            left = substitution.get(comparison.left, comparison.left)
            right = substitution.get(comparison.right, comparison.right)
            new_comparisons.append(Comparison(left, comparison.op, right))
        return ConjunctiveQuery(new_head, new_atoms, new_comparisons, name=self.name)

    def bind_head(self, values: Sequence[Any]) -> "ConjunctiveQuery":
        """Bind the head variables to ``values``, producing a Boolean query."""
        if len(values) != len(self.head):
            raise QueryError(
                f"expected {len(self.head)} head values for {self.name}, got {len(values)}"
            )
        return self.substitute(dict(zip(self.head, values)))

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join([repr(a) for a in self.atoms] + [repr(c) for c in self.comparisons])
        return f"{self.name}({head}) :- {body}"
