"""Unions of conjunctive queries (UCQ).

A UCQ ``Q(x̄) = Q1(x̄) ∨ ... ∨ Qm(x̄)`` is a disjunction of conjunctive
queries over the same head variables.  Both user queries and the translated
view query ``W`` of Theorem 1 are UCQs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union (disjunction) of conjunctive queries sharing head variables."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], name: str = "Q") -> None:
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise QueryError("a UCQ must contain at least one conjunctive query")
        head_names = [tuple(v.name for v in cq.head) for cq in disjuncts]
        if len(set(head_names)) != 1:
            raise QueryError(f"all disjuncts of a UCQ must share head variables, got {head_names}")
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------ inspection
    @property
    def head(self) -> tuple[Variable, ...]:
        """Head variables (shared by all disjuncts)."""
        return self.disjuncts[0].head

    @property
    def is_boolean(self) -> bool:
        """True if the query has no head variables."""
        return not self.head

    def relations(self) -> set[str]:
        """Names of all relations used in any disjunct."""
        names: set[str] = set()
        for cq in self.disjuncts:
            names |= cq.relations()
        return names

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    # ---------------------------------------------------------- manipulation
    def bind_head(self, values: Sequence[Any]) -> "UnionOfConjunctiveQueries":
        """Bind head variables to ``values`` in every disjunct (Boolean result)."""
        return UnionOfConjunctiveQueries(
            [cq.bind_head(values) for cq in self.disjuncts], name=self.name
        )

    def union(self, other: "UCQ | ConjunctiveQuery", name: str | None = None) -> "UCQ":
        """Disjunction of this UCQ with another UCQ or CQ (heads must match)."""
        other_disjuncts = (other,) if isinstance(other, ConjunctiveQuery) else other.disjuncts
        return UnionOfConjunctiveQueries(
            self.disjuncts + tuple(other_disjuncts), name=name or self.name
        )

    def __repr__(self) -> str:
        return " ∨ ".join(repr(cq) for cq in self.disjuncts)


#: Short alias used pervasively in the paper and in this code base.
UCQ = UnionOfConjunctiveQueries


def as_ucq(query: "UCQ | ConjunctiveQuery", name: str | None = None) -> UCQ:
    """Wrap a CQ as a single-disjunct UCQ; pass UCQs through unchanged."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    return UnionOfConjunctiveQueries([query], name=name or query.name)
