"""Relational atoms and comparison predicates.

A conjunctive query body is a list of positive relational atoms plus
built-in comparison predicates (``<``, ``<=``, ``>``, ``>=``, ``=``, ``!=``)
and a SQL-style ``like`` substring predicate, exactly the fragment used by
the paper's running example (Fig. 2 uses ``n1 like '%Madden%'`` and
``aid2 <> aid3``).
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import EvaluationError, QueryError
from repro.query.terms import Constant, Term, Variable, is_variable, make_term

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _like(value: Any, pattern: Any) -> bool:
    """SQL LIKE with ``%`` (any substring) and ``_`` (any character)."""
    regex = re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, str(value)) is not None


@dataclass(frozen=True)
class Atom:
    """A positive relational atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[Any]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(make_term(t) for t in terms))

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> list[Variable]:
        """Variables occurring in the atom, in positional order (with duplicates)."""
        return [t for t in self.terms if is_variable(t)]

    def substitute(self, substitution: dict[Variable, Any]) -> "Atom":
        """Replace variables by the values bound in ``substitution``.

        Values are wrapped as constants; unbound variables are left alone.
        """
        new_terms: list[Term] = []
        for term in self.terms:
            if is_variable(term) and term in substitution:
                new_terms.append(Constant(substitution[term]))
            else:
                new_terms.append(term)
        return Atom(self.relation, new_terms)

    def is_ground(self) -> bool:
        """True if the atom contains no variables."""
        return not any(is_variable(t) for t in self.terms)

    def ground_row(self) -> tuple[Any, ...]:
        """The database row denoted by a ground atom."""
        if not self.is_ground():
            raise QueryError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __repr__(self) -> str:
        args = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({args})"


@dataclass(frozen=True)
class Comparison:
    """A built-in predicate ``left op right`` between terms.

    ``op`` is one of ``= != <> < <= > >= like``.
    """

    left: Term
    op: str
    right: Term

    def __init__(self, left: Any, op: str, right: Any) -> None:
        op = op.strip().lower()
        if op not in _OPERATORS and op != "like":
            raise QueryError(f"unsupported comparison operator {op!r}")
        object.__setattr__(self, "left", make_term(left))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "right", make_term(right))

    def variables(self) -> list[Variable]:
        """Variables occurring in the comparison."""
        return [t for t in (self.left, self.right) if is_variable(t)]

    def _resolve(self, term: Term, substitution: dict[Variable, Any]) -> Any:
        if is_variable(term):
            if term not in substitution:
                raise EvaluationError(
                    f"variable {term!r} in comparison {self} is not bound; comparisons must "
                    "only use variables bound by a relational atom"
                )
            return substitution[term]
        return term.value  # type: ignore[union-attr]

    def evaluate(self, substitution: dict[Variable, Any]) -> bool:
        """Evaluate the comparison under a variable substitution."""
        left = self._resolve(self.left, substitution)
        right = self._resolve(self.right, substitution)
        if self.op == "like":
            return _like(left, right)
        try:
            return _OPERATORS[self.op](left, right)
        except TypeError as exc:
            raise EvaluationError(f"cannot compare {left!r} {self.op} {right!r}") from exc

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"
