"""Terms of the query language: variables and constants.

Queries in the paper are written in datalog notation; an atom's argument is
either a variable (``x``, ``aid1``) or a constant (``'Madden'``, ``2005``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant value appearing in a query."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value: Any) -> Term:
    """Coerce a Python value into a term.

    Strings are treated as variable names when they are valid identifiers
    starting with a lowercase letter or underscore *and* the caller passes a
    plain string; to force a string constant, wrap it in :class:`Constant`.
    This mirrors datalog conventions where lowercase identifiers denote
    variables and quoted strings denote constants.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.isidentifier():
        return Variable(value)
    return Constant(value)
