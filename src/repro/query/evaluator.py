"""Evaluation of conjunctive queries and UCQs over a database, with lineage.

The evaluator runs a left-deep **hash-join pipeline** over the deterministic
instance ``I_poss`` (the instance containing *all* possible tuples).  Atoms
are ordered greedily (most-bound, then smallest); each join step either

* **index-probes** the atom's relation when the intermediate result is small
  relative to the table (the index-nested-loop regime that keeps point
  queries fast), or
* **builds a hash table** over the atom's rows — with constants pushed down
  into the scan — and probes it with the intermediate result; when the build
  side exceeds :data:`DEFAULT_BUILD_BUDGET` rows, the join falls back to
  **grace partitioning**: build and probe sides are split by a deterministic
  hash of the join key and joined partition by partition, bounding the
  resident build-table size at ``build_side / GRACE_PARTITIONS``.

Intermediate tuples are projected onto the variables still needed
downstream, so wide joins do not drag dead columns along.  For every answer
tuple the evaluator also returns the lineage: a monotone DNF over the
Boolean variables of the probabilistic tuples used by each derivation —
exactly the ``(tuple, event)`` stream the ConOBDD compiler consumes.  Which
tuples are probabilistic (and which Boolean variable they map to) is
supplied through a :class:`LineageProvider`.

Both storage backends expose insertion-ordered scans and lookups, and the
grace partitioner uses a content-based hash (:func:`zlib.crc32` over
``repr``), so the pipeline is fully deterministic: the same database
content yields the same derivation stream — and bit-identical
probabilities — on either backend, across processes.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator, Mapping, Protocol, Sequence

from repro.db.database import Database
from repro.db.table import Row
from repro.errors import EvaluationError
from repro.lineage.dnf import DNF
from repro.query.atoms import Atom, Comparison
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable, is_variable
from repro.query.ucq import UCQ, as_ucq

#: Build-side row budget above which a hash join grace-partitions.
DEFAULT_BUILD_BUDGET = 200_000

#: Number of grace partitions (resident build memory ~ build/partitions).
GRACE_PARTITIONS = 16

#: Intermediate-result size up to which index probing beats a hash build.
INDEX_PROBE_THRESHOLD = 64


class LineageProvider(Protocol):
    """Maps rows of probabilistic relations to Boolean tuple variables."""

    def variable_for(self, relation: str, row: Row) -> int | None:
        """Variable id of a probabilistic tuple, or ``None`` if deterministic."""


class NoLineage:
    """A provider that treats every relation as deterministic."""

    def variable_for(self, relation: str, row: Row) -> int | None:
        return None


class QueryResult:
    """Answers of a query together with their lineage.

    The result maps each answer tuple to its :class:`~repro.lineage.dnf.DNF`
    lineage.  For a Boolean query, the single (possibly absent) answer is the
    empty tuple ``()``.
    """

    def __init__(self, head: Sequence[Variable]) -> None:
        self.head = tuple(head)
        self._answers: dict[tuple[Any, ...], set[frozenset[int]]] = {}

    def add_derivation(self, answer: tuple[Any, ...], clause: frozenset[int]) -> None:
        """Record one derivation (a clause of probabilistic tuple variables)."""
        self._answers.setdefault(answer, set()).add(clause)

    def answers(self) -> list[tuple[Any, ...]]:
        """All answer tuples."""
        return list(self._answers)

    def lineage(self, answer: tuple[Any, ...] = ()) -> DNF:
        """Lineage of one answer (``DNF.false()`` if the answer is absent)."""
        clauses = self._answers.get(tuple(answer))
        if clauses is None:
            return DNF.false()
        return DNF(clauses)

    def lineages(self) -> dict[tuple[Any, ...], DNF]:
        """Mapping from every answer tuple to its lineage."""
        return {answer: DNF(clauses) for answer, clauses in self._answers.items()}

    @property
    def boolean_true(self) -> bool:
        """For Boolean queries: whether the query has any derivation at all."""
        return () in self._answers

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, answer: Sequence[Any]) -> bool:
        return tuple(answer) in self._answers

    def merge(self, other: "QueryResult") -> None:
        """Union the derivations of ``other`` into this result (same head)."""
        for answer, clauses in other._answers.items():
            self._answers.setdefault(answer, set()).update(clauses)


def _order_atoms(query: ConjunctiveQuery, database: Database) -> list[Atom]:
    """Greedy join order by estimated output cardinality.

    At each step the atom with the smallest *estimated matches per probe* is
    chosen: ``|T| / prod(distinct(T, p))`` over every position ``p`` that is a
    constant or an already-bound variable.  Counting bound *positions* alone
    is not enough — after ``Advisor(aid1, aid2), Student(aid1, year)`` both
    ``Pub(pid, title, year)`` and ``Wrote(aid1, pid)`` have exactly one bound
    position, but joining ``Pub`` on ``year`` alone multiplies by every
    publication of that year (an intermediate that grows with the database,
    turning the whole evaluation quadratic), while ``Wrote`` on ``aid1``
    multiplies only by one author's papers.  Column distinct counts are the
    cheap statistic that tells these apart.
    """
    stats: dict[tuple[str, int], int] = {}

    def distinct(atom: Atom, position: int) -> int:
        key = (atom.relation, position)
        if key not in stats:
            table = database.table(atom.relation)
            stats[key] = table.distinct_count(position)
        return max(1, stats[key])

    def selectivity(atom: Atom, bound: set[Variable], index: int) -> tuple:
        if atom.relation not in database:
            return (0.0, 0, index)
        size = len(database.table(atom.relation))
        estimate = float(size)
        for position, term in enumerate(atom.terms):
            if not is_variable(term) or term in bound:
                estimate /= distinct(atom, position)
        return (estimate, size, index)

    remaining = list(enumerate(query.atoms))
    ordered: list[Atom] = []
    bound: set[Variable] = set()
    while remaining:
        remaining.sort(key=lambda pair: selectivity(pair[1], bound, pair[0]))
        __, chosen = remaining.pop(0)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def _pending_comparisons(
    comparisons: Sequence[Comparison], bound: set[Variable]
) -> list[Comparison]:
    return [c for c in comparisons if all(v in bound for v in c.variables())]


def _grace_partition(key: tuple[Any, ...]) -> int:
    """Deterministic partition of a join key (stable across processes)."""
    data = repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) % GRACE_PARTITIONS


#: One intermediate tuple: projected variable values + lineage clause so far.
_Item = tuple[tuple[Any, ...], frozenset[int]]


class _JoinStep:
    """One atom of the pipeline: term analysis + emit logic for matches."""

    def __init__(
        self,
        atom: Atom,
        slots: dict[Variable, int],
        keep: set[Variable],
        comparisons: Sequence[Comparison],
        provider: LineageProvider,
    ) -> None:
        self.atom = atom
        self.slots = slots
        self.comparisons = comparisons
        self.provider = provider
        self.const_bindings: dict[int, Any] = {}
        self.join_by_pos: list[tuple[int, int]] = []  # (row position, env slot)
        self.first_pos: dict[Variable, int] = {}  # new variable -> first position
        self.dup_checks: list[tuple[int, int]] = []  # repeated new variable
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                if term in slots:
                    self.join_by_pos.append((position, slots[term]))
                elif term in self.first_pos:
                    self.dup_checks.append((position, self.first_pos[term]))
                else:
                    self.first_pos[term] = position
            else:
                self.const_bindings[position] = term.value  # type: ignore[union-attr]
        self.comp_vars = {v for c in comparisons for v in c.variables()}
        # Output layout: surviving old slots (in order), then new variables
        # (in first-occurrence order), filtered to what is needed downstream.
        self.out_layout = [v for v in slots if v in keep]
        self.out_layout += [v for v in self.first_pos if v in keep]
        self.out_slots = {v: i for i, v in enumerate(self.out_layout)}

    def _value(self, variable: Variable, env: tuple[Any, ...], row: Row) -> Any:
        slot = self.slots.get(variable)
        if slot is not None:
            return env[slot]
        return row[self.first_pos[variable]]

    def row_consistent(self, row: Row) -> bool:
        """Within-atom checks a raw scan does not cover (repeated variables)."""
        return all(row[p] == row[q] for p, q in self.dup_checks)

    def emit(self, env: tuple[Any, ...], clause: frozenset[int], row: Row, out: list[_Item]) -> None:
        """Extend one intermediate with one matching row (filters + lineage)."""
        if self.comparisons:
            substitution = {v: self._value(v, env, row) for v in self.comp_vars}
            if not all(c.evaluate(substitution) for c in self.comparisons):
                return
        variable = self.provider.variable_for(self.atom.relation, row)
        if variable is not None:
            clause = clause | {variable}
        out.append((tuple(self._value(v, env, row) for v in self.out_layout), clause))

    def probe_key(self, env: tuple[Any, ...]) -> tuple[Any, ...]:
        return tuple(env[slot] for _, slot in self.join_by_pos)

    def build_key(self, row: Row) -> tuple[Any, ...]:
        return tuple(row[pos] for pos, _ in self.join_by_pos)


def _index_probe(step: _JoinStep, items: list[_Item], table: Any) -> list[_Item]:
    """Index-nested-loop regime: one indexed lookup per intermediate tuple."""
    out: list[_Item] = []
    for env, clause in items:
        bindings = dict(step.const_bindings)
        for position, slot in step.join_by_pos:
            bindings[position] = env[slot]
        for row in table.lookup(bindings):
            if step.row_consistent(row):
                step.emit(env, clause, row, out)
    return out


def _build_rows(step: _JoinStep, table: Any, partition: int | None) -> Iterator[Row]:
    """Scan the build side with constants pushed down, optionally partitioned."""
    for row in table.scan(dict(step.const_bindings)):
        if not step.row_consistent(row):
            continue
        if partition is not None and _grace_partition(step.build_key(row)) != partition:
            continue
        yield row


def _hash_join(
    step: _JoinStep, items: list[_Item], table: Any, build_budget: int
) -> list[_Item]:
    """Build/probe regime, grace-partitioned when the build side is too big."""
    out: list[_Item] = []
    if len(table) > build_budget and step.join_by_pos:
        # Grace fallback: split probe side by join-key hash once, then build
        # one bounded partition of the table at a time.
        probe_parts: list[list[_Item]] = [[] for __ in range(GRACE_PARTITIONS)]
        for item in items:
            probe_parts[_grace_partition(step.probe_key(item[0]))].append(item)
        partitions: list[tuple[int | None, list[_Item]]] = [
            (p, part) for p, part in enumerate(probe_parts) if part
        ]
    else:
        partitions = [(None, items)]
    for partition, probe_items in partitions:
        build: dict[tuple[Any, ...], list[Row]] = {}
        for row in _build_rows(step, table, partition):
            build.setdefault(step.build_key(row), []).append(row)
        for env, clause in probe_items:
            for row in build.get(step.probe_key(env), ()):
                step.emit(env, clause, row, out)
    return out


def evaluate_cq(
    query: ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider | None = None,
    result: QueryResult | None = None,
    build_budget: int | None = None,
) -> QueryResult:
    """Evaluate a conjunctive query, returning answers with lineage.

    ``build_budget`` caps the resident build side of each hash join before
    grace partitioning kicks in (default :data:`DEFAULT_BUILD_BUDGET`).
    """
    provider = lineage or NoLineage()
    budget = DEFAULT_BUILD_BUDGET if build_budget is None else build_budget
    if result is None:
        result = QueryResult(query.head)
    ordered_atoms = _order_atoms(query, database)

    # Pre-compute which comparisons become checkable after each join step.
    checked: set[Comparison] = set()
    comparison_schedule: list[list[Comparison]] = []
    bound_so_far: set[Variable] = set()
    for atom in ordered_atoms:
        bound_so_far.update(atom.variables())
        ready = [
            c
            for c in _pending_comparisons(query.comparisons, bound_so_far)
            if c not in checked
        ]
        checked.update(ready)
        comparison_schedule.append(ready)
    unreachable = set(query.comparisons) - checked
    if unreachable:
        raise EvaluationError(
            f"comparisons {sorted(map(repr, unreachable))} use variables never bound by atoms"
        )

    head = query.head

    # Liveness: after depth d, keep only variables used by later atoms, later
    # comparisons, or the head.
    future: set[Variable] = set(head)
    keep: list[set[Variable]] = [set()] * len(ordered_atoms)
    for depth in range(len(ordered_atoms) - 1, -1, -1):
        keep[depth] = set(future)
        future = future | set(ordered_atoms[depth].variables())
        future |= {v for c in comparison_schedule[depth] for v in c.variables()}

    items: list[_Item] = [((), frozenset())]
    slots: dict[Variable, int] = {}
    for depth, atom in enumerate(ordered_atoms):
        table = database.table(atom.relation)
        step = _JoinStep(atom, slots, keep[depth], comparison_schedule[depth], provider)
        small_probe = len(items) <= INDEX_PROBE_THRESHOLD or len(items) * 8 <= len(table)
        if (step.join_by_pos or step.const_bindings) and small_probe:
            items = _index_probe(step, items, table)
        else:
            items = _hash_join(step, items, table, budget)
        slots = step.out_slots
        if not items:
            return result

    for env, clause in items:
        answer = tuple(env[slots[v]] for v in head)
        result.add_derivation(answer, clause)
    return result


def evaluate_ucq(
    query: UCQ | ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider | None = None,
    build_budget: int | None = None,
) -> QueryResult:
    """Evaluate a UCQ (or a single CQ) with lineage.

    The lineage of each answer is the disjunction of the lineages produced by
    the individual disjuncts, as in the paper (Sect. 4: the lineage of a
    disjunction is the disjunction of the lineages).
    """
    ucq = as_ucq(query)
    result = QueryResult(ucq.head)
    for disjunct in ucq.disjuncts:
        evaluate_cq(disjunct, database, lineage, result, build_budget=build_budget)
    return result


def boolean_lineage(
    query: UCQ | ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider,
) -> DNF:
    """Lineage of a Boolean query (``DNF.false()`` when it has no derivations)."""
    ucq = as_ucq(query)
    if not ucq.is_boolean:
        raise EvaluationError(f"query {ucq.name!r} is not Boolean; bind its head first")
    return evaluate_ucq(ucq, database, lineage).lineage(())


def answer_probabilities(
    result: QueryResult,
    probabilities: Mapping[int, float],
    method: str = "shannon",
) -> dict[tuple[Any, ...], float]:
    """Marginal probability of each answer from its lineage.

    ``method`` is ``"shannon"`` (exact, default) or ``"enumeration"``
    (exact brute force; only for tiny lineages).
    """
    from repro.lineage.enumeration import brute_force_probability
    from repro.lineage.shannon import shannon_probability

    output: dict[tuple[Any, ...], float] = {}
    for answer, formula in result.lineages().items():
        if method == "enumeration":
            output[answer] = brute_force_probability(formula, probabilities)
        else:
            output[answer] = shannon_probability(formula, probabilities)
    return output
