"""Evaluation of conjunctive queries and UCQs over a database, with lineage.

The evaluator runs index-nested-loop joins over the deterministic instance
``I_poss`` (the instance containing *all* possible tuples).  For every answer
tuple it also returns the lineage: a monotone DNF over the Boolean variables
of the probabilistic tuples used by each derivation.  Which tuples are
probabilistic — and which Boolean variable they map to — is supplied through
a :class:`LineageProvider`.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, Sequence

from repro.db.database import Database
from repro.db.table import Row
from repro.errors import EvaluationError
from repro.lineage.dnf import DNF
from repro.query.atoms import Atom, Comparison
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable, is_variable
from repro.query.ucq import UCQ, as_ucq


class LineageProvider(Protocol):
    """Maps rows of probabilistic relations to Boolean tuple variables."""

    def variable_for(self, relation: str, row: Row) -> int | None:
        """Variable id of a probabilistic tuple, or ``None`` if deterministic."""


class NoLineage:
    """A provider that treats every relation as deterministic."""

    def variable_for(self, relation: str, row: Row) -> int | None:
        return None


class QueryResult:
    """Answers of a query together with their lineage.

    The result maps each answer tuple to its :class:`~repro.lineage.dnf.DNF`
    lineage.  For a Boolean query, the single (possibly absent) answer is the
    empty tuple ``()``.
    """

    def __init__(self, head: Sequence[Variable]) -> None:
        self.head = tuple(head)
        self._answers: dict[tuple[Any, ...], set[frozenset[int]]] = {}

    def add_derivation(self, answer: tuple[Any, ...], clause: frozenset[int]) -> None:
        """Record one derivation (a clause of probabilistic tuple variables)."""
        self._answers.setdefault(answer, set()).add(clause)

    def answers(self) -> list[tuple[Any, ...]]:
        """All answer tuples."""
        return list(self._answers)

    def lineage(self, answer: tuple[Any, ...] = ()) -> DNF:
        """Lineage of one answer (``DNF.false()`` if the answer is absent)."""
        clauses = self._answers.get(tuple(answer))
        if clauses is None:
            return DNF.false()
        return DNF(clauses)

    def lineages(self) -> dict[tuple[Any, ...], DNF]:
        """Mapping from every answer tuple to its lineage."""
        return {answer: DNF(clauses) for answer, clauses in self._answers.items()}

    @property
    def boolean_true(self) -> bool:
        """For Boolean queries: whether the query has any derivation at all."""
        return () in self._answers

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, answer: Sequence[Any]) -> bool:
        return tuple(answer) in self._answers

    def merge(self, other: "QueryResult") -> None:
        """Union the derivations of ``other`` into this result (same head)."""
        for answer, clauses in other._answers.items():
            self._answers.setdefault(answer, set()).update(clauses)


def _order_atoms(query: ConjunctiveQuery, database: Database) -> list[Atom]:
    """Greedy join order: start selective, then follow bound variables."""

    def selectivity(atom: Atom, bound: set[Variable]) -> tuple[int, int]:
        bound_terms = sum(
            1 for term in atom.terms if not is_variable(term) or term in bound
        )
        size = len(database.table(atom.relation)) if atom.relation in database else 0
        return (-bound_terms, size)

    remaining = list(query.atoms)
    ordered: list[Atom] = []
    bound: set[Variable] = set()
    while remaining:
        remaining.sort(key=lambda atom: selectivity(atom, bound))
        chosen = remaining.pop(0)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ordered


def _pending_comparisons(
    comparisons: Sequence[Comparison], bound: set[Variable]
) -> list[Comparison]:
    return [c for c in comparisons if all(v in bound for v in c.variables())]


def evaluate_cq(
    query: ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider | None = None,
    result: QueryResult | None = None,
) -> QueryResult:
    """Evaluate a conjunctive query, returning answers with lineage."""
    provider = lineage or NoLineage()
    if result is None:
        result = QueryResult(query.head)
    ordered_atoms = _order_atoms(query, database)

    # Pre-compute which comparisons become checkable after each join step.
    checked: set[Comparison] = set()
    comparison_schedule: list[list[Comparison]] = []
    bound_so_far: set[Variable] = set()
    for atom in ordered_atoms:
        bound_so_far.update(atom.variables())
        ready = [
            c
            for c in _pending_comparisons(query.comparisons, bound_so_far)
            if c not in checked
        ]
        checked.update(ready)
        comparison_schedule.append(ready)
    unreachable = set(query.comparisons) - checked
    if unreachable:
        raise EvaluationError(
            f"comparisons {sorted(map(repr, unreachable))} use variables never bound by atoms"
        )

    head = query.head

    def recurse(depth: int, substitution: dict[Variable, Any], clause: set[int]) -> None:
        if depth == len(ordered_atoms):
            answer = tuple(substitution[v] for v in head)
            result.add_derivation(answer, frozenset(clause))
            return
        atom = ordered_atoms[depth]
        table = database.table(atom.relation)
        bindings: dict[int, Any] = {}
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                if term in substitution:
                    bindings[position] = substitution[term]
            else:
                bindings[position] = term.value  # type: ignore[union-attr]
        for row in table.lookup(bindings):
            new_substitution = dict(substitution)
            consistent = True
            for position, term in enumerate(atom.terms):
                if is_variable(term):
                    existing = new_substitution.get(term, row[position])
                    if existing != row[position]:
                        consistent = False
                        break
                    new_substitution[term] = row[position]
            if not consistent:
                continue
            if not all(c.evaluate(new_substitution) for c in comparison_schedule[depth]):
                continue
            variable = provider.variable_for(atom.relation, row)
            if variable is None:
                recurse(depth + 1, new_substitution, clause)
            else:
                clause.add(variable)
                recurse(depth + 1, new_substitution, clause)
                clause.discard(variable)

    recurse(0, {}, set())
    return result


def evaluate_ucq(
    query: UCQ | ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider | None = None,
) -> QueryResult:
    """Evaluate a UCQ (or a single CQ) with lineage.

    The lineage of each answer is the disjunction of the lineages produced by
    the individual disjuncts, as in the paper (Sect. 4: the lineage of a
    disjunction is the disjunction of the lineages).
    """
    ucq = as_ucq(query)
    result = QueryResult(ucq.head)
    for disjunct in ucq.disjuncts:
        evaluate_cq(disjunct, database, lineage, result)
    return result


def boolean_lineage(
    query: UCQ | ConjunctiveQuery,
    database: Database,
    lineage: LineageProvider,
) -> DNF:
    """Lineage of a Boolean query (``DNF.false()`` when it has no derivations)."""
    ucq = as_ucq(query)
    if not ucq.is_boolean:
        raise EvaluationError(f"query {ucq.name!r} is not Boolean; bind its head first")
    return evaluate_ucq(ucq, database, lineage).lineage(())


def answer_probabilities(
    result: QueryResult,
    probabilities: Mapping[int, float],
    method: str = "shannon",
) -> dict[tuple[Any, ...], float]:
    """Marginal probability of each answer from its lineage.

    ``method`` is ``"shannon"`` (exact, default) or ``"enumeration"``
    (exact brute force; only for tiny lineages).
    """
    from repro.lineage.enumeration import brute_force_probability
    from repro.lineage.shannon import shannon_probability

    output: dict[tuple[Any, ...], float] = {}
    for answer, formula in result.lineages().items():
        if method == "enumeration":
            output[answer] = brute_force_probability(formula, probabilities)
        else:
            output[answer] = shannon_probability(formula, probabilities)
    return output
