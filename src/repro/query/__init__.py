"""Query language: terms, atoms, conjunctive queries, UCQs, parser, evaluator."""

from repro.query.atoms import Atom, Comparison
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluator import (
    LineageProvider,
    NoLineage,
    QueryResult,
    answer_probabilities,
    boolean_lineage,
    evaluate_cq,
    evaluate_ucq,
)
from repro.query.parser import parse_query, parse_rule, to_datalog
from repro.query.terms import Constant, Term, Variable, is_constant, is_variable, make_term
from repro.query.ucq import UCQ, UnionOfConjunctiveQueries, as_ucq

__all__ = [
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "LineageProvider",
    "NoLineage",
    "QueryResult",
    "Term",
    "UCQ",
    "UnionOfConjunctiveQueries",
    "Variable",
    "answer_probabilities",
    "as_ucq",
    "boolean_lineage",
    "evaluate_cq",
    "evaluate_ucq",
    "is_constant",
    "is_variable",
    "make_term",
    "parse_query",
    "parse_rule",
    "to_datalog",
]
