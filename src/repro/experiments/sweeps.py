"""Domain-sweep experiments: Figs. 4–9 of the paper.

The paper scales the workload by restricting the domain of ``aid`` to
1000..10000 over the DBLP data (Sect. 5.1).  Here the same methodology is
applied to the synthetic DBLP dataset: a base dataset is generated once and
restricted to increasing ``aid`` prefixes; each sweep point rebuilds the
MVDB with the MarkoViews V1 and V2 (the configuration used in the Alchemy
comparison) and measures the quantity of the corresponding figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import MVQueryEngine
from repro.dblp.config import DblpConfig
from repro.dblp.generator import DblpData, generate_dblp
from repro.dblp.workload import advisor_of_student, build_sweep_mvdb, students_of_advisor
from repro.experiments.harness import ExperimentResult, time_call
from repro.lineage.dnf import DNF
from repro.mln.mcsat import McSatSampler
from repro.mln.model import mln_from_mvdb
from repro.mvindex.cc_intersect import cc_mv_intersect
from repro.mvindex.index import MVIndex
from repro.mvindex.intersect import mv_intersect
from repro.obdd.construct import build_obdd
from repro.obdd.order import order_from_permutations
from repro.query.evaluator import evaluate_ucq
from repro.serving.session import QuerySession


@dataclass(frozen=True)
class SweepSettings:
    """Scale knobs shared by the sweep experiments."""

    #: Base dataset size (number of research groups).
    group_count: int = 12
    #: Number of sweep points (prefixes of the aid domain).
    points: int = 4
    #: Random seed of the generator.
    seed: int = 0
    #: MC-SAT sampling effort for the Alchemy baseline.
    mcsat_samples: int = 12
    mcsat_burn_in: int = 3
    mcsat_max_flips: int = 400
    #: Sweep points (1-based indexes) beyond which Alchemy is not run — the
    #: paper could not scale Alchemy past aid = 10,000 either.
    alchemy_cutoff: int = 3


def base_dataset(settings: SweepSettings) -> DblpData:
    """The base synthetic dataset that every sweep restricts."""
    return generate_dblp(DblpConfig(group_count=settings.group_count, seed=settings.seed))


def sweep_aid_values(data: DblpData, points: int) -> list[int]:
    """Increasing prefixes of the aid domain (the x-axis of Figs. 4–9)."""
    max_aid = max(aid for aid, __ in data.database.rows("Author"))
    return [max(2, round(max_aid * (index + 1) / points)) for index in range(points)]


# --------------------------------------------------------------------- Fig. 4
def fig4_lineage_size(settings: SweepSettings | None = None) -> ExperimentResult:
    """Fig. 4: lineage size of W for each sweep point."""
    settings = settings or SweepSettings()
    data = base_dataset(settings)
    result = ExperimentResult(
        name="fig4_lineage_size",
        description="Lineage size of the MarkoViews (W) vs. aid domain",
        columns=["aid_domain", "lineage_size", "possible_tuples"],
    )
    for max_aid in sweep_aid_values(data, settings.points):
        workload = build_sweep_mvdb(data, max_aid, include_views=("V1", "V2"))
        engine = MVQueryEngine(workload.mvdb, build_index=False)
        result.add_row(
            aid_domain=max_aid,
            lineage_size=engine.w_lineage_size,
            possible_tuples=workload.mvdb.possible_tuple_count(),
        )
    return result


# ---------------------------------------------------------------- Figs. 5 & 6
def _alchemy_times(
    workload, query, settings: SweepSettings
) -> tuple[float, float]:
    """(total, sampling-only) seconds for the MC-SAT "Alchemy" baseline."""
    grounding_time, mln = time_call(lambda: mln_from_mvdb(workload.mvdb))
    lineage = _boolean_answer_lineage(workload, query)

    def sample() -> float:
        sampler = McSatSampler(mln, seed=settings.seed)
        sampler.sample_sat.max_flips = settings.mcsat_max_flips
        return sampler.estimate_query(
            lineage, samples=settings.mcsat_samples, burn_in=settings.mcsat_burn_in
        )

    sampling_time, __ = time_call(sample)
    return grounding_time + sampling_time, sampling_time


def _boolean_answer_lineage(workload, query) -> DNF:
    """Lineage (over the base tuples) of the Boolean version of a workload query."""
    base = workload.mvdb.base
    result = evaluate_ucq(query, base.database, base)
    lineage = DNF.false()
    for answer_lineage in result.lineages().values():
        lineage = lineage.or_(answer_lineage)
    return lineage


def _comparison(settings: SweepSettings, query_builder, name: str, description: str) -> ExperimentResult:
    data = base_dataset(settings)
    result = ExperimentResult(
        name=name,
        description=description,
        columns=[
            "aid_domain",
            "alchemy_total_s",
            "alchemy_sampling_s",
            "augmented_obdd_s",
            "mvindex_s",
            "mvindex_warm_s",
        ],
    )
    for position, max_aid in enumerate(sweep_aid_values(data, settings.points)):
        workload = build_sweep_mvdb(data, max_aid, include_views=("V1", "V2"))
        query = query_builder(workload)
        engine = MVQueryEngine(workload.mvdb, build_index=True)
        obdd_time, __ = time_call(lambda: engine.query(query, method="obdd"))
        index_time, __ = time_call(lambda: engine.query(query, method="mvindex"))
        # Warm path: the same query served from a session's result cache — the
        # latency a long-lived serving process pays for repeated traffic.
        session = QuerySession(engine)
        session.query(query, method="mvindex")
        warm_time, __ = time_call(lambda: session.query(query, method="mvindex"))
        if position < settings.alchemy_cutoff:
            alchemy_total, alchemy_sampling = _alchemy_times(workload, query, settings)
        else:
            alchemy_total, alchemy_sampling = float("nan"), float("nan")
        result.add_row(
            aid_domain=max_aid,
            alchemy_total_s=alchemy_total,
            alchemy_sampling_s=alchemy_sampling,
            augmented_obdd_s=obdd_time,
            mvindex_s=index_time,
            mvindex_warm_s=warm_time,
        )
    return result


def fig5_advisor_of_student(settings: SweepSettings | None = None) -> ExperimentResult:
    """Fig. 5: Alchemy vs augmented OBDD vs MV-index for "advisor of a student"."""
    settings = settings or SweepSettings()
    return _comparison(
        settings,
        lambda workload: advisor_of_student("Student 0-0"),
        name="fig5_advisor_of_student",
        description="Query time: advisor of a student (Alchemy / augmented OBDD / MV-index)",
    )


def fig6_students_of_advisor(settings: SweepSettings | None = None) -> ExperimentResult:
    """Fig. 6: the same comparison for "all students of an advisor"."""
    settings = settings or SweepSettings()
    return _comparison(
        settings,
        lambda workload: students_of_advisor("Advisor 0"),
        name="fig6_students_of_advisor",
        description="Query time: students of an advisor (Alchemy / augmented OBDD / MV-index)",
    )


# ---------------------------------------------------------------- Figs. 7 & 8
def fig7_fig8_obdd_construction(settings: SweepSettings | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    """Figs. 7 & 8: OBDD size of V2's W and construction time, CUDD vs ConOBDD."""
    settings = settings or SweepSettings()
    data = base_dataset(settings)
    sizes = ExperimentResult(
        name="fig7_obdd_size",
        description="OBDD size of W (denial view V2) vs. aid1 domain",
        columns=["aid_domain", "obdd_size", "obdd_width"],
    )
    times = ExperimentResult(
        name="fig8_obdd_construction_time",
        description="OBDD construction time: CUDD-style synthesis vs ConOBDD concatenation",
        columns=["aid_domain", "cudd_synthesis_s", "mv_concatenation_s", "synthesis_apply_steps", "concat_apply_steps"],
    )
    for max_aid in sweep_aid_values(data, settings.points):
        workload = build_sweep_mvdb(data, max_aid, include_views=("V2",))
        engine = MVQueryEngine(workload.mvdb, build_index=False)
        lineage = engine.w_lineage
        order = order_from_permutations(engine.indb)
        concat_time, concat = time_call(lambda: build_obdd(lineage, order, method="concat"))
        synthesis_time, synthesis = time_call(
            lambda: build_obdd(lineage, order, method="synthesis")
        )
        sizes.add_row(aid_domain=max_aid, obdd_size=concat.size, obdd_width=concat.width)
        times.add_row(
            aid_domain=max_aid,
            cudd_synthesis_s=synthesis_time,
            mv_concatenation_s=concat_time,
            synthesis_apply_steps=synthesis.manager.apply_steps,
            concat_apply_steps=concat.manager.apply_steps,
        )
    return sizes, times


# -------------------------------------------------------------------- Fig. 9
def fig9_intersection(
    settings: SweepSettings | None = None, query_tuples: int = 20, repeats: int = 5
) -> ExperimentResult:
    """Fig. 9: MVIntersect vs CC-MVIntersect on a worst-case query.

    The worst-case query lineage touches every component of the MV-index, so
    the whole index must be traversed (as in the paper's setup, where the
    20-tuple query rendered all pre-computations useless).
    """
    settings = settings or SweepSettings()
    data = base_dataset(settings)
    result = ExperimentResult(
        name="fig9_intersection",
        description="Worst-case query: MVIntersect vs cache-conscious CC-MVIntersect",
        columns=["aid_domain", "index_nodes", "mvintersect_s", "cc_mvintersect_s"],
    )
    for max_aid in sweep_aid_values(data, settings.points):
        workload = build_sweep_mvdb(data, max_aid, include_views=("V1", "V2"))
        engine = MVQueryEngine(workload.mvdb, build_index=True)
        index: MVIndex = engine.mv_index
        # One tuple from every component, plus extra variables up to the
        # requested query size: the traversal must visit the entire index.
        touched = [
            min(component.variables) for component in index.components.values()
        ]
        extra = [v for v in sorted(index.variables()) if v not in touched]
        query_lineage = DNF([[variable] for variable in touched + extra[: max(0, query_tuples - len(touched))]])
        probabilities = engine.probabilities
        # Warm both algorithms once: the flat (cache-conscious) node layout is
        # part of the offline index in the paper, so its one-time construction
        # is excluded from the online query time being compared here.
        mv_value = mv_intersect(index, query_lineage, probabilities)
        cc_value = cc_mv_intersect(index, query_lineage, probabilities)
        assert abs(mv_value - cc_value) < 1e-6
        # Sub-millisecond operations: report the best of several repetitions to
        # suppress interpreter warm-up noise.
        mv_time = min(
            time_call(lambda: mv_intersect(index, query_lineage, probabilities))[0]
            for __ in range(repeats)
        )
        cc_time = min(
            time_call(lambda: cc_mv_intersect(index, query_lineage, probabilities))[0]
            for __ in range(repeats)
        )
        result.add_row(
            aid_domain=max_aid,
            index_nodes=index.size,
            mvintersect_s=mv_time,
            cc_mvintersect_s=cc_time,
        )
    return result
