"""Full-dataset experiments: Fig. 1 inventory, Figs. 10–11, and §5.4 scalability.

These run on the "full" synthetic DBLP dataset (all three MarkoViews), build
the MV-index offline once, and then measure per-query latency for the two
query workloads of Sect. 5.4: *students of an advisor X* (Fig. 10) and
*affiliation of an author Y* (Fig. 11).  Queries are served through a
:class:`~repro.serving.session.QuerySession`, so every figure also reports
the *warm* (result-cached) latency next to the cold one, and
:func:`serving_cold_warm` measures the batch-serving path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client import ProbDB
from repro.core.engine import MVQueryEngine
from repro.dblp.config import DblpConfig
from repro.dblp.workload import (
    DblpWorkload,
    affiliation_of_author,
    build_mvdb,
    students_of_advisor,
)
from repro.experiments.harness import ExperimentResult, query_row, time_call


@dataclass(frozen=True)
class FullDatasetSettings:
    """Scale of the full-dataset experiments.

    ``backend`` is a storage-backend spec (``None``/``"memory"``,
    ``"sqlite"``, ``"sqlite:<path>"``) applied to the generated dataset and
    the MVDB — the sqlite backend is what makes the 10^5–10^6-tuple points
    of the scalability sweep feasible.
    """

    group_count: int = 24
    seed: int = 0
    query_count: int = 10
    backend: str | None = None


def full_workload(settings: FullDatasetSettings | None = None) -> DblpWorkload:
    """The full synthetic DBLP workload (all MarkoViews)."""
    settings = settings or FullDatasetSettings()
    config = DblpConfig(group_count=settings.group_count, seed=settings.seed)
    return build_mvdb(config, backend=settings.backend)


# --------------------------------------------------------------------- Fig. 1
def fig1_dataset_inventory(settings: FullDatasetSettings | None = None) -> ExperimentResult:
    """Fig. 1 (tables): row counts of every base, derived and probabilistic relation."""
    workload = full_workload(settings)
    result = ExperimentResult(
        name="fig1_dataset_inventory",
        description="Synthetic DBLP inventory (cf. the table sizes of Fig. 1)",
        columns=["relation", "rows"],
    )
    for relation, count in workload.size_report().items():
        result.add_row(relation=relation, rows=count)
    return result


# ------------------------------------------------------------- Figs. 10 & 11
def _query_latencies(
    db: ProbDB,
    queries: list,
    name: str,
    description: str,
) -> ExperimentResult:
    """Cold and warm per-query latency through the client facade.

    ``seconds`` is the cold latency (relational round trip plus MV-index
    intersection); ``warm_seconds`` re-issues the same query and measures the
    result-cache path a production serving process would hit.  Both come
    straight from the typed result's own wall clock.
    """
    result = ExperimentResult(
        name=name,
        description=description,
        columns=["query", "seconds", "warm_seconds", "answers", "steps"],
    )
    for position, query in enumerate(queries, start=1):
        cold = db.query(query, method="mvindex")
        warm = db.query(query, method="mvindex")
        if cold.cached or not warm.cached:  # pragma: no cover - serving invariant
            raise AssertionError("cold/warm cache provenance is inverted")
        row = query_row(f"q{position}", cold)
        row.pop("cached")
        row["warm_seconds"] = warm.wall_time
        result.add_row(**row)
    return result


def fig10_students_of_advisor(
    settings: FullDatasetSettings | None = None,
    workload: DblpWorkload | None = None,
    engine: MVQueryEngine | None = None,
) -> ExperimentResult:
    """Fig. 10: latency of ten "students of advisor X" queries on the full dataset."""
    settings = settings or FullDatasetSettings()
    workload = workload or full_workload(settings)
    engine = engine or MVQueryEngine(workload.mvdb)
    advisors = [f"Advisor {group}" for group in range(settings.query_count)]
    queries = [students_of_advisor(name) for name in advisors]
    return _query_latencies(
        ProbDB(engine),
        queries,
        name="fig10_students_of_advisor",
        description="Per-query latency: students of an advisor (MV-index)",
    )


def fig11_affiliation_of_author(
    settings: FullDatasetSettings | None = None,
    workload: DblpWorkload | None = None,
    engine: MVQueryEngine | None = None,
) -> ExperimentResult:
    """Fig. 11: latency of ten "affiliation of author Y" queries on the full dataset."""
    settings = settings or FullDatasetSettings()
    workload = workload or full_workload(settings)
    engine = engine or MVQueryEngine(workload.mvdb)
    authors = [f"Student {group}-0" for group in range(settings.query_count)]
    queries = [affiliation_of_author(name) for name in authors]
    return _query_latencies(
        ProbDB(engine),
        queries,
        name="fig11_affiliation_of_author",
        description="Per-query latency: affiliation of an author (MV-index)",
    )


# ---------------------------------------------------------------- §5.4 scale
#: Above this many W clauses the 2-worker rebuild is skipped (recorded 0.0):
#: at the large sweep points it would only double an already-long build.
PARALLEL_REBUILD_CLAUSE_LIMIT = 20_000


def scalability_index_build(
    settings: FullDatasetSettings | None = None,
    workload: DblpWorkload | None = None,
    tuple_targets: "tuple[int, ...] | None" = None,
) -> ExperimentResult:
    """§5.4: offline cost and size of building the MV-index, along a tuples axis.

    One row per dataset scale.  With ``tuple_targets`` (approximate total
    tuple counts, e.g. ``(10_000, 100_000, 1_000_000)``) the synthetic DBLP
    generator is re-run at group counts extrapolated from ``settings`` to hit
    each target; otherwise a single row at ``settings.group_count`` (or the
    supplied ``workload``) is measured.  ``index_build_s`` is the end-to-end
    offline cost (translate + lineage of ``W`` + serial index compile).
    """
    settings = settings or FullDatasetSettings()
    result = ExperimentResult(
        name="scalability_index_build",
        description="Offline MV-index construction along the dataset-size axis",
        columns=[
            "tuples",
            "groups",
            "backend",
            "possible_tuples",
            "w_lineage_clauses",
            "index_nodes",
            "index_components",
            "translate_and_lineage_s",
            "index_build_s",
            "index_build_serial_s",
            "index_build_workers2_s",
        ],
    )

    if tuple_targets is None:
        workloads = [workload or full_workload(settings)]
    else:
        base = full_workload(settings)
        per_group = max(1, base.mvdb.database.total_rows() // settings.group_count)
        workloads = []
        for target in tuple_targets:
            groups = max(1, round(target / per_group))
            scaled = FullDatasetSettings(
                group_count=groups,
                seed=settings.seed,
                query_count=settings.query_count,
                backend=settings.backend,
            )
            workloads.append(full_workload(scaled))

    from repro.mvindex.index import MVIndex

    for load in workloads:
        build_seconds, engine = time_call(lambda: MVQueryEngine(load.mvdb, build_index=False))
        serial_seconds, index = time_call(
            lambda: MVIndex(engine.w_lineage, engine.probabilities, engine.order)
            if not engine.w_lineage.is_false
            else None
        )
        if index is not None and engine.w_lineage_size <= PARALLEL_REBUILD_CLAUSE_LIMIT:
            # 2-worker sharded compile on the same basis (lineage and order in
            # hand); includes pool startup and shard-merge overhead — what a
            # cold offline build pays.
            parallel_seconds, __ = time_call(
                lambda: MVIndex(
                    engine.w_lineage, engine.probabilities, engine.order, workers=2
                )
            )
        else:
            parallel_seconds = 0.0
        result.add_row(
            tuples=load.mvdb.database.total_rows(),
            groups=load.config.group_count,
            backend=load.mvdb.database.backend.name,
            possible_tuples=load.mvdb.possible_tuple_count(),
            w_lineage_clauses=engine.w_lineage_size,
            index_nodes=index.size if index is not None else 0,
            index_components=index.component_count() if index is not None else 0,
            translate_and_lineage_s=build_seconds,
            index_build_s=build_seconds + serial_seconds,
            index_build_serial_s=serial_seconds,
            index_build_workers2_s=parallel_seconds,
        )
    return result


# ------------------------------------------------------------ serving layer
def serving_http_loopback(
    settings: FullDatasetSettings | None = None,
    workload: DblpWorkload | None = None,
    engine: MVQueryEngine | None = None,
) -> ExperimentResult:
    """Over-the-wire serving: closed-loop HTTP load against a loopback server.

    Starts a :class:`repro.serving.server.ProbServer` on an ephemeral
    loopback port and drives it with the zipf-skewed DBLP workload mix
    (:mod:`repro.serving.loadgen`), one cold round and one warm round.
    Reports throughput, latency percentiles and the per-tier cache hit
    counts of the dispatcher — the figures the ``bench-serving`` script
    records to ``benchmarks/results/serving_http.csv``.
    """
    from repro.serving.loadgen import WorkloadMix, run_closed
    from repro.serving.server import ProbServer

    settings = settings or FullDatasetSettings()
    workload = workload or full_workload(settings)
    engine = engine or MVQueryEngine(workload.mvdb)
    result = ExperimentResult(
        name="serving_http",
        description="Closed-loop HTTP serving over loopback (cold round, then warm)",
        columns=[
            "round",
            "concurrency",
            "requests",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "rejected",
            "errors",
            "string_hits",
            "result_hits",
        ],
    )
    mix = WorkloadMix(entities=max(2, min(settings.query_count, settings.group_count)))
    server = ProbServer(engine, workers=2, max_queue=64).start()
    try:
        previous = server.dispatcher.cache_stats()
        for label, duration in (("cold", 0.5), ("warm", 1.5)):
            report = run_closed(
                server.url, duration_s=duration, concurrency=4, mix=mix, seed=settings.seed
            )
            # The dispatcher's counters are cumulative since server start;
            # report per-round deltas so the warm row shows only its own hits.
            cache = server.dispatcher.cache_stats()
            result.add_row(
                round=label,
                concurrency=report.concurrency,
                requests=report.requests,
                qps=report.qps,
                p50_ms=report.latency_ms["p50_ms"],
                p95_ms=report.latency_ms["p95_ms"],
                p99_ms=report.latency_ms["p99_ms"],
                rejected=report.rejected,
                errors=report.server_errors + report.transport_errors,
                string_hits=cache["string"]["hits"] - previous["string"]["hits"],
                result_hits=cache["result"]["hits"] - previous["result"]["hits"],
            )
            previous = cache
    finally:
        server.stop()
    return result


def serving_cold_warm(
    settings: FullDatasetSettings | None = None,
    workload: DblpWorkload | None = None,
    engine: MVQueryEngine | None = None,
) -> ExperimentResult:
    """Cold-versus-warm batch serving on the full dataset.

    Runs the Figs. 10/11 query mix twice through
    :meth:`~repro.serving.session.QuerySession.query_batch`: the first round
    pays one shared relational evaluation pass plus the MV-index
    intersections, the second is answered entirely from the result cache.
    Also measures the artifact round trip (save + cold start from disk) the
    ``save-index`` / ``load-index`` CLI commands rely on.
    """
    import os
    import tempfile

    from repro.client import connect

    settings = settings or FullDatasetSettings()
    workload = workload or full_workload(settings)
    engine = engine or MVQueryEngine(workload.mvdb)
    db = ProbDB(engine)
    queries = [students_of_advisor(f"Advisor {index}") for index in range(settings.query_count)]
    queries += [affiliation_of_author(f"Student {index}-0") for index in range(settings.query_count)]

    handle, path = tempfile.mkstemp(suffix=".json.gz")
    os.close(handle)
    try:
        save_seconds, __ = time_call(lambda: db.save(path))
        artifact_bytes = os.path.getsize(path)
        load_seconds, served = time_call(lambda: connect(artifact=path))
    finally:
        os.unlink(path)

    cold_seconds, cold_results = time_call(lambda: served.query_batch(queries))
    warm_seconds, warm_results = time_call(lambda: served.query_batch(queries))
    if [r.to_dict() for r in cold_results] != [r.to_dict() for r in warm_results]:
        raise AssertionError(  # pragma: no cover - serving invariant
            "warm batch results diverged from the cold batch"
        )
    info = served.session.cache_info()

    result = ExperimentResult(
        name="serving_cold_warm",
        description="Batch serving from a saved MV-index artifact: cold vs warm",
        columns=[
            "batch_queries",
            "answers",
            "artifact_bytes",
            "save_s",
            "load_s",
            "cold_batch_s",
            "warm_batch_s",
            "warm_speedup",
            "relational_passes",
            "result_hits",
        ],
    )
    result.add_row(
        batch_queries=len(queries),
        answers=sum(len(answers) for answers in cold_results),
        artifact_bytes=artifact_bytes,
        save_s=save_seconds,
        load_s=load_seconds,
        cold_batch_s=cold_seconds,
        warm_batch_s=warm_seconds,
        warm_speedup=cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        relational_passes=info["relational_passes"],
        result_hits=info["result_hits"],
    )
    return result
