"""Experiment harness: timing, result tables, CSV output.

Every experiment runner in :mod:`repro.experiments` returns an
:class:`ExperimentResult` — a named table with an x-column (domain size or
query id) and one column per method/series, matching the series plotted by
the corresponding figure of the paper.  Results can be pretty-printed (the
benchmark harness does so) and written as CSV under ``benchmarks/results/``.

Runners that go through the client facade use :func:`query_row` to turn a
typed :class:`repro.QueryResult` into a table row — the result already
carries its own wall time and work counters, so no stopwatch bracketing is
needed around facade queries.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.results import QueryResult


def time_call(function: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock a call; returns ``(seconds, result)``."""
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def query_row(query_id: str, result: "QueryResult") -> dict[str, Any]:
    """A table row from a typed query result (the facade-era ``time_call``).

    The typed result measures its own serving time and work, so experiment
    code no longer brackets engine calls with a stopwatch; the returned
    row keys match the columns the figure runners report.
    """
    return {
        "query": query_id,
        "seconds": result.wall_time,
        "answers": len(result),
        "cached": result.cached,
        "steps": result.steps,
    }


@dataclass
class ExperimentResult:
    """A small results table: one row per x value, one column per series."""

    name: str
    description: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row (keyed by column name)."""
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    # -------------------------------------------------------------- rendering
    def to_text(self) -> str:
        """Render the result as a fixed-width text table."""
        header = [self.name, self.description, ""]
        widths = {
            column: max(len(column), *(len(_fmt(row.get(column))) for row in self.rows))
            if self.rows
            else len(column)
            for column in self.columns
        }
        line = "  ".join(column.ljust(widths[column]) for column in self.columns)
        header.append(line)
        header.append("  ".join("-" * widths[column] for column in self.columns))
        for row in self.rows:
            header.append(
                "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in self.columns)
            )
        return "\n".join(header)

    def write_csv(self, directory: str | Path) -> Path:
        """Write the table as ``<directory>/<name>.csv`` and return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({column: row.get(column) for column in self.columns})
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentResult({self.name}, {len(self.rows)} rows)"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def report(results: Iterable[ExperimentResult], directory: str | Path | None = None) -> str:
    """Render several results and optionally persist them as CSV."""
    blocks = []
    for result in results:
        blocks.append(result.to_text())
        if directory is not None:
            result.write_csv(directory)
    return "\n\n".join(blocks)


#: Default directory where benchmark runs drop their CSV series.
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
