"""Experiment runners that regenerate every table and figure of Sect. 5."""

from repro.experiments.harness import DEFAULT_RESULTS_DIR, ExperimentResult, report, time_call
from repro.experiments.queries import (
    FullDatasetSettings,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    full_workload,
    scalability_index_build,
    serving_cold_warm,
    serving_http_loopback,
)
from repro.experiments.sweeps import (
    SweepSettings,
    base_dataset,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig6_students_of_advisor,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    sweep_aid_values,
)

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "ExperimentResult",
    "FullDatasetSettings",
    "SweepSettings",
    "base_dataset",
    "fig1_dataset_inventory",
    "fig10_students_of_advisor",
    "fig11_affiliation_of_author",
    "fig4_lineage_size",
    "fig5_advisor_of_student",
    "fig6_students_of_advisor",
    "fig7_fig8_obdd_construction",
    "fig9_intersection",
    "full_workload",
    "report",
    "scalability_index_build",
    "serving_cold_warm",
    "serving_http_loopback",
    "sweep_aid_values",
    "time_call",
]
