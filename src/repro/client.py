"""One front door: ``repro.connect()`` / ``repro.open()`` and :class:`ProbDB`.

The paper's pipeline — MVDB → Theorem 1 translation → MV-index compile →
online query answering — used to be reachable only by stitching together
the engine, parser, session and artifact submodules.  :class:`ProbDB` owns
all of it behind one client object::

    import repro

    db = repro.connect(mvdb)                 # translate + compile offline
    result = db.query("Q(x) :- R(x), S(x)")  # typed QueryResult
    db.save("index.json.gz")                 # persist the offline products

    served = repro.open("index.json.gz")     # cold start in a serving process
    served.query_batch(queries, workers=4)   # one shared relational pass

Queries may be datalog strings or parsed UCQ objects; results are typed
:class:`~repro.results.QueryResult` / :class:`~repro.results.Answer`
objects carrying probabilities, lineage sizes, OBDD work counters,
cache-hit provenance and wall time (``.to_dict()`` recovers the legacy
``{answer: probability}`` map).  Inference methods are resolved through
the pluggable registry in :mod:`repro.methods`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.engine import MVQueryEngine
from repro.core.mvdb import MVDB
from repro.errors import ClientError
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.ucq import UCQ
from repro.results import QueryResult
from repro.serving.artifact import load_engine, save_engine
from repro.serving.session import DEFAULT_CACHE_SIZE, PreparedQuery, QuerySession

#: Anything the client accepts as a query: a datalog string or a parsed query.
QueryLike = "str | UCQ | ConjunctiveQuery"


def _as_query(query: Any) -> UCQ | ConjunctiveQuery:
    """Parse datalog strings; pass parsed queries through."""
    if isinstance(query, str):
        return parse_query(query)
    return query


class ProbDB:
    """A probabilistic database client: one engine, one caching session.

    Construct through :func:`repro.connect` (from an MVDB) or
    :func:`repro.open` (from a saved artifact).  All query entry points are
    thread-safe; the underlying engine and session remain reachable via
    :attr:`engine` / :attr:`session` for power users, and everything the
    old five-module surface could do is available on this one object.
    """

    def __init__(self, engine: MVQueryEngine, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._engine = engine
        self._session = QuerySession(engine, cache_size=cache_size)

    # -------------------------------------------------------------- plumbing
    @property
    def engine(self) -> MVQueryEngine:
        """The underlying query engine (advanced use)."""
        return self._engine

    @property
    def session(self) -> QuerySession:
        """The caching serving session every query goes through."""
        return self._session

    # --------------------------------------------------------------- queries
    def query(self, query: QueryLike, method: str = "mvindex") -> QueryResult:
        """Typed probabilities of every answer of ``query`` (cached)."""
        return self._session.execute(_as_query(query), method=method)

    def boolean_probability(self, query: QueryLike, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations).

        Raises :class:`~repro.errors.InferenceError` when the query has
        free head variables.
        """
        return self._session.boolean_probability(_as_query(query), method=method)

    def prepare(self, query: QueryLike) -> PreparedQuery:
        """Pay the relational round trip now; returns a reusable handle.

        The handle's :meth:`~repro.serving.session.PreparedQuery.execute`
        runs the (cached) probability stage under any registered method.
        """
        return self._session.prepare(_as_query(query))

    def query_batch(
        self,
        queries: Sequence[QueryLike],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer many queries with one shared relational evaluation pass."""
        return self._session.execute_batch(
            [_as_query(query) for query in queries], method=method, workers=workers
        )

    def warm(self) -> None:
        """Precompute everything lazy so concurrent queries only read."""
        self._session.warm()

    # ----------------------------------------------------------- persistence
    def save(self, path: str | Path) -> Path:
        """Persist the offline pipeline products; reload with :func:`repro.open`.

        Paths ending in ``.gz`` are gzip-compressed.  The artifact restores
        bit-identically: a reopened database answers every query with
        exactly the probabilities this one computes.
        """
        return save_engine(self._engine, path)

    # --------------------------------------------------------------- mutation
    def extend(self, mvdb: MVDB) -> list[int]:
        """Extend to a superset of MarkoViews over the same base data.

        Only the new components of ``W`` are compiled
        (:meth:`~repro.core.engine.MVQueryEngine.extend_views`); the session
        caches are invalidated, since probabilities computed against the old
        view set no longer hold.  Returns the added component keys.
        """
        added = self._engine.extend_views(mvdb)
        self._session.invalidate()
        return added

    # ------------------------------------------------------------ inspection
    def stats(self) -> dict[str, Any]:
        """Engine, index and cache statistics as one flat dictionary."""
        from repro import methods as method_registry

        engine = self._engine
        index = engine.mv_index
        info: dict[str, Any] = {
            "possible_tuples": engine.indb.tuple_count(),
            "w_lineage_clauses": engine.w_lineage_size,
            "index_components": index.component_count() if index is not None else 0,
            "index_nodes": index.size if index is not None else 0,
            "has_negative_weights": engine.has_nonstandard_probabilities,
            "methods": list(method_registry.names()),
        }
        info.update(self._session.cache_info())
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbDB({self._engine!r})"


def connect(
    mvdb: MVDB | None = None,
    *,
    artifact: str | Path | None = None,
    build_index: bool = True,
    permutations: Mapping[str, Sequence[str]] | None = None,
    construction: str = "concat",
    workers: int | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> ProbDB:
    """Open a probabilistic database: the single entry point of the library.

    Exactly one source must be given:

    * ``mvdb`` — run the offline pipeline now (Theorem 1 translation,
      lineage of ``W``, MV-index compilation; ``workers`` shards the
      compile across a process pool);
    * ``artifact`` — cold-start from a file written by :meth:`ProbDB.save`
      without recompiling anything (``build_index`` / ``permutations`` /
      ``construction`` / ``workers`` do not apply and must be left default).

    ``cache_size`` bounds each of the session's result/lineage LRU caches.
    """
    if (mvdb is None) == (artifact is None):
        raise ClientError("connect() needs exactly one of: an MVDB, or artifact=<path>")
    if artifact is not None:
        if build_index is not True or permutations is not None or workers is not None \
                or construction != "concat":
            raise ClientError(
                "build_index/permutations/construction/workers only apply when "
                "building from an MVDB; the artifact already fixes them"
            )
        engine = load_engine(artifact)
    else:
        engine = MVQueryEngine(
            mvdb,
            build_index=build_index,
            permutations=permutations,
            construction=construction,
            workers=workers,
        )
    return ProbDB(engine, cache_size=cache_size)


def open_artifact(path: str | Path, cache_size: int = DEFAULT_CACHE_SIZE) -> ProbDB:
    """Cold-start a :class:`ProbDB` from a saved artifact (``repro.open``)."""
    return connect(artifact=path, cache_size=cache_size)
