"""One front door: ``repro.connect()`` / ``repro.open()`` and :class:`ProbDB`.

The paper's pipeline — MVDB → Theorem 1 translation → MV-index compile →
online query answering — used to be reachable only by stitching together
the engine, parser, session and artifact submodules.  :class:`ProbDB` owns
all of it behind one client object::

    import repro

    db = repro.connect(mvdb)                 # translate + compile offline
    result = db.query("Q(x) :- R(x), S(x)")  # typed QueryResult
    db.save("index.json.gz")                 # persist the offline products

    served = repro.open("index.json.gz")     # cold start in a serving process
    served.query_batch(queries, workers=4)   # one shared relational pass

Queries may be datalog strings or parsed UCQ objects; results are typed
:class:`~repro.results.QueryResult` / :class:`~repro.results.Answer`
objects carrying probabilities, lineage sizes, OBDD work counters,
cache-hit provenance and wall time (``.to_dict()`` recovers the legacy
``{answer: probability}`` map).  Inference methods are resolved through
the pluggable registry in :mod:`repro.methods`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro import errors as _errors
from repro.core.engine import MVQueryEngine
from repro.core.mvdb import MVDB
from repro.errors import ClientError, InferenceError, ServingError
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query, to_datalog
from repro.query.ucq import UCQ, as_ucq
from repro.results import QueryResult
from repro.serving.artifact import load_engine, save_engine
from repro.serving.session import DEFAULT_CACHE_SIZE, PreparedQuery, QuerySession

#: Anything the client accepts as a query: a datalog string or a parsed query.
QueryLike = "str | UCQ | ConjunctiveQuery"


def _as_query(query: Any) -> UCQ | ConjunctiveQuery:
    """Parse datalog strings; pass parsed queries through."""
    if isinstance(query, str):
        return parse_query(query)
    return query


class ProbDB:
    """A probabilistic database client: one engine, one caching session.

    Construct through :func:`repro.connect` (from an MVDB) or
    :func:`repro.open` (from a saved artifact).  All query entry points are
    thread-safe; the underlying engine and session remain reachable via
    :attr:`engine` / :attr:`session` for power users, and everything the
    old five-module surface could do is available on this one object.
    """

    def __init__(self, engine: MVQueryEngine, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._engine = engine
        self._session = QuerySession(engine, cache_size=cache_size)

    # -------------------------------------------------------------- plumbing
    @property
    def engine(self) -> MVQueryEngine:
        """The underlying query engine (advanced use)."""
        return self._engine

    @property
    def session(self) -> QuerySession:
        """The caching serving session every query goes through."""
        return self._session

    # --------------------------------------------------------------- queries
    def query(self, query: QueryLike, method: str = "mvindex") -> QueryResult:
        """Typed probabilities of every answer of ``query`` (cached)."""
        return self._session.execute(_as_query(query), method=method)

    def boolean_probability(self, query: QueryLike, method: str = "mvindex") -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations).

        Raises :class:`~repro.errors.InferenceError` when the query has
        free head variables.
        """
        return self._session.boolean_probability(_as_query(query), method=method)

    def prepare(self, query: QueryLike) -> PreparedQuery:
        """Pay the relational round trip now; returns a reusable handle.

        The handle's :meth:`~repro.serving.session.PreparedQuery.execute`
        runs the (cached) probability stage under any registered method.
        """
        return self._session.prepare(_as_query(query))

    def query_batch(
        self,
        queries: Sequence[QueryLike],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer many queries with one shared relational evaluation pass."""
        return self._session.execute_batch(
            [_as_query(query) for query in queries], method=method, workers=workers
        )

    def warm(self) -> None:
        """Precompute everything lazy so concurrent queries only read."""
        self._session.warm()

    # ----------------------------------------------------------- persistence
    def save(self, path: str | Path) -> Path:
        """Persist the offline pipeline products; reload with :func:`repro.open`.

        Paths ending in ``.gz`` are gzip-compressed.  The artifact restores
        bit-identically: a reopened database answers every query with
        exactly the probabilities this one computes.
        """
        return save_engine(self._engine, path)

    # --------------------------------------------------------------- mutation
    def extend(self, mvdb: MVDB) -> list[int]:
        """Extend to a superset of MarkoViews over the same base data.

        Only the new components of ``W`` are compiled
        (:meth:`~repro.core.engine.MVQueryEngine.extend_views`); the session
        caches are invalidated, since probabilities computed against the old
        view set no longer hold.  Returns the added component keys.
        """
        added = self._engine.extend_views(mvdb)
        self._session.invalidate()
        return added

    def append_facts(self, facts: Mapping[str, Any]) -> int:
        """Stream new base facts into the database; returns the tuple count.

        ``facts`` maps relation names to fact lists: plain rows for
        deterministic relations, ``(row, weight)`` pairs for probabilistic
        ones.  The engine patches its lineage and OBDD index incrementally
        (:meth:`~repro.core.engine.MVQueryEngine.append_facts`) — no view
        is recompiled from scratch — and the session caches are
        invalidated.  Existing tuples cannot change weight through appends.
        """
        added = self._engine.append_facts(facts)
        self._session.invalidate()
        return added

    # ------------------------------------------------------------ inspection
    def stats(self) -> dict[str, Any]:
        """Engine, index and cache statistics as one flat dictionary."""
        from repro import methods as method_registry

        engine = self._engine
        index = engine.mv_index
        info: dict[str, Any] = {
            "possible_tuples": engine.indb.tuple_count(),
            "w_lineage_clauses": engine.w_lineage_size,
            "index_components": index.component_count() if index is not None else 0,
            "index_nodes": index.size if index is not None else 0,
            "has_negative_weights": engine.has_nonstandard_probabilities,
            "methods": list(method_registry.names()),
        }
        info.update(self._session.cache_info())
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbDB({self._engine!r})"


def connect(
    mvdb: MVDB | None = None,
    *,
    artifact: str | Path | None = None,
    build_index: bool = True,
    permutations: Mapping[str, Sequence[str]] | None = None,
    construction: str = "concat",
    workers: int | None = None,
    backend: Any = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> ProbDB:
    """Open a probabilistic database: the single entry point of the library.

    Exactly one source must be given:

    * ``mvdb`` — run the offline pipeline now (Theorem 1 translation,
      lineage of ``W``, MV-index compilation; ``workers`` shards the
      compile across a process pool);
    * ``artifact`` — cold-start from a file written by :meth:`ProbDB.save`
      without recompiling anything (``build_index`` / ``permutations`` /
      ``construction`` / ``workers`` / ``backend`` do not apply and must be
      left default).

    ``backend`` selects the storage backend of the translated INDB the
    engine evaluates queries on: ``"memory"`` (default), ``"sqlite"`` (a
    temporary disk file) or ``"sqlite:<path>"`` — see
    :func:`repro.db.backend.resolve_backend`.  ``cache_size`` bounds each
    of the session's result/lineage LRU caches.
    """
    if (mvdb is None) == (artifact is None):
        raise ClientError("connect() needs exactly one of: an MVDB, or artifact=<path>")
    if artifact is not None:
        if build_index is not True or permutations is not None or workers is not None \
                or construction != "concat" or backend is not None:
            raise ClientError(
                "build_index/permutations/construction/workers/backend only apply "
                "when building from an MVDB; the artifact already fixes them"
            )
        engine = load_engine(artifact)
    else:
        engine = MVQueryEngine(
            mvdb,
            build_index=build_index,
            permutations=permutations,
            construction=construction,
            workers=workers,
            backend=backend,
        )
    return ProbDB(engine, cache_size=cache_size)


def open_artifact(path: str | Path, cache_size: int = DEFAULT_CACHE_SIZE) -> ProbDB:
    """Cold-start a :class:`ProbDB` from a saved artifact (``repro.open``)."""
    return connect(artifact=path, cache_size=cache_size)


# ----------------------------------------------------------------- transport
#: Wire error type → library exception class, e.g. ``"parse_error"`` →
#: :class:`~repro.errors.ParseError`; built from the whole hierarchy with
#: the same :func:`repro.errors.wire_name` the server writes with, so the
#: remote client re-raises exactly what the in-process facade would raise.
_WIRE_ERRORS: dict[str, type] = {
    _errors.wire_name(value): value
    for value in vars(_errors).values()
    if isinstance(value, type) and issubclass(value, _errors.ReproError)
}


class RemoteProbDB:
    """A thin HTTP-backed mirror of :class:`ProbDB` (``repro.connect_remote``).

    Speaks the JSON protocol of :class:`repro.serving.server.ProbServer`.
    Queries may be datalog strings or parsed UCQ objects (serialized with
    :func:`repro.query.to_datalog`); results come back as the same typed
    :class:`~repro.results.QueryResult` objects the in-process facade
    returns, with byte-identical answers and probabilities.  Server-side
    library errors are re-raised client-side as the matching
    :class:`~repro.errors.ReproError` subclass, so code written against the
    in-process facade runs unchanged against either transport.
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self._url = url.rstrip("/")
        self._timeout = timeout
        health = self.healthz()
        if health.get("status") != "ok":
            raise ServingError(f"server at {self._url} is not healthy: {health!r}")

    # ------------------------------------------------------------------- wire
    @property
    def url(self) -> str:
        """The server's base URL."""
        return self._url

    def _request(self, path: str, payload: dict[str, Any] | None = None) -> Any:
        request = urllib.request.Request(
            self._url + path,
            data=None if payload is None else json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if payload is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            self._raise_wire_error(exc)
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {self._url}: {exc.reason}") from None
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServingError(f"invalid JSON from {self._url + path}: {exc}") from None

    def _raise_wire_error(self, exc: "urllib.error.HTTPError") -> "Any":
        try:
            document = json.loads(exc.read())
            error = document["error"]
            error_type, message = error["type"], error["message"]
        except Exception:
            raise ServingError(f"HTTP {exc.code} from {self._url}") from None
        exception_class = _WIRE_ERRORS.get(error_type)
        if exception_class is _errors.AdmissionError:
            retry_after = float(exc.headers.get("Retry-After", 1.0))
            raise _errors.AdmissionError(message, retry_after=retry_after) from None
        if exception_class is not None:
            raise exception_class(message) from None
        raise ServingError(f"HTTP {exc.code} ({error_type}): {message}") from None

    @staticmethod
    def _as_wire_query(query: Any) -> str:
        return query if isinstance(query, str) else to_datalog(query)

    # ---------------------------------------------------------------- queries
    def query(self, query: "str | UCQ | ConjunctiveQuery", method: str = "mvindex") -> QueryResult:
        """Typed probabilities of every answer of ``query``, over HTTP."""
        document = self._request(
            "/v1/query", {"query": self._as_wire_query(query), "method": method}
        )
        return QueryResult.from_json(document["result"])

    def query_batch(
        self,
        queries: Sequence["str | UCQ | ConjunctiveQuery"],
        method: str = "mvindex",
        workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer many queries with one server-side shared relational pass."""
        payload: dict[str, Any] = {
            "queries": [self._as_wire_query(query) for query in queries],
            "method": method,
        }
        if workers is not None:
            payload["workers"] = workers
        document = self._request("/v1/query_batch", payload)
        return [QueryResult.from_json(entry) for entry in document["results"]]

    def boolean_probability(
        self, query: "str | UCQ | ConjunctiveQuery", method: str = "mvindex"
    ) -> float:
        """``P(Q)`` for a Boolean query (0.0 if it has no derivations)."""
        ucq = as_ucq(parse_query(query)) if isinstance(query, str) else as_ucq(query)
        if not ucq.is_boolean:
            raise InferenceError(
                f"boolean_probability requires a Boolean query, but {ucq.name!r} has "
                f"free head variables {tuple(v.name for v in ucq.head)}"
            )
        return self.query(ucq, method=method).probability(())

    # -------------------------------------------------------------- mutation
    def extend(self, spec: Mapping[str, Any]) -> int:
        """Extend the server's view set; returns the number of new components.

        Unlike :meth:`ProbDB.extend`, which takes an in-process MVDB, the
        remote mirror ships a JSON *extension spec* that the server's
        configured extender turns into an MVDB (for ``python -m repro
        serve`` that is ``{"groups": ..., "seed": ..., "views": [...]}``).
        """
        document = self._request("/v1/extend", dict(spec))
        return document["added_components"]

    def append_facts(self, facts: Mapping[str, Any]) -> int:
        """Stream new base facts into the server; returns the tuple count.

        The remote mirror of :meth:`ProbDB.append_facts`: same payload
        shape (deterministic rows, probabilistic ``[row, weight]`` pairs),
        shipped as ``{"facts": ...}`` to ``POST /v1/append``.
        """
        document = self._request("/v1/append", {"facts": dict(facts)})
        return document["added_tuples"]

    # ---------------------------------------------------------- subscriptions
    def subscribe(
        self,
        query: "str | UCQ | ConjunctiveQuery",
        predicate: Mapping[str, Any] | None = None,
        sink: Mapping[str, Any] | None = None,
        method: str = "mvindex",
    ) -> dict[str, Any]:
        """Register a standing query; returns the subscription document.

        ``predicate`` is ``{"kind": "change"}`` (the default: fire whenever
        any answer probability moves) or ``{"kind": "threshold", "op":
        ">|>=|<|<=", "value": p}`` (fire when the set of answers satisfying
        the comparison changes).  ``sink`` defaults to the server's
        long-poll log (read with :meth:`notifications`); pass ``{"kind":
        "webhook", "url": ...}`` for push delivery.  The returned document
        carries the server-assigned ``id`` and the baseline answers.
        """
        payload: dict[str, Any] = {
            "query": self._as_wire_query(query),
            "method": method,
        }
        if predicate is not None:
            payload["predicate"] = dict(predicate)
        if sink is not None:
            payload["sink"] = dict(sink)
        document = self._request("/v1/subscribe", payload)
        return document["subscription"]

    def unsubscribe(self, sub_id: str) -> dict[str, Any]:
        """Remove a standing query by its server-assigned id."""
        return self._request("/v1/unsubscribe", {"id": sub_id})

    def subscriptions(self) -> dict[str, Any]:
        """The server's ``/v1/subscriptions`` registry listing."""
        return self._request("/v1/subscriptions")

    def notifications(
        self, since: int = 0, wait_s: float = 0.0, limit: int = 1000
    ) -> dict[str, Any]:
        """Long-poll the notification stream from cursor ``since``.

        Returns ``{"notifications", "next", "head", "oldest", "dropped"}``;
        pass the returned ``next`` as the following call's ``since`` to
        consume the stream exactly once.  ``wait_s`` blocks server-side
        until news arrives (capped at the server's long-poll maximum), so
        size the client ``timeout`` above it.
        """
        return self._request(
            "/v1/notifications",
            {"since": since, "wait_s": wait_s, "limit": limit},
        )

    # ------------------------------------------------------------ inspection
    def stats(self) -> dict[str, Any]:
        """The server's ``/v1/stats`` document (serving-tier statistics)."""
        return self._request("/v1/stats")

    def healthz(self) -> dict[str, Any]:
        """The server's liveness document."""
        return self._request("/healthz")

    def metrics_text(self) -> str:
        """The server's Prometheus-style metrics exposition."""
        request = urllib.request.Request(self._url + "/metrics")
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {self._url}: {exc}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteProbDB({self._url!r})"


def connect_remote(url: str, timeout: float = 60.0) -> RemoteProbDB:
    """Open a :class:`RemoteProbDB` against a running ``repro serve`` server.

    The mirror of :func:`repro.connect` for the network boundary: the same
    query surface, served over HTTP by a process started with
    ``python -m repro serve`` (or an embedded
    :class:`repro.serving.server.ProbServer`).
    """
    return RemoteProbDB(url, timeout=timeout)
