"""Module entry point: ``python -m repro <experiment>`` (see :mod:`repro.cli`)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
