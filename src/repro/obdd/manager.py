"""A reduced, ordered BDD manager (shared unique table, operation caches).

This plays the role of CUDD in the paper: it provides node creation with
reduction, Boolean synthesis (``apply``), negation, restriction, and
probability computation by Shannon expansion.  Probabilities may be negative
(Sect. 3.3): Shannon expansion is oblivious to the sign.

Nodes are integers.  The two terminals are ``ZERO = 0`` and ``ONE = 1``;
internal nodes are indices ≥ 2 into flat arrays (level, low, high), which
keeps the manager compact and makes the cache-conscious MV-index layout
(:mod:`repro.mvindex.cc_intersect`) a straightforward re-encoding.

The synthesis core is *iterative and allocation-lean*: ``apply`` runs an
explicit work stack over ``(f, g)`` pairs instead of recursing, the unique
table and the per-operation caches are keyed by packed integers rather than
tuples, and node creation is inlined into the hot loop.  Nothing here ever
recurses to the depth of the OBDD, so formulas over hundreds of thousands of
variables compile without touching the interpreter recursion limit (the old
kernel needed ``sys.setrecursionlimit`` escapes; see
:mod:`repro.obdd.reference` for the retained recursive reference
implementation used by the equivalence tests).

The flat-array representation also gives the manager a *stable
serialization*: :meth:`ObddManager.export_nodes` walks the nodes reachable
from a set of roots in a deterministic child-first order and emits plain
``(level, low, high)`` triples, and :meth:`ObddManager.import_nodes` replays
them through :meth:`ObddManager.make_node` so that a restored manager is
reduced, shares structure, and assigns exactly the node ids recorded in the
export.  This is what lets a compiled MV-index be persisted to disk and
reloaded in a different process (see :mod:`repro.serving.artifact`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import CompilationError

ZERO = 0
ONE = 1

#: Level assigned to terminal nodes (larger than any variable level).
TERMINAL_LEVEL = 1 << 60

#: Bit width used to pack node ids into cache keys.  Node ids are dense list
#: indices, so 2**32 nodes would need hundreds of GiB of memory long before
#: the packing overflows into ambiguity.
_ID_BITS = 32


class ObddManager:
    """Shared OBDD manager with a unique table and per-operation caches."""

    def __init__(self) -> None:
        # Parallel arrays indexed by node id; entries 0/1 are placeholders for
        # the terminals so that node ids can be used to index directly.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [ZERO, ONE]
        self._high: list[int] = [ZERO, ONE]
        #: Unique table keyed by ``level << 64 | low << 32 | high``.
        self._unique: dict[int, int] = {}
        #: Operation caches, keyed by ``f << 32 | g`` with ``f < g`` (both
        #: operations are commutative).  Separate dicts per operation beat a
        #: shared dict with the operation folded into the key.
        self._or_cache: dict[int, int] = {}
        self._and_cache: dict[int, int] = {}
        self._negate_cache: dict[int, int] = {}
        #: Memos of the multi-way applies, keyed by normalized operand tuples.
        self._multi_and_cache: dict[tuple[int, ...], int] = {}
        self._multi_or_cache: dict[tuple[int, ...], int] = {}
        #: Number of apply-cache misses (i.e. real synthesis steps); exposed so
        #: benchmarks can report synthesis effort in a platform-neutral way.
        self.apply_steps = 0

    # ----------------------------------------------------------------- nodes
    def node_count(self) -> int:
        """Total number of nodes ever created (including the two terminals)."""
        return len(self._level)

    def is_terminal(self, node: int) -> bool:
        """True for the ``ZERO``/``ONE`` terminals."""
        return node <= ONE

    def level(self, node: int) -> int:
        """Level of a node (``TERMINAL_LEVEL`` for terminals)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """0-child of a node."""
        return self._low[node]

    def high(self, node: int) -> int:
        """1-child of a node."""
        return self._high[node]

    def make_node(self, level: int, low: int, high: int) -> int:
        """Create (or reuse) the node ``(level, low, high)`` with reduction rules."""
        if low == high:
            return low
        if level >= TERMINAL_LEVEL:
            raise CompilationError(f"invalid variable level {level}")
        if self._level[low] <= level or self._level[high] <= level:
            raise CompilationError(
                f"children of a node at level {level} must have strictly larger levels"
            )
        key = (level << 64) | (low << _ID_BITS) | high
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def variable(self, level: int) -> int:
        """The OBDD of the single variable at ``level``."""
        return self.make_node(level, ZERO, ONE)

    def conjunction_chain(self, levels: Iterable[int]) -> int:
        """The OBDD of a conjunction of positive literals (a chain).

        Equivalent to folding :meth:`make_node` over the levels in
        decreasing order with a ``ZERO`` low child, but with the unique
        table inlined — clause construction is the inner loop of every DNF
        compile.  Duplicate or out-of-range levels raise, as they would
        through :meth:`make_node`.
        """
        unique = self._unique
        unique_get = unique.get
        level_list = self._level
        lows = self._low
        highs = self._high
        node = ONE
        previous = TERMINAL_LEVEL
        for level in sorted(levels, reverse=True):
            if level >= previous:
                if level >= TERMINAL_LEVEL:
                    raise CompilationError(f"invalid variable level {level}")
                raise CompilationError(f"duplicate level {level} in conjunction chain")
            previous = level
            key = (level << 64) | node  # low child is ZERO
            chained = unique_get(key)
            if chained is None:
                chained = len(level_list)
                level_list.append(level)
                lows.append(ZERO)
                highs.append(node)
                unique[key] = chained
            node = chained
        return node

    # ------------------------------------------------------------- synthesis
    def apply_or(self, f: int, g: int) -> int:
        """Synthesis of ``f ∨ g`` (the CUDD-style pairwise apply)."""
        return self._apply(False, f, g)

    def apply_and(self, f: int, g: int) -> int:
        """Synthesis of ``f ∧ g``."""
        return self._apply(True, f, g)

    def _apply(self, conjunction: bool, f: int, g: int) -> int:
        """Iterative pairwise apply — simulated recursion over node pairs.

        The loop keeps the pair being synthesised in registers and an
        explicit frame stack for its ancestors, exactly mirroring the call
        structure of the recursive reference kernel: a frame
        ``(key, level, a1, b1)`` is an ancestor still waiting for its low
        cofactor (the raw high cofactor pair is parked unresolved), a frame
        ``(key, level, low_result)`` one waiting for its high cofactor.
        Because the descent is depth-first and sequential, every pair is
        synthesised at most once, no visited frame is ever re-examined, and
        the set of cache-missing pairs — counted by ``apply_steps`` — is
        identical to the recursive kernel's.  Cofactor pairs that reduce by
        the operation's terminal rules or hit the operation cache are
        resolved inline without touching the stack, and result nodes are
        emitted through an inlined unique-table lookup.
        """
        # Terminal / idempotence shortcuts on the root pair.
        if conjunction:
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
        else:
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        cache = self._and_cache if conjunction else self._or_cache
        root_key = (f << _ID_BITS) | g
        result = cache.get(root_key)
        if result is not None:
            return result

        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        cache_get = cache.get
        unique_get = unique.get
        steps = 0
        frames: list[tuple] = []
        push = frames.append
        a, b, key = f, g, root_key
        while True:
            # ---- descend: synthesise the pair in the (a, b, key) registers.
            while True:
                level_a = levels[a]
                level_b = levels[b]
                if level_a <= level_b:
                    level = level_a
                    a0 = lows[a]
                    a1 = highs[a]
                else:
                    level = level_b
                    a0 = a
                    a1 = a
                if level_b <= level_a:
                    b0 = lows[b]
                    b1 = highs[b]
                else:
                    b0 = b
                    b1 = b

                # Resolve the low cofactor pair: shortcut, cache hit, or descend.
                if conjunction:
                    if a0 == ZERO or b0 == ZERO:
                        low_result = ZERO
                    elif a0 == ONE:
                        low_result = b0
                    elif b0 == ONE or a0 == b0:
                        low_result = a0
                    else:
                        if a0 > b0:
                            a0, b0 = b0, a0
                        low_key = (a0 << _ID_BITS) | b0
                        low_result = cache_get(low_key)
                        if low_result is None:
                            push((key, level, a1, b1))
                            a, b, key = a0, b0, low_key
                            continue
                elif a0 == ONE or b0 == ONE:
                    low_result = ONE
                elif a0 == ZERO:
                    low_result = b0
                elif b0 == ZERO or a0 == b0:
                    low_result = a0
                else:
                    if a0 > b0:
                        a0, b0 = b0, a0
                    low_key = (a0 << _ID_BITS) | b0
                    low_result = cache_get(low_key)
                    if low_result is None:
                        push((key, level, a1, b1))
                        a, b, key = a0, b0, low_key
                        continue

                # Resolve the high cofactor pair the same way.
                if conjunction:
                    if a1 == ZERO or b1 == ZERO:
                        high_result = ZERO
                    elif a1 == ONE:
                        high_result = b1
                    elif b1 == ONE or a1 == b1:
                        high_result = a1
                    else:
                        if a1 > b1:
                            a1, b1 = b1, a1
                        high_key = (a1 << _ID_BITS) | b1
                        high_result = cache_get(high_key)
                        if high_result is None:
                            push((key, level, low_result))
                            a, b, key = a1, b1, high_key
                            continue
                elif a1 == ONE or b1 == ONE:
                    high_result = ONE
                elif a1 == ZERO:
                    high_result = b1
                elif b1 == ZERO or a1 == b1:
                    high_result = a1
                else:
                    if a1 > b1:
                        a1, b1 = b1, a1
                    high_key = (a1 << _ID_BITS) | b1
                    high_result = cache_get(high_key)
                    if high_result is None:
                        push((key, level, low_result))
                        a, b, key = a1, b1, high_key
                        continue

                # Emit the node (inlined make_node) and leave the descent.
                if low_result == high_result:
                    result = low_result
                else:
                    unique_key = (level << 64) | (low_result << _ID_BITS) | high_result
                    result = unique_get(unique_key)
                    if result is None:
                        result = len(levels)
                        levels.append(level)
                        lows.append(low_result)
                        highs.append(high_result)
                        unique[unique_key] = result
                cache[key] = result
                steps += 1
                break

            # ---- unwind: feed the result to waiting ancestors.
            descend = False
            while frames:
                frame = frames.pop()
                if len(frame) == 4:
                    # Ancestor was waiting for its low cofactor.
                    key, level, a1, b1 = frame
                    low_result = result
                    if conjunction:
                        if a1 == ZERO or b1 == ZERO:
                            high_result = ZERO
                        elif a1 == ONE:
                            high_result = b1
                        elif b1 == ONE or a1 == b1:
                            high_result = a1
                        else:
                            if a1 > b1:
                                a1, b1 = b1, a1
                            high_key = (a1 << _ID_BITS) | b1
                            high_result = cache_get(high_key)
                            if high_result is None:
                                push((key, level, low_result))
                                a, b, key = a1, b1, high_key
                                descend = True
                                break
                    elif a1 == ONE or b1 == ONE:
                        high_result = ONE
                    elif a1 == ZERO:
                        high_result = b1
                    elif b1 == ZERO or a1 == b1:
                        high_result = a1
                    else:
                        if a1 > b1:
                            a1, b1 = b1, a1
                        high_key = (a1 << _ID_BITS) | b1
                        high_result = cache_get(high_key)
                        if high_result is None:
                            push((key, level, low_result))
                            a, b, key = a1, b1, high_key
                            descend = True
                            break
                else:
                    # Ancestor was waiting for its high cofactor.
                    key, level, low_result = frame
                    high_result = result
                if low_result == high_result:
                    result = low_result
                else:
                    unique_key = (level << 64) | (low_result << _ID_BITS) | high_result
                    result = unique_get(unique_key)
                    if result is None:
                        result = len(levels)
                        levels.append(level)
                        lows.append(low_result)
                        highs.append(high_result)
                        unique[unique_key] = result
                cache[key] = result
                steps += 1
            if not descend:
                break
        self.apply_steps += steps
        return result

    def apply_and_multi(self, roots: Iterable[int]) -> int:
        """Top-down memoized multi-way AND of several OBDDs.

        Conjoining ``k`` OBDDs pairwise re-traverses every intermediate
        result ``k - 1`` times; the multi-way apply expands all operands
        simultaneously instead, memoizing on the normalized operand tuple
        (duplicates and the operation's identity dropped, sorted).  This is
        what the query-time intersection uses to conjoin interleaving
        MV-index components in a single pass.
        """
        return self._apply_multi(True, roots)

    def apply_or_multi(self, roots: Iterable[int]) -> int:
        """Top-down memoized multi-way OR of several OBDDs.

        The dual of :meth:`apply_and_multi`; the ConOBDD construction uses
        it to disjoin all clause OBDDs of a connected component in one
        simultaneous expansion instead of re-traversing the accumulated
        result once per clause.
        """
        return self._apply_multi(False, roots)

    def _apply_multi(self, conjunction: bool, roots: Iterable[int]) -> int:
        """Shared machinery of the multi-way applies.

        States are normalized operand tuples (the operation's absorbing
        terminal short-circuits, its identity and duplicates are dropped,
        survivors sorted); one- and two-operand states collapse into node
        ids via the pairwise cache.  First-visit frames are the state
        tuples themselves; a frame with unresolved children is replaced by
        a ``[state, level, low, high]`` list (children encoded as state
        tuples to fetch from the memo) so nothing is recomputed on the
        second visit, mirroring :meth:`_apply`.
        """
        absorbing = ZERO if conjunction else ONE
        identity = ONE - absorbing
        entry: set[int] = set()
        for root in roots:
            if root == absorbing:
                return absorbing
            if root != identity:
                entry.add(root)
        if not entry:
            return identity
        if len(entry) == 1:
            return entry.pop()
        if len(entry) == 2:
            first, second = entry
            return self._apply(conjunction, first, second)
        state = tuple(sorted(entry))
        memo = self._multi_and_cache if conjunction else self._multi_or_cache
        result = memo.get(state)
        if result is not None:
            return result

        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        memo_get = memo.get
        unique_get = unique.get
        steps = 0
        stack: list = [state]
        push = stack.append
        while stack:
            frame = stack[-1]
            if type(frame) is tuple:
                operands = frame
                if operands in memo:
                    stack.pop()
                    continue
                level = TERMINAL_LEVEL
                for node in operands:
                    node_level = levels[node]
                    if node_level < level:
                        level = node_level
                # Cofactor every operand at the top level, normalizing the
                # child operand lists on the fly.
                low_set: set[int] = set()
                high_set: set[int] = set()
                low_short = high_short = False
                for node in operands:
                    if levels[node] == level:
                        child = lows[node]
                        if child == absorbing:
                            low_short = True
                        elif child != identity:
                            low_set.add(child)
                        child = highs[node]
                        if child == absorbing:
                            high_short = True
                        elif child != identity:
                            high_set.add(child)
                    else:
                        low_set.add(node)
                        high_set.add(node)

                pending = False
                if low_short:
                    low_result = absorbing
                elif not low_set:
                    low_result = identity
                elif len(low_set) == 1:
                    low_result = low_set.pop()
                elif len(low_set) == 2:
                    first, second = low_set
                    low_result = self._apply(conjunction, first, second)
                else:
                    low_state = tuple(sorted(low_set))
                    low_result = memo_get(low_state)
                    if low_result is None:
                        low_result = low_state
                        pending = True
                if high_short:
                    high_result = absorbing
                elif not high_set:
                    high_result = identity
                elif len(high_set) == 1:
                    high_result = high_set.pop()
                elif len(high_set) == 2:
                    first, second = high_set
                    high_result = self._apply(conjunction, first, second)
                else:
                    high_state = tuple(sorted(high_set))
                    high_result = memo_get(high_state)
                    if high_result is None:
                        high_result = high_state
                        pending = True
                if pending:
                    stack[-1] = [operands, level, low_result, high_result]
                    if type(low_result) is tuple:
                        push(low_result)
                    if type(high_result) is tuple:
                        push(high_result)
                    continue
            else:
                operands, level, low_result, high_result = frame
                if operands in memo:
                    stack.pop()
                    continue
                if type(low_result) is tuple:
                    low_result = memo[low_result]
                if type(high_result) is tuple:
                    high_result = memo[high_result]

            # Emit the node (inlined make_node; invariants hold by construction).
            if low_result == high_result:
                node = low_result
            else:
                unique_key = (level << 64) | (low_result << _ID_BITS) | high_result
                node = unique_get(unique_key)
                if node is None:
                    node = len(levels)
                    levels.append(level)
                    lows.append(low_result)
                    highs.append(high_result)
                    unique[unique_key] = node
            memo[operands] = node
            steps += 1
            stack.pop()
        self.apply_steps += steps
        return memo[state]

    def negate(self, f: int) -> int:
        """The OBDD of ``¬f`` (swap the terminals), iteratively."""
        if f <= ONE:
            return f ^ 1
        cache = self._negate_cache
        result = cache.get(f)
        if result is not None:
            return result
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        cache_get = cache.get
        unique_get = unique.get
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            low = lows[node]
            high = highs[node]
            pending = False
            if low <= ONE:
                negated_low = low ^ 1
            else:
                negated_low = cache_get(low)
                if negated_low is None:
                    push(low)
                    pending = True
            if high <= ONE:
                negated_high = high ^ 1
            else:
                negated_high = cache_get(high)
                if negated_high is None:
                    push(high)
                    pending = True
            if pending:
                continue
            # Negation maps distinct children to distinct children, so the
            # reduction case never fires; emit via the inlined unique table.
            unique_key = (levels[node] << 64) | (negated_low << _ID_BITS) | negated_high
            negated = unique_get(unique_key)
            if negated is None:
                negated = len(levels)
                levels.append(levels[node])
                lows.append(negated_low)
                highs.append(negated_high)
                unique[unique_key] = negated
            cache[node] = negated
            cache[negated] = node
            stack.pop()
        return cache[f]

    def substitute_terminal(self, f: int, terminal: int, replacement: int) -> int:
        """Replace a terminal of ``f`` by another OBDD (the *concatenation* step).

        Requires every variable level of ``replacement`` to be strictly larger
        than every level of ``f`` so the result remains ordered; this is
        exactly the situation of Proposition 1 (independent sub-OBDDs laid out
        consecutively in the variable order), and the operation is linear in
        the size of ``f`` — no pairwise synthesis.
        """
        cache: dict[int, int] = {terminal: replacement}
        if f in cache:
            return cache[f]
        if f <= ONE:
            return f
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        cache_get = cache.get
        unique_get = unique.get
        # Simulated recursion, as in _apply: the node being rewritten sits in
        # a register, ancestors wait on the frame stack ((node, -1) for the
        # low child, (node, low_result) for the high child).
        frames: list[tuple[int, int]] = []
        push = frames.append
        node = f
        while True:
            while True:
                low = lows[node]
                new_low = cache_get(low)
                if new_low is None:
                    if low <= ONE:
                        new_low = low
                    else:
                        push((node, -1))
                        node = low
                        continue
                high = highs[node]
                new_high = cache_get(high)
                if new_high is None:
                    if high <= ONE:
                        new_high = high
                    else:
                        push((node, new_low))
                        node = high
                        continue
                break
            while True:
                if new_low == new_high:
                    result = new_low
                else:
                    level = levels[node]
                    if levels[new_low] <= level or levels[new_high] <= level:
                        raise CompilationError(
                            "substitute_terminal would break the order: replacement "
                            f"levels must be strictly larger than level {level}"
                        )
                    unique_key = (level << 64) | (new_low << _ID_BITS) | new_high
                    result = unique_get(unique_key)
                    if result is None:
                        result = len(levels)
                        levels.append(level)
                        lows.append(new_low)
                        highs.append(new_high)
                        unique[unique_key] = result
                cache[node] = result
                if not frames:
                    return result
                node, new_low = frames.pop()
                if new_low < 0:
                    # The low child just resolved; now handle the high child.
                    new_low = result
                    high = highs[node]
                    new_high = cache_get(high)
                    if new_high is None:
                        if high <= ONE:
                            new_high = high
                        else:
                            push((node, new_low))
                            node = high
                            break
                else:
                    new_high = result

    def restrict(self, f: int, level: int, value: bool) -> int:
        """The cofactor of ``f`` with the variable at ``level`` fixed."""
        levels = self._level
        lows = self._low
        highs = self._high
        cache: dict[int, int] = {}
        cache_get = cache.get
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            node_level = levels[node]
            if node_level > level:  # terminals included (TERMINAL_LEVEL > level)
                cache[node] = node
                stack.pop()
                continue
            if node_level == level:
                # Children always carry strictly larger levels, so the chosen
                # cofactor is already below the restricted level.
                cache[node] = highs[node] if value else lows[node]
                stack.pop()
                continue
            low = lows[node]
            high = highs[node]
            pending = False
            if levels[low] > level:
                new_low = low
            else:
                new_low = cache_get(low)
                if new_low is None:
                    push(low)
                    pending = True
            if levels[high] > level:
                new_high = high
            else:
                new_high = cache_get(high)
                if new_high is None:
                    push(high)
                    pending = True
            if pending:
                continue
            cache[node] = self.make_node(node_level, new_low, new_high)
            stack.pop()
        return cache[f]

    # ------------------------------------------------------------ inspection
    def reachable_nodes(self, root: int) -> list[int]:
        """All nodes reachable from ``root`` (terminals excluded), in DFS order."""
        seen: set[int] = set()
        order: list[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen or node <= ONE:
                continue
            seen.add(node)
            order.append(node)
            stack.append(self._high[node])
            stack.append(self._low[node])
        return order

    def size(self, root: int) -> int:
        """Number of internal nodes reachable from ``root``."""
        return len(self.reachable_nodes(root))

    def width(self, root: int) -> int:
        """Maximum number of nodes labelled with the same level."""
        counts: dict[int, int] = {}
        for node in self.reachable_nodes(root):
            counts[self._level[node]] = counts.get(self._level[node], 0) + 1
        return max(counts.values(), default=0)

    def evaluate(self, root: int, assignment: Callable[[int], bool] | Mapping[int, bool]) -> bool:
        """Evaluate the function at ``root`` for a truth assignment by level."""
        lookup = assignment if callable(assignment) else lambda lvl: bool(assignment.get(lvl, False))
        node = root
        while not self.is_terminal(node):
            node = self._high[node] if lookup(self._level[node]) else self._low[node]
        return node == ONE

    # ------------------------------------------------------------ probability
    def prob_under_map(
        self, root: int, probability_of_level: Mapping[int, float]
    ) -> dict[int, float]:
        """``probUnder`` for every node reachable from ``root``, iteratively.

        The Shannon expansion processes nodes by decreasing level — children
        always carry strictly larger levels, so this is a topological order
        and no recursion is needed; the per-node arithmetic is exactly that
        of the recursive reference, so every value is bit-identical to it.
        This single sweep backs :meth:`probability` and the intersection
        algorithms' annotation needs.
        """
        levels = self._level
        lows = self._low
        highs = self._high
        nodes = self.reachable_nodes(root)
        nodes.sort(key=levels.__getitem__, reverse=True)
        values: dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        for node in nodes:
            probability = probability_of_level[levels[node]]
            values[node] = (1.0 - probability) * values[lows[node]] + probability * values[
                highs[node]
            ]
        return values

    def probability(self, root: int, probability_of_level: Mapping[int, float]) -> float:
        """Probability of the function at ``root`` by Shannon expansion.

        ``probability_of_level`` maps variable levels to marginal
        probabilities; values may be negative (the formula is linear in each
        probability, so nothing special is needed).
        """
        if root <= ONE:
            return float(root == ONE)
        return self.prob_under_map(root, probability_of_level)[root]

    def levels_in(self, root: int) -> set[int]:
        """The set of variable levels appearing in the OBDD rooted at ``root``."""
        return {self._level[node] for node in self.reachable_nodes(root)}

    def clear_caches(self) -> None:
        """Drop the operation caches (unique table is kept)."""
        self._or_cache.clear()
        self._and_cache.clear()
        self._negate_cache.clear()
        self._multi_and_cache.clear()
        self._multi_or_cache.clear()

    # ---------------------------------------------------------- serialization
    def export_nodes(self, roots: Iterable[int]) -> dict[str, list]:
        """Serialize the node tables reachable from ``roots``.

        Returns ``{"nodes": [[level, low, high], ...], "roots": [...]}`` where
        node ``i`` of the list is assigned id ``i + 2`` (ids 0/1 are the
        terminals) and ``roots`` holds the re-mapped root ids in input order.
        Nodes are emitted children-first in a deterministic DFS postorder, so
        :meth:`import_nodes` can replay them through :meth:`make_node` and
        obtain exactly the recorded ids.  Unreachable (garbage) nodes of this
        manager are not exported, making the artifact compact and its content
        a pure function of the exported OBDDs.
        """
        root_list = list(roots)
        position: dict[int, int] = {ZERO: ZERO, ONE: ONE}
        nodes: list[list[int]] = []
        for root in root_list:
            if root in position:
                continue
            # Iterative postorder: children receive ids before their parent.
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node in position:
                    continue
                if expanded:
                    position[node] = len(nodes) + 2
                    nodes.append(
                        [
                            self._level[node],
                            position[self._low[node]],
                            position[self._high[node]],
                        ]
                    )
                else:
                    stack.append((node, True))
                    stack.append((self._high[node], False))
                    stack.append((self._low[node], False))
        return {"nodes": nodes, "roots": [position[root] for root in root_list]}

    @classmethod
    def import_nodes(cls, nodes: Iterable[Sequence[int]]) -> "ObddManager":
        """Rebuild a manager from :meth:`export_nodes` output.

        Every entry is replayed through :meth:`make_node`, which re-validates
        ordering and reduction; because the export is children-first and free
        of duplicates, the ``i``-th entry is assigned id ``i + 2``, matching
        the ids recorded in the export.
        """
        manager = cls()
        for offset, (level, low, high) in enumerate(nodes):
            node = manager.make_node(level, low, high)
            if node != offset + 2:
                raise CompilationError(
                    f"corrupt OBDD serialization: entry {offset} mapped to node {node}"
                )
        return manager

    def import_into(self, nodes: Iterable[Sequence[int]], roots: Iterable[int]) -> list[int]:
        """Replay an :meth:`export_nodes` table into *this* manager.

        Unlike :meth:`import_nodes` the target manager may already hold
        nodes, so the replay maps exported ids to whatever ids this manager
        assigns (reusing structurally identical nodes).  Returns the mapped
        ``roots``.  This is the merge step of the sharded parallel MV-index
        build: every worker exports its shard from a fresh manager and the
        parent replays the shards, in order, into the shared manager.
        """
        mapping: list[int] = [ZERO, ONE]
        for level, low, high in nodes:
            mapping.append(self.make_node(level, mapping[low], mapping[high]))
        return [mapping[root] for root in roots]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObddManager({self.node_count()} nodes)"


def dump_dot(manager: ObddManager, root: int) -> str:
    """Render the OBDD rooted at ``root`` in Graphviz DOT format (debugging aid)."""
    lines = ["digraph obdd {", '  zero [label="0", shape=box];', '  one [label="1", shape=box];']

    def name(node: int) -> str:
        if node == ZERO:
            return "zero"
        if node == ONE:
            return "one"
        return f"n{node}"

    for node in manager.reachable_nodes(root):
        lines.append(f'  {name(node)} [label="x{manager.level(node)}"];')
        lines.append(f"  {name(node)} -> {name(manager.low(node))} [style=dashed];")
        lines.append(f"  {name(node)} -> {name(manager.high(node))};")
    lines.append("}")
    return "\n".join(lines)


def iter_paths(manager: ObddManager, root: int) -> Iterable[tuple[dict[int, bool], int]]:
    """Yield ``(partial assignment by level, terminal)`` for every root-to-sink path."""

    def walk(node: int, assignment: dict[int, bool]):
        if manager.is_terminal(node):
            yield dict(assignment), node
            return
        level = manager.level(node)
        assignment[level] = False
        yield from walk(manager.low(node), assignment)
        assignment[level] = True
        yield from walk(manager.high(node), assignment)
        del assignment[level]

    yield from walk(root, {})
