"""A reduced, ordered BDD manager (shared unique table, apply cache).

This plays the role of CUDD in the paper: it provides node creation with
reduction, Boolean synthesis (``apply``), negation, restriction, and
probability computation by Shannon expansion.  Probabilities may be negative
(Sect. 3.3): Shannon expansion is oblivious to the sign.

Nodes are integers.  The two terminals are ``ZERO = 0`` and ``ONE = 1``;
internal nodes are indices ≥ 2 into flat arrays (level, low, high), which
keeps the manager compact and makes the cache-conscious MV-index layout
(:mod:`repro.mvindex.cc_intersect`) a straightforward re-encoding.

The flat-array representation also gives the manager a *stable
serialization*: :meth:`ObddManager.export_nodes` walks the nodes reachable
from a set of roots in a deterministic child-first order and emits plain
``(level, low, high)`` triples, and :meth:`ObddManager.import_nodes` replays
them through :meth:`ObddManager.make_node` so that a restored manager is
reduced, shares structure, and assigns exactly the node ids recorded in the
export.  This is what lets a compiled MV-index be persisted to disk and
reloaded in a different process (see :mod:`repro.serving.artifact`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import CompilationError

ZERO = 0
ONE = 1

#: Level assigned to terminal nodes (larger than any variable level).
TERMINAL_LEVEL = 1 << 60


class ObddManager:
    """Shared OBDD manager with a unique table and an apply cache."""

    def __init__(self) -> None:
        # Parallel arrays indexed by node id; entries 0/1 are placeholders for
        # the terminals so that node ids can be used to index directly.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [ZERO, ONE]
        self._high: list[int] = [ZERO, ONE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._negate_cache: dict[int, int] = {}
        #: Number of apply-cache misses (i.e. real synthesis steps); exposed so
        #: benchmarks can report synthesis effort in a platform-neutral way.
        self.apply_steps = 0

    # ----------------------------------------------------------------- nodes
    def node_count(self) -> int:
        """Total number of nodes ever created (including the two terminals)."""
        return len(self._level)

    def is_terminal(self, node: int) -> bool:
        """True for the ``ZERO``/``ONE`` terminals."""
        return node <= ONE

    def level(self, node: int) -> int:
        """Level of a node (``TERMINAL_LEVEL`` for terminals)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """0-child of a node."""
        return self._low[node]

    def high(self, node: int) -> int:
        """1-child of a node."""
        return self._high[node]

    def make_node(self, level: int, low: int, high: int) -> int:
        """Create (or reuse) the node ``(level, low, high)`` with reduction rules."""
        if low == high:
            return low
        if level >= TERMINAL_LEVEL:
            raise CompilationError(f"invalid variable level {level}")
        if self._level[low] <= level or self._level[high] <= level:
            raise CompilationError(
                f"children of a node at level {level} must have strictly larger levels"
            )
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def variable(self, level: int) -> int:
        """The OBDD of the single variable at ``level``."""
        return self.make_node(level, ZERO, ONE)

    # ------------------------------------------------------------- synthesis
    def apply_or(self, f: int, g: int) -> int:
        """Synthesis of ``f ∨ g`` (the CUDD-style pairwise apply)."""
        return self._apply("or", f, g)

    def apply_and(self, f: int, g: int) -> int:
        """Synthesis of ``f ∧ g``."""
        return self._apply("and", f, g)

    def _apply(self, op: str, f: int, g: int) -> int:
        if op == "or":
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return f
        else:
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
            if f == g:
                return f
        if f > g:
            f, g = g, f
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        self.apply_steps += 1
        level_f, level_g = self._level[f], self._level[g]
        level = min(level_f, level_g)
        f_low, f_high = (self._low[f], self._high[f]) if level_f == level else (f, f)
        g_low, g_high = (self._low[g], self._high[g]) if level_g == level else (g, g)
        low = self._apply(op, f_low, g_low)
        high = self._apply(op, f_high, g_high)
        result = self.make_node(level, low, high)
        self._apply_cache[key] = result
        return result

    def negate(self, f: int) -> int:
        """The OBDD of ``¬f`` (swap the terminals)."""
        if f == ZERO:
            return ONE
        if f == ONE:
            return ZERO
        cached = self._negate_cache.get(f)
        if cached is not None:
            return cached
        result = self.make_node(
            self._level[f], self.negate(self._low[f]), self.negate(self._high[f])
        )
        self._negate_cache[f] = result
        self._negate_cache[result] = f
        return result

    def substitute_terminal(self, f: int, terminal: int, replacement: int) -> int:
        """Replace a terminal of ``f`` by another OBDD (the *concatenation* step).

        Requires every variable level of ``replacement`` to be strictly larger
        than every level of ``f`` so the result remains ordered; this is
        exactly the situation of Proposition 1 (independent sub-OBDDs laid out
        consecutively in the variable order), and the operation is linear in
        the size of ``f`` — no pairwise synthesis.
        """
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if node == terminal:
                return replacement
            if self.is_terminal(node):
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            result = self.make_node(
                self._level[node], walk(self._low[node]), walk(self._high[node])
            )
            cache[node] = result
            return result

        return walk(f)

    def restrict(self, f: int, level: int, value: bool) -> int:
        """The cofactor of ``f`` with the variable at ``level`` fixed."""
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            if self.is_terminal(node) or self._level[node] > level:
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            if self._level[node] == level:
                result = walk(self._high[node] if value else self._low[node])
            else:
                result = self.make_node(
                    self._level[node], walk(self._low[node]), walk(self._high[node])
                )
            cache[node] = result
            return result

        return walk(f)

    # ------------------------------------------------------------ inspection
    def reachable_nodes(self, root: int) -> list[int]:
        """All nodes reachable from ``root`` (terminals excluded), in DFS order."""
        seen: set[int] = set()
        order: list[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            order.append(node)
            stack.append(self._high[node])
            stack.append(self._low[node])
        return order

    def size(self, root: int) -> int:
        """Number of internal nodes reachable from ``root``."""
        return len(self.reachable_nodes(root))

    def width(self, root: int) -> int:
        """Maximum number of nodes labelled with the same level."""
        counts: dict[int, int] = {}
        for node in self.reachable_nodes(root):
            counts[self._level[node]] = counts.get(self._level[node], 0) + 1
        return max(counts.values(), default=0)

    def evaluate(self, root: int, assignment: Callable[[int], bool] | Mapping[int, bool]) -> bool:
        """Evaluate the function at ``root`` for a truth assignment by level."""
        lookup = assignment if callable(assignment) else lambda lvl: bool(assignment.get(lvl, False))
        node = root
        while not self.is_terminal(node):
            node = self._high[node] if lookup(self._level[node]) else self._low[node]
        return node == ONE

    # ------------------------------------------------------------ probability
    def probability(self, root: int, probability_of_level: Mapping[int, float]) -> float:
        """Probability of the function at ``root`` by Shannon expansion.

        ``probability_of_level`` maps variable levels to marginal
        probabilities; values may be negative (the formula is linear in each
        probability, so nothing special is needed).
        """
        cache: dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(node: int) -> float:
            cached = cache.get(node)
            if cached is not None:
                return cached
            probability = probability_of_level[self._level[node]]
            result = (1.0 - probability) * walk(self._low[node]) + probability * walk(
                self._high[node]
            )
            cache[node] = result
            return result

        return walk(root)

    def levels_in(self, root: int) -> set[int]:
        """The set of variable levels appearing in the OBDD rooted at ``root``."""
        return {self._level[node] for node in self.reachable_nodes(root)}

    def clear_caches(self) -> None:
        """Drop the apply/negate caches (unique table is kept)."""
        self._apply_cache.clear()
        self._negate_cache.clear()

    # ---------------------------------------------------------- serialization
    def export_nodes(self, roots: Iterable[int]) -> dict[str, list]:
        """Serialize the node tables reachable from ``roots``.

        Returns ``{"nodes": [[level, low, high], ...], "roots": [...]}`` where
        node ``i`` of the list is assigned id ``i + 2`` (ids 0/1 are the
        terminals) and ``roots`` holds the re-mapped root ids in input order.
        Nodes are emitted children-first in a deterministic DFS postorder, so
        :meth:`import_nodes` can replay them through :meth:`make_node` and
        obtain exactly the recorded ids.  Unreachable (garbage) nodes of this
        manager are not exported, making the artifact compact and its content
        a pure function of the exported OBDDs.
        """
        root_list = list(roots)
        position: dict[int, int] = {ZERO: ZERO, ONE: ONE}
        nodes: list[list[int]] = []
        for root in root_list:
            if root in position:
                continue
            # Iterative postorder: children receive ids before their parent.
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node in position:
                    continue
                if expanded:
                    position[node] = len(nodes) + 2
                    nodes.append(
                        [
                            self._level[node],
                            position[self._low[node]],
                            position[self._high[node]],
                        ]
                    )
                else:
                    stack.append((node, True))
                    stack.append((self._high[node], False))
                    stack.append((self._low[node], False))
        return {"nodes": nodes, "roots": [position[root] for root in root_list]}

    @classmethod
    def import_nodes(cls, nodes: Iterable[Sequence[int]]) -> "ObddManager":
        """Rebuild a manager from :meth:`export_nodes` output.

        Every entry is replayed through :meth:`make_node`, which re-validates
        ordering and reduction; because the export is children-first and free
        of duplicates, the ``i``-th entry is assigned id ``i + 2``, matching
        the ids recorded in the export.
        """
        manager = cls()
        for offset, (level, low, high) in enumerate(nodes):
            node = manager.make_node(level, low, high)
            if node != offset + 2:
                raise CompilationError(
                    f"corrupt OBDD serialization: entry {offset} mapped to node {node}"
                )
        return manager

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObddManager({self.node_count()} nodes)"


def dump_dot(manager: ObddManager, root: int) -> str:
    """Render the OBDD rooted at ``root`` in Graphviz DOT format (debugging aid)."""
    lines = ["digraph obdd {", '  zero [label="0", shape=box];', '  one [label="1", shape=box];']

    def name(node: int) -> str:
        if node == ZERO:
            return "zero"
        if node == ONE:
            return "one"
        return f"n{node}"

    for node in manager.reachable_nodes(root):
        lines.append(f'  {name(node)} [label="x{manager.level(node)}"];')
        lines.append(f"  {name(node)} -> {name(manager.low(node))} [style=dashed];")
        lines.append(f"  {name(node)} -> {name(manager.high(node))};")
    lines.append("}")
    return "\n".join(lines)


def iter_paths(manager: ObddManager, root: int) -> Iterable[tuple[dict[int, bool], int]]:
    """Yield ``(partial assignment by level, terminal)`` for every root-to-sink path."""

    def walk(node: int, assignment: dict[int, bool]):
        if manager.is_terminal(node):
            yield dict(assignment), node
            return
        level = manager.level(node)
        assignment[level] = False
        yield from walk(manager.low(node), assignment)
        assignment[level] = True
        yield from walk(manager.high(node), assignment)
        del assignment[level]

    yield from walk(root, {})
