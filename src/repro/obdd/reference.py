"""Reference recursive OBDD kernel (the pre-iterative implementation).

The production kernel in :mod:`repro.obdd.manager` synthesises OBDDs with an
explicit work stack, packed-integer caches and an inlined unique table.
This module retains the original *recursive* Shannon-expansion kernel with
per-kernel memo dictionaries, exactly as the seed implementation computed
it, for two purposes:

* the equivalence test suite (``tests/test_obdd_reference.py``) asserts
  that both kernels produce identical node tables, model counts and
  probabilities over randomized DNFs and variable orders — reduced OBDDs
  are canonical for a fixed order, so any divergence is a kernel bug;
* the benchmark gate documents what the iterative kernel is being compared
  against (``scripts/bench_gate.py`` records budgets relative to this
  kernel's measured cost).

The reference kernel recurses to the depth of the OBDD and is therefore
only usable on small formulas; the production kernel has no such limit.
Only :meth:`repro.obdd.manager.ObddManager.make_node` (reduction + unique
table) is shared — synthesis, negation and probability are all re-derived
here independently.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import CompilationError
from repro.lineage.dnf import DNF
from repro.obdd.construct import CompiledObdd, clause_obdd, connected_components
from repro.obdd.manager import ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder


class ReferenceKernel:
    """Recursive apply/negate/probability over a (possibly shared) manager."""

    def __init__(self, manager: ObddManager | None = None) -> None:
        self.manager = manager if manager is not None else ObddManager()
        self._apply_memo: dict[tuple[str, int, int], int] = {}
        self._negate_memo: dict[int, int] = {}

    # -------------------------------------------------------------- synthesis
    def apply(self, op: str, f: int, g: int) -> int:
        """Recursive pairwise Shannon synthesis (the seed implementation)."""
        manager = self.manager
        if op == "or":
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return f
        elif op == "and":
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
            if f == g:
                return f
        else:
            raise CompilationError(f"unknown boolean operation {op!r}")
        if f > g:
            f, g = g, f
        key = (op, f, g)
        cached = self._apply_memo.get(key)
        if cached is not None:
            return cached
        level_f, level_g = manager.level(f), manager.level(g)
        level = min(level_f, level_g)
        f_low, f_high = (manager.low(f), manager.high(f)) if level_f == level else (f, f)
        g_low, g_high = (manager.low(g), manager.high(g)) if level_g == level else (g, g)
        low = self.apply(op, f_low, g_low)
        high = self.apply(op, f_high, g_high)
        result = manager.make_node(level, low, high)
        self._apply_memo[key] = result
        return result

    def negate(self, f: int) -> int:
        """Recursive complement (swap the terminals)."""
        if f == ZERO:
            return ONE
        if f == ONE:
            return ZERO
        cached = self._negate_memo.get(f)
        if cached is not None:
            return cached
        manager = self.manager
        result = manager.make_node(
            manager.level(f), self.negate(manager.low(f)), self.negate(manager.high(f))
        )
        self._negate_memo[f] = result
        self._negate_memo[result] = f
        return result

    # ------------------------------------------------------------ probability
    def probability(self, root: int, probability_of_level: Mapping[int, float]) -> float:
        """Recursive memoized Shannon expansion."""
        manager = self.manager
        memo: dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(node: int) -> float:
            cached = memo.get(node)
            if cached is not None:
                return cached
            probability = probability_of_level[manager.level(node)]
            result = (1.0 - probability) * walk(manager.low(node)) + probability * walk(
                manager.high(node)
            )
            memo[node] = result
            return result

        return walk(root)


def reference_build_obdd(
    formula: DNF,
    order: VariableOrder,
    manager: ObddManager | None = None,
    method: str = "synthesis",
) -> CompiledObdd:
    """Compile a DNF with the recursive reference kernel.

    Mirrors :func:`repro.obdd.construct.build_obdd`: ``"synthesis"``
    accumulates clause OBDDs with recursive pairwise apply, ``"concat"``
    partitions into connected components and ORs the component OBDDs
    (recursively) in level order.  The clause schedule matches the
    production kernel's, so not only the reduced result but the entire
    synthesis trace is comparable.
    """
    kernel = ReferenceKernel(manager)
    manager = kernel.manager
    missing = [v for v in formula.variables() if v not in order]
    if missing:
        raise CompilationError(f"variables {missing[:5]} are not in the variable order")
    if formula.is_true:
        return CompiledObdd(manager, ONE, order)
    if formula.is_false:
        return CompiledObdd(manager, ZERO, order)

    def synthesize(clauses) -> int:
        root = ZERO
        for levels in sorted(
            sorted(order.level_of(variable) for variable in clause) for clause in clauses
        ):
            root = kernel.apply("or", root, clause_obdd(manager, levels))
        return root

    if method == "synthesis":
        return CompiledObdd(manager, synthesize(list(formula.clauses)), order)
    if method != "concat":
        raise CompilationError(f"unknown construction method {method!r}")
    components = sorted(
        connected_components(formula.clauses),
        key=lambda component: min(
            order.level_of(variable) for clause in component for variable in clause
        ),
    )
    root = ZERO
    for component in components:
        root = kernel.apply("or", root, synthesize(component))
    return CompiledObdd(manager, root, order)
