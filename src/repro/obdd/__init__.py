"""OBDD substrate: manager, variable orders, ConOBDD construction, analysis."""

from repro.obdd.analysis import (
    find_separator,
    has_separator,
    is_inversion_free,
    root_variables,
)
from repro.obdd.construct import (
    CompiledObdd,
    build_component_root,
    build_obdd,
    clause_obdd,
    concatenate_dnf,
    connected_components,
    synthesize_dnf,
)
from repro.obdd.manager import ONE, TERMINAL_LEVEL, ZERO, ObddManager, dump_dot, iter_paths
from repro.obdd.order import VariableOrder, natural_order, order_from_permutations

__all__ = [
    "CompiledObdd",
    "ONE",
    "ObddManager",
    "TERMINAL_LEVEL",
    "VariableOrder",
    "ZERO",
    "build_component_root",
    "build_obdd",
    "clause_obdd",
    "concatenate_dnf",
    "connected_components",
    "dump_dot",
    "find_separator",
    "has_separator",
    "is_inversion_free",
    "iter_paths",
    "natural_order",
    "order_from_permutations",
    "root_variables",
    "synthesize_dnf",
]
