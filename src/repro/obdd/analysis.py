"""Structural analysis of UCQs: root variables, separators, inversion-freeness.

These notions (Sect. 4.2 of the paper, based on Jha & Suciu, ICDT 2011)
determine when the ConOBDD construction can proceed purely by concatenation
and therefore when the compiled OBDD is guaranteed to be linear in the size
of the active domain:

* a *root variable* of a CQ appears in every atom of the CQ (restricted to
  the probabilistic relations — deterministic atoms contribute no lineage);
* a *separator variable* of a UCQ is a choice of root variable per disjunct
  such that any two atoms with the same relation symbol carry it at the same
  attribute position;
* a UCQ is *inversion-free* if it can be recursively decomposed by
  independent components and separator variables down to ground atoms.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable
from repro.query.ucq import UCQ, as_ucq


def _probabilistic_atoms(cq: ConjunctiveQuery, probabilistic: set[str] | None):
    atoms = list(cq.atoms)
    if probabilistic is None:
        return atoms
    return [atom for atom in atoms if atom.relation in probabilistic]


def root_variables(
    cq: ConjunctiveQuery, probabilistic: set[str] | None = None
) -> set[Variable]:
    """Variables occurring in every (probabilistic) atom of the CQ."""
    atoms = _probabilistic_atoms(cq, probabilistic)
    if not atoms:
        return set()
    common: set[Variable] | None = None
    for atom in atoms:
        atom_vars = set(atom.variables())
        common = atom_vars if common is None else common & atom_vars
    return common or set()


def _positions_of(atom, variable: Variable) -> set[int]:
    return {i for i, term in enumerate(atom.terms) if term == variable}


def find_separator(
    query: UCQ | ConjunctiveQuery, probabilistic: set[str] | None = None
) -> Optional[dict[int, Variable]]:
    """Find a separator variable assignment for a Boolean UCQ.

    Returns a mapping ``disjunct index -> chosen root variable`` if one choice
    of root variables per disjunct places the variable at a consistent
    attribute position in every occurrence of every shared relation symbol,
    or ``None`` if no separator exists.
    """
    ucq = as_ucq(query)
    candidate_lists: list[list[Variable]] = []
    for cq in ucq.disjuncts:
        roots = sorted(root_variables(cq, probabilistic), key=lambda v: v.name)
        if not roots:
            atoms = _probabilistic_atoms(cq, probabilistic)
            if not atoms:
                # A disjunct without probabilistic atoms imposes no constraint.
                candidate_lists.append([Variable("__none__")])
                continue
            return None
        candidate_lists.append(roots)

    def consistent(choice: list[Variable]) -> bool:
        position_of_relation: dict[str, set[int]] = {}
        for cq, variable in zip(ucq.disjuncts, choice):
            if variable.name == "__none__":
                continue
            for atom in _probabilistic_atoms(cq, probabilistic):
                positions = _positions_of(atom, variable)
                if not positions:
                    return False
                known = position_of_relation.setdefault(atom.relation, positions)
                if not (known & positions):
                    return False
                position_of_relation[atom.relation] = known & positions
        return True

    def search(index: int, chosen: list[Variable]) -> Optional[list[Variable]]:
        if index == len(candidate_lists):
            return list(chosen) if consistent(chosen) else None
        for variable in candidate_lists[index]:
            chosen.append(variable)
            if consistent(chosen):
                found = search(index + 1, chosen)
                if found is not None:
                    return found
            chosen.pop()
        return None

    found = search(0, [])
    if found is None:
        return None
    return {
        index: variable
        for index, variable in enumerate(found)
        if variable.name != "__none__"
    }


def _strip_separator(cq: ConjunctiveQuery, separator: Variable) -> ConjunctiveQuery | None:
    """Remove the separator variable position from every atom (recursion step)."""
    from repro.query.atoms import Atom

    new_atoms = []
    for atom in cq.atoms:
        new_terms = [term for term in atom.terms if term != separator]
        if not new_terms:
            return None
        new_atoms.append(Atom(atom.relation, new_terms))
    remaining_vars = {v for atom in new_atoms for v in atom.variables()}
    comparisons = [
        c for c in cq.comparisons if all(v in remaining_vars for v in c.variables())
    ]
    head = [v for v in cq.head if v in remaining_vars]
    return ConjunctiveQuery(head, new_atoms, comparisons, name=cq.name)


def _independent_groups(ucq: UCQ, probabilistic: set[str] | None) -> list[list[int]]:
    """Group disjunct indices by shared probabilistic relation symbols."""
    groups: list[tuple[set[str], list[int]]] = []
    for index, cq in enumerate(ucq.disjuncts):
        relations = {a.relation for a in _probabilistic_atoms(cq, probabilistic)}
        merged: tuple[set[str], list[int]] | None = None
        remaining: list[tuple[set[str], list[int]]] = []
        for group_relations, members in groups:
            if group_relations & relations or (not relations and not group_relations):
                if merged is None:
                    merged = (group_relations | relations, members + [index])
                else:
                    merged = (merged[0] | group_relations, merged[1] + members)
            else:
                remaining.append((group_relations, members))
        if merged is None:
            merged = (relations, [index])
        groups = remaining + [merged]
    return [members for __, members in groups]


def is_inversion_free(
    query: UCQ | ConjunctiveQuery,
    probabilistic: set[str] | None = None,
    _depth: int = 0,
) -> bool:
    """True if the UCQ is inversion-free (ConOBDD needs no synthesis in R3).

    Inversion-free queries compile to OBDDs of constant width, hence linear
    size in the active domain (Proposition 2 of the paper).
    """
    if _depth > 32:
        return False
    ucq = as_ucq(query)

    # Base case: no probabilistic atoms anywhere.
    if all(not _probabilistic_atoms(cq, probabilistic) for cq in ucq.disjuncts):
        return True

    # Decompose into independent groups (no shared probabilistic symbols).
    groups = _independent_groups(ucq, probabilistic)
    if len(groups) > 1:
        return all(
            is_inversion_free(
                UCQ([ucq.disjuncts[i] for i in members], name=ucq.name),
                probabilistic,
                _depth + 1,
            )
            for members in groups
        )

    separator = find_separator(ucq, probabilistic)
    if separator is None:
        # Single disjunct with a single probabilistic atom left is fine.
        if len(ucq.disjuncts) == 1:
            atoms = _probabilistic_atoms(ucq.disjuncts[0], probabilistic)
            if len(atoms) <= 1:
                return True
        return False

    stripped: list[ConjunctiveQuery] = []
    for index, cq in enumerate(ucq.disjuncts):
        if index not in separator:
            stripped.append(cq)
            continue
        reduced = _strip_separator(cq, separator[index])
        if reduced is None:
            continue
        if not _probabilistic_atoms(reduced, probabilistic):
            continue
        stripped.append(reduced)
    if not stripped:
        return True
    heads = {tuple(v.name for v in cq.head) for cq in stripped}
    if len(heads) > 1:
        stripped = [
            ConjunctiveQuery([], cq.atoms, cq.comparisons, name=cq.name) for cq in stripped
        ]
    return is_inversion_free(UCQ(stripped, name=ucq.name), probabilistic, _depth + 1)


def has_separator(query: UCQ | ConjunctiveQuery, probabilistic: Iterable[str] | None = None) -> bool:
    """Convenience wrapper: does the query admit a separator variable?"""
    prob_set = set(probabilistic) if probabilistic is not None else None
    return find_separator(query, prob_set) is not None
