"""OBDD construction for UCQ lineage: synthesis vs concatenation (ConOBDD).

Two construction strategies are provided for a monotone DNF lineage under a
fixed variable order:

* ``synthesis`` — the CUDD-style baseline: build one small OBDD per clause
  and OR them into an accumulator with pairwise ``apply``.  Every step
  re-traverses the accumulated result, so total work grows quadratically in
  the number of independent blocks.

* ``concat`` — the paper's ConOBDD strategy (rules R1–R4): partition the
  clauses into connected components (clauses sharing no variables are
  independent), lay the components out along the variable order, synthesise
  only *inside* a component, and chain consecutive components by
  *concatenation* (replacing the 0-terminal of one component's OBDD with the
  root of the next), which is linear.  When the query has a separator
  variable and the order is derived from separator-first permutations, every
  component is tiny and the whole construction is linear in the data — this
  is Proposition 1/2 of the paper.

Both strategies produce the same reduced OBDD (the order determines it
uniquely); only the construction cost differs, which is what Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Mapping

from repro.errors import CompilationError
from repro.lineage.dnf import DNF, Clause
from repro.obdd.manager import _ID_BITS, ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder

ConstructionMethod = Literal["concat", "synthesis"]


@dataclass
class CompiledObdd:
    """A compiled lineage: manager, root node, and the variable order used."""

    manager: ObddManager
    root: int
    order: VariableOrder

    @property
    def size(self) -> int:
        """Number of internal nodes."""
        return self.manager.size(self.root)

    @property
    def width(self) -> int:
        """Maximum number of nodes at any level."""
        return self.manager.width(self.root)

    def probability(self, probabilities: Mapping[int, float]) -> float:
        """Probability of the compiled formula (``probabilities`` keyed by variable)."""
        by_level = self.order.probabilities_by_level(probabilities)
        return self.manager.probability(self.root, by_level)

    def negate(self) -> "CompiledObdd":
        """The compiled complement."""
        return CompiledObdd(self.manager, self.manager.negate(self.root), self.order)


def clause_obdd(manager: ObddManager, levels: Iterable[int]) -> int:
    """OBDD of a conjunction of positive literals given by their levels."""
    return manager.conjunction_chain(levels)


def connected_components(clauses: Iterable[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables."""
    clause_list = list(clauses)
    var_to_indices: dict[int, list[int]] = {}
    for index, clause in enumerate(clause_list):
        for variable in clause:
            var_to_indices.setdefault(variable, []).append(index)
    visited = [False] * len(clause_list)
    components: list[list[Clause]] = []
    for start in range(len(clause_list)):
        if visited[start]:
            continue
        stack = [start]
        visited[start] = True
        component: list[Clause] = []
        while stack:
            index = stack.pop()
            component.append(clause_list[index])
            for variable in clause_list[index]:
                for other in var_to_indices[variable]:
                    if not visited[other]:
                        visited[other] = True
                        stack.append(other)
        components.append(component)
    return components


def _synthesize_clauses(manager: ObddManager, clauses: list[Clause], order: VariableOrder) -> int:
    """OR together clause OBDDs with pairwise apply (the CUDD-style schedule).

    Clauses are processed in lexicographic order of their level lists; two
    distinct clauses of a DNF always have distinct level lists (the order is
    a bijection), so the processing order — and hence the apply schedule —
    is a pure function of the formula and the order.
    """
    level_of = order.level_map
    root = ZERO
    for levels in sorted(sorted(map(level_of.__getitem__, clause)) for clause in clauses):
        root = manager.apply_or(root, clause_obdd(manager, levels))
    return root


def _compile_block(manager: ObddManager, level_lists: list[list[int]], default: int) -> int:
    """Direct top-down compile of ``OR(clauses)`` with failure paths → ``default``.

    This is the ConOBDD block synthesis: instead of building one OBDD per
    clause and folding them with pairwise apply (re-traversing the
    accumulated result once per clause), the clause set is compiled in a
    single memoized top-down expansion over *interned clause suffixes*.
    Clauses are sorted by level list, so the clauses not yet entered on the
    current path form a contiguous tail identified by one index, and a
    state is ``(next clause index, active suffix ids)`` — its size is
    bounded by the block's OBDD width, not its clause count.  Passing the
    next block's root as ``default`` fuses the concatenation step (the
    paper's 0-terminal redirection) into the construction itself, so
    chaining blocks costs nothing extra.  The result is the same reduced
    OBDD that pairwise synthesis plus substitution produces — it is
    canonical under the order.

    ``level_lists`` holds one ascending level list per clause.  Multi-clause
    state expansions are counted in ``manager.apply_steps`` as synthesis
    steps; pure chain construction (single-clause blocks and exhausted
    states) is concatenation work and is not counted, matching the paper's
    accounting where concatenation performs no synthesis.
    """
    if not level_lists:
        return default
    levels_arr = manager._level
    lows = manager._low
    highs = manager._high
    unique = manager._unique
    unique_get = unique.get

    # Single clause: a chain whose every failing branch drops to ``default``.
    if len(level_lists) == 1:
        node = ONE
        for level in reversed(level_lists[0]):
            if node == default:
                continue  # reduction: both children equal
            key = (level << 64) | (default << _ID_BITS) | node
            chained = unique_get(key)
            if chained is None:
                chained = len(levels_arr)
                levels_arr.append(level)
                lows.append(default)
                highs.append(node)
                unique[key] = chained
            node = chained
        return node

    # Content-interned clause suffixes: suffix id i has first level
    # ``heads[i]`` and remainder ``tails[i]`` (-1 = clause satisfied after
    # this literal).  Interning by content lets suffixes shared between
    # clauses collapse to one id, so states deduplicate maximally.
    heads: list[int] = []
    tails: list[int] = []
    intern: dict[tuple[int, int], int] = {}
    roots: list[int] = []
    for levels in sorted(level_lists):
        suffix = -1
        for level in reversed(levels):
            key = (level, suffix)
            suffix = intern.get(key, -2)
            if suffix == -2:
                suffix = len(heads)
                heads.append(level)
                tails.append(key[1])
                intern[key] = suffix
        roots.append(suffix)
    clause_count = len(roots)

    #: Compiled OBDD of a single remaining suffix (chain with default lows).
    chain_memo: dict[int, int] = {}

    def chain_of(suffix: int) -> int:
        cached = chain_memo.get(suffix)
        if cached is not None:
            return cached
        node = ONE
        walk = suffix
        path = []
        while walk >= 0:
            path.append(walk)
            walk = tails[walk]
        for position in reversed(path):
            cached = chain_memo.get(position)
            if cached is not None:
                node = cached
                continue
            level = heads[position]
            if node == default:
                chain_memo[position] = node
                continue
            key = (level << 64) | (default << _ID_BITS) | node
            chained = unique_get(key)
            if chained is None:
                chained = len(levels_arr)
                levels_arr.append(level)
                lows.append(default)
                highs.append(node)
                unique[key] = chained
            node = chained
            chain_memo[position] = node
        return node

    # States are ``(next_clause, suffix, suffix, ...)``: clauses are sorted
    # by level list, so the clauses not yet entered on the current path form
    # a contiguous tail of ``roots`` identified by one index, and only the
    # *active* suffixes (entered but undecided clauses) are enumerated —
    # their number is bounded by the block's OBDD width, not its clause
    # count.  This keeps state size (and hashing) small even for
    # thousand-clause chains.
    memo: dict[tuple[int, ...], int] = {}
    memo_get = memo.get
    steps = 0
    frames: list[tuple] = []
    push = frames.append

    def expand(state: tuple[int, ...]):
        """Cofactor a state at its top level.

        Returns ``(level, low_child, high_child)`` where a child is either a
        resolved node id (int) or a state tuple to be compiled.
        """
        next_clause = state[0]
        if next_clause < clause_count:
            level = heads[roots[next_clause]]
            for i in state[1:]:
                head = heads[i]
                if head < level:
                    level = head
        else:
            level = heads[state[1]]
            for i in state[2:]:
                head = heads[i]
                if head < level:
                    level = head
        carried: list[int] = []
        advanced: list[int] = []
        satisfied = False
        for i in state[1:]:
            if heads[i] == level:
                tail = tails[i]
                if tail < 0:
                    satisfied = True
                else:
                    advanced.append(tail)
            else:
                carried.append(i)
        while next_clause < clause_count:
            root = roots[next_clause]
            if heads[root] != level:
                break
            tail = tails[root]
            if tail < 0:
                satisfied = True
            else:
                advanced.append(tail)
            next_clause += 1

        if not carried and next_clause == clause_count:
            low_child = default
        elif len(carried) == 1 and next_clause == clause_count:
            low_child = chain_of(carried[0])
        else:
            low_child = (next_clause, *carried)

        if satisfied:
            high_child = ONE
        else:
            high_ids = carried + advanced
            if not high_ids and next_clause == clause_count:
                high_child = default
            elif len(set(high_ids)) == 1 and next_clause == clause_count:
                high_child = chain_of(high_ids[0])
            else:
                high_child = (next_clause, *sorted(set(high_ids)))
        return level, low_child, high_child

    state: tuple[int, ...] = (0,)
    while True:
        # ---- descend on the state in the register.
        while True:
            level, low_child, high_child = expand(state)
            if type(low_child) is tuple:
                low_result = memo_get(low_child)
                if low_result is None:
                    push((state, level, high_child))
                    state = low_child
                    continue
            else:
                low_result = low_child
            if type(high_child) is tuple:
                high_result = memo_get(high_child)
                if high_result is None:
                    push((state, level, low_result, None))
                    state = high_child
                    continue
            else:
                high_result = high_child
            break

        # ---- emit and unwind.
        descend = False
        while True:
            if low_result == high_result:
                result = low_result
            else:
                key = (level << 64) | (low_result << _ID_BITS) | high_result
                result = unique_get(key)
                if result is None:
                    result = len(levels_arr)
                    levels_arr.append(level)
                    lows.append(low_result)
                    highs.append(high_result)
                    unique[key] = result
            memo[state] = result
            steps += 1
            if not frames:
                manager.apply_steps += steps
                return result
            frame = frames.pop()
            if len(frame) == 3:
                state, level, high_child = frame
                low_result = result
                if type(high_child) is tuple:
                    high_result = memo_get(high_child)
                    if high_result is None:
                        push((state, level, low_result, None))
                        state = high_child
                        descend = True
                        break
                else:
                    high_result = high_child
            else:
                state, level, low_result, __ = frame
                high_result = result
        if descend:
            continue


def build_component_root(
    manager: ObddManager,
    clauses: Iterable[Clause],
    order: VariableOrder,
    method: ConstructionMethod = "concat",
) -> int:
    """Compile one connected component's clauses, skipping re-partitioning.

    The MV-index compiles every component of ``W`` separately; routing those
    compiles through :func:`build_obdd` would re-run connected-component
    discovery and DNF normalization on clause sets already known to be one
    normalized component.  ``"concat"`` compiles the clause set directly
    with the memoized top-down block compile, ``"synthesis"`` folds the
    clause OBDDs pairwise (the CUDD-style schedule); both produce the same
    reduced OBDD.
    """
    clause_list = list(clauses)
    if method == "synthesis":
        return _synthesize_clauses(manager, clause_list, order)
    if method == "concat":
        level_of = order.level_map
        level_lists = [
            sorted(map(level_of.__getitem__, clause)) for clause in clause_list
        ]
        return _compile_block(manager, level_lists, ZERO)
    raise CompilationError(f"unknown construction method {method!r}")


def synthesize_dnf(manager: ObddManager, formula: DNF, order: VariableOrder) -> int:
    """CUDD-style construction: accumulate every clause with pairwise apply."""
    if formula.is_true:
        return ONE
    if formula.is_false:
        return ZERO
    return _synthesize_clauses(manager, list(formula.clauses), order)


def concatenate_dnf(manager: ObddManager, formula: DNF, order: VariableOrder) -> int:
    """ConOBDD construction: synthesis inside components, concatenation across.

    Components whose level ranges interleave cannot be concatenated (the
    result would not be ordered); they are merged into a single synthesis
    block — this is the hybrid case discussed after rule R4 in the paper.
    """
    if formula.is_true:
        return ONE
    if formula.is_false:
        return ZERO

    level_of = order.level_map
    components = connected_components(formula.clauses)
    ranges = []
    for component in components:
        levels = [level_of[v] for clause in component for v in clause]
        ranges.append((min(levels), max(levels), component))
    ranges.sort(key=lambda item: item[0])

    # Merge interleaving components into blocks of non-overlapping level ranges.
    blocks: list[tuple[int, int, list[Clause]]] = []
    for low, high, component in ranges:
        if blocks and low <= blocks[-1][1]:
            previous_low, previous_high, previous_clauses = blocks[-1]
            blocks[-1] = (previous_low, max(previous_high, high), previous_clauses + component)
        else:
            blocks.append((low, high, list(component)))

    # Build blocks from the last (largest levels) to the first.  The paper's
    # concatenation step — redirect the 0-terminal of a block to the
    # disjunction of everything after it — is fused into the block compile
    # itself: the accumulated result rides along as the failure terminal.
    result = ZERO
    for __, __, clauses in reversed(blocks):
        level_lists = [sorted(map(level_of.__getitem__, clause)) for clause in clauses]
        result = _compile_block(manager, level_lists, result)
    return result


def build_obdd(
    formula: DNF,
    order: VariableOrder,
    manager: ObddManager | None = None,
    method: ConstructionMethod = "concat",
) -> CompiledObdd:
    """Compile a monotone DNF lineage into an OBDD under ``order``.

    Parameters
    ----------
    formula:
        The lineage to compile.
    order:
        Variable order; every variable of ``formula`` must be in it.
    manager:
        Optional existing manager (so several formulas share a unique table).
    method:
        ``"concat"`` (ConOBDD, default) or ``"synthesis"`` (CUDD baseline).
    """
    missing = [v for v in formula.variables() if v not in order]
    if missing:
        raise CompilationError(f"variables {missing[:5]} are not in the variable order")
    manager = manager if manager is not None else ObddManager()
    if method == "synthesis":
        root = synthesize_dnf(manager, formula, order)
    elif method == "concat":
        root = concatenate_dnf(manager, formula, order)
    else:
        raise CompilationError(f"unknown construction method {method!r}")
    return CompiledObdd(manager, root, order)
