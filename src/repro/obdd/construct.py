"""OBDD construction for UCQ lineage: synthesis vs concatenation (ConOBDD).

Two construction strategies are provided for a monotone DNF lineage under a
fixed variable order:

* ``synthesis`` — the CUDD-style baseline: build one small OBDD per clause
  and OR them into an accumulator with pairwise ``apply``.  Every step
  re-traverses the accumulated result, so total work grows quadratically in
  the number of independent blocks.

* ``concat`` — the paper's ConOBDD strategy (rules R1–R4): partition the
  clauses into connected components (clauses sharing no variables are
  independent), lay the components out along the variable order, synthesise
  only *inside* a component, and chain consecutive components by
  *concatenation* (replacing the 0-terminal of one component's OBDD with the
  root of the next), which is linear.  When the query has a separator
  variable and the order is derived from separator-first permutations, every
  component is tiny and the whole construction is linear in the data — this
  is Proposition 1/2 of the paper.

Both strategies produce the same reduced OBDD (the order determines it
uniquely); only the construction cost differs, which is what Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Mapping

from repro.errors import CompilationError
from repro.lineage.dnf import DNF, Clause
from repro.obdd.manager import ONE, ZERO, ObddManager
from repro.obdd.order import VariableOrder

ConstructionMethod = Literal["concat", "synthesis"]


@dataclass
class CompiledObdd:
    """A compiled lineage: manager, root node, and the variable order used."""

    manager: ObddManager
    root: int
    order: VariableOrder

    @property
    def size(self) -> int:
        """Number of internal nodes."""
        return self.manager.size(self.root)

    @property
    def width(self) -> int:
        """Maximum number of nodes at any level."""
        return self.manager.width(self.root)

    def probability(self, probabilities: Mapping[int, float]) -> float:
        """Probability of the compiled formula (``probabilities`` keyed by variable)."""
        by_level = self.order.probabilities_by_level(probabilities)
        return self.manager.probability(self.root, by_level)

    def negate(self) -> "CompiledObdd":
        """The compiled complement."""
        return CompiledObdd(self.manager, self.manager.negate(self.root), self.order)


def clause_obdd(manager: ObddManager, levels: Iterable[int]) -> int:
    """OBDD of a conjunction of positive literals given by their levels."""
    node = ONE
    for level in sorted(levels, reverse=True):
        node = manager.make_node(level, ZERO, node)
    return node


def connected_components(clauses: Iterable[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables."""
    clause_list = list(clauses)
    var_to_indices: dict[int, list[int]] = {}
    for index, clause in enumerate(clause_list):
        for variable in clause:
            var_to_indices.setdefault(variable, []).append(index)
    visited = [False] * len(clause_list)
    components: list[list[Clause]] = []
    for start in range(len(clause_list)):
        if visited[start]:
            continue
        stack = [start]
        visited[start] = True
        component: list[Clause] = []
        while stack:
            index = stack.pop()
            component.append(clause_list[index])
            for variable in clause_list[index]:
                for other in var_to_indices[variable]:
                    if not visited[other]:
                        visited[other] = True
                        stack.append(other)
        components.append(component)
    return components


def _clause_levels(clause: Clause, order: VariableOrder) -> list[int]:
    return sorted(order.level_of(variable) for variable in clause)


def _synthesize_clauses(manager: ObddManager, clauses: list[Clause], order: VariableOrder) -> int:
    """OR together clause OBDDs with pairwise apply (used inside components)."""
    root = ZERO
    for clause in sorted(clauses, key=lambda c: _clause_levels(c, order)):
        root = manager.apply_or(root, clause_obdd(manager, _clause_levels(clause, order)))
    return root


def synthesize_dnf(manager: ObddManager, formula: DNF, order: VariableOrder) -> int:
    """CUDD-style construction: accumulate every clause with pairwise apply."""
    if formula.is_true:
        return ONE
    if formula.is_false:
        return ZERO
    return _synthesize_clauses(manager, list(formula.clauses), order)


def concatenate_dnf(manager: ObddManager, formula: DNF, order: VariableOrder) -> int:
    """ConOBDD construction: synthesis inside components, concatenation across.

    Components whose level ranges interleave cannot be concatenated (the
    result would not be ordered); they are merged into a single synthesis
    block — this is the hybrid case discussed after rule R4 in the paper.
    """
    if formula.is_true:
        return ONE
    if formula.is_false:
        return ZERO

    components = connected_components(formula.clauses)
    ranges = []
    for component in components:
        levels = [order.level_of(v) for clause in component for v in clause]
        ranges.append((min(levels), max(levels), component))
    ranges.sort(key=lambda item: item[0])

    # Merge interleaving components into blocks of non-overlapping level ranges.
    blocks: list[tuple[int, int, list[Clause]]] = []
    for low, high, component in ranges:
        if blocks and low <= blocks[-1][1]:
            previous_low, previous_high, previous_clauses = blocks[-1]
            blocks[-1] = (previous_low, max(previous_high, high), previous_clauses + component)
        else:
            blocks.append((low, high, list(component)))

    # Build blocks from the last (largest levels) to the first, redirecting the
    # 0-terminal of each block to the disjunction of everything after it.
    result = ZERO
    for __, __, clauses in reversed(blocks):
        block_root = _synthesize_clauses(manager, clauses, order)
        if result == ZERO:
            result = block_root
        else:
            result = manager.substitute_terminal(block_root, ZERO, result)
    return result


def build_obdd(
    formula: DNF,
    order: VariableOrder,
    manager: ObddManager | None = None,
    method: ConstructionMethod = "concat",
) -> CompiledObdd:
    """Compile a monotone DNF lineage into an OBDD under ``order``.

    Parameters
    ----------
    formula:
        The lineage to compile.
    order:
        Variable order; every variable of ``formula`` must be in it.
    manager:
        Optional existing manager (so several formulas share a unique table).
    method:
        ``"concat"`` (ConOBDD, default) or ``"synthesis"`` (CUDD baseline).
    """
    missing = [v for v in formula.variables() if v not in order]
    if missing:
        raise CompilationError(f"variables {missing[:5]} are not in the variable order")
    manager = manager if manager is not None else ObddManager()
    if method == "synthesis":
        root = synthesize_dnf(manager, formula, order)
    elif method == "concat":
        root = concatenate_dnf(manager, formula, order)
    else:
        raise CompilationError(f"unknown construction method {method!r}")
    return CompiledObdd(manager, root, order)
