"""Variable orders for OBDD construction.

The paper (Sect. 4.2) derives the tuple order Π from a set of attribute
permutations π = {π_R1, ..., π_Rk}: order the active domain, then group all
tuples whose first attribute (according to π of their relation) is the
smallest constant, recurse inside each group, and concatenate the groups.
For the schema ``R(A), S(A,B)`` with π_R = (A), π_S = (A,B) and domain
``a1 < a2 < b1 < ...`` this produces ``X1, Y1, Y2, X2, Y3, Y4`` — the order
of Fig. 3 — which is exactly the order that lets independent sub-OBDDs be
*concatenated* instead of synthesised.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import CompilationError
from repro.indb.database import TupleIndependentDatabase


class VariableOrder:
    """A bijection between tuple variables and OBDD levels."""

    def __init__(self, variables_in_order: Iterable[int]) -> None:
        self._level_of: dict[int, int] = {}
        self._var_of: list[int] = []
        for variable in variables_in_order:
            if variable in self._level_of:
                raise CompilationError(f"variable {variable} appears twice in the order")
            self._level_of[variable] = len(self._var_of)
            self._var_of.append(variable)

    def __len__(self) -> int:
        return len(self._var_of)

    def __contains__(self, variable: int) -> bool:
        return variable in self._level_of

    def level_of(self, variable: int) -> int:
        """OBDD level of a tuple variable."""
        try:
            return self._level_of[variable]
        except KeyError as exc:
            raise CompilationError(f"variable {variable} is not in the order") from exc

    @property
    def level_map(self) -> Mapping[int, int]:
        """The ``variable → level`` mapping itself, for hot-path bulk lookups.

        Callers must treat the mapping as read-only; unlike
        :meth:`level_of` a missing variable surfaces as a plain
        ``KeyError``, so validate membership first (as
        :func:`repro.obdd.construct.build_obdd` does).
        """
        return self._level_of

    def variable_at(self, level: int) -> int:
        """Tuple variable placed at ``level``."""
        return self._var_of[level]

    def variables(self) -> list[int]:
        """Variables in order of increasing level."""
        return list(self._var_of)

    def extend(self, variables: Iterable[int]) -> "VariableOrder":
        """A new order with any unseen ``variables`` appended at the end.

        Used when a query's lineage mentions tuples that do not participate in
        any MarkoView: they are placed after all view variables, which keeps
        the offline MV-index order valid.
        """
        extra = [v for v in variables if v not in self._level_of]
        return VariableOrder(self._var_of + extra)

    def probabilities_by_level(self, probabilities: Mapping[int, float]) -> dict[int, float]:
        """Re-key a ``variable -> probability`` map by OBDD level."""
        return {
            level: probabilities[variable]
            for variable, level in self._level_of.items()
            if variable in probabilities
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariableOrder({len(self)} variables)"


def _sort_key(value: Any) -> tuple[str, Any]:
    """A total order over mixed-type constants (type name first, then value)."""
    return (type(value).__name__, value)


def order_from_permutations(
    indb: TupleIndependentDatabase,
    permutations: Mapping[str, Sequence[str]] | None = None,
    relations: Iterable[str] | None = None,
) -> VariableOrder:
    """Derive the tuple order Π from attribute permutations π (Sect. 4.2).

    Parameters
    ----------
    indb:
        The tuple-independent database whose probabilistic tuples are ordered.
    permutations:
        Optional mapping ``relation -> attribute name sequence``; relations
        not listed use their schema attribute order.  Choosing the permutation
        so that separator attributes come first is the paper's heuristic for
        enabling concatenation.
    relations:
        Which probabilistic relations to include (default: all), in the given
        priority order — used to break ties between tuples of different
        relations sharing the same leading constants (smaller arity first, as
        in the paper's ordering of relation names by arity).
    """
    if relations is None:
        names = sorted(
            indb.probabilistic_relations(),
            key=lambda name: (indb.database.table(name).schema.arity, name),
        )
    else:
        names = list(relations)

    entries: list[tuple[tuple[tuple[str, Any], ...], int, int]] = []
    for priority, name in enumerate(names):
        table = indb.database.table(name)
        schema = table.schema
        if permutations and name in permutations:
            positions = [schema.position_of(a) for a in permutations[name]]
        else:
            positions = list(range(schema.arity))
        for row in table.rows():
            variable = indb.variable_for(name, row)
            if variable is None:
                continue
            key = tuple(_sort_key(row[p]) for p in positions)
            entries.append((key, priority, variable))

    # Lexicographic order on the permuted rows; shorter rows sort before their
    # extensions (Python tuple comparison), and ties across relations follow
    # the relation priority, reproducing the recursive grouping of Sect. 4.2.
    entries.sort(key=lambda entry: (entry[0], len(entry[0]), entry[1]))
    return VariableOrder(variable for __, __, variable in entries)


def natural_order(variables: Iterable[int]) -> VariableOrder:
    """A fallback order: variables sorted by their integer id."""
    return VariableOrder(sorted(set(variables)))
