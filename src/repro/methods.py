"""The inference-method registry: pluggable evaluation strategies.

Every way of turning an answer's lineage into a probability — CC-MVIntersect
against the MV-index, pointer-based MVIntersect, from-scratch OBDD
construction, Shannon expansion, brute-force enumeration, Monte-Carlo
sampling — is an :class:`InferenceMethod` strategy object carrying
capability flags (``exact``, ``supports_negative_weights``).  The engine,
the serving session, the CLI and the experiment harness all resolve method
names through the one registry in this module, so a third-party method
plugs into every surface at once::

    import repro

    class MyMethod(repro.methods.InferenceMethod):
        name = "my-method"
        exact = False

        def probability(self, engine, lineage, statistics=None):
            ...

    repro.methods.register("my-method", MyMethod)
    db.query(q, method="my-method")

Methods whose ``supports_negative_weights`` flag is ``False`` are rejected
(with a clear :class:`~repro.errors.InferenceError`) on engines whose
Theorem 1 translation produced tuple probabilities outside ``[0, 1]`` —
positive MarkoView correlations do exactly that, and e.g. a sampler cannot
draw from a negative "probability".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Mapping

from repro.core.translate import clamp_probability, theorem1_probability
from repro.errors import InferenceError
from repro.lineage.dnf import DNF
from repro.lineage.enumeration import brute_force_probability
from repro.lineage.shannon import shannon_probability
from repro.mvindex.cc_intersect import cc_mv_intersect
from repro.mvindex.intersect import IntersectStatistics, mv_intersect
from repro.obdd.construct import build_obdd

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import MVQueryEngine

#: Name of the method used when a caller does not pick one.
DEFAULT_METHOD = "mvindex"


class InferenceMethod:
    """Base class for evaluation strategies.

    Subclasses implement :meth:`probability` and override the class-level
    capability flags.  Instances must be stateless with respect to engines
    (one instance serves every engine in the process).
    """

    #: Registry name (set on registration when left empty).
    name: str = ""
    #: Whether the method computes exact probabilities.
    exact: bool = True
    #: Whether the method handles tuple probabilities outside ``[0, 1]``
    #: (the negative weights produced by positive MarkoView correlations).
    supports_negative_weights: bool = True
    #: Whether :meth:`probability` accepts the ``skip`` keyword (a
    #: pre-computed :class:`~repro.mvindex.summaries.SkipAnalysis`).  Call
    #: sites only pass ``skip=`` when this is ``True``, so third-party
    #: methods with the plain three-argument signature keep working.
    supports_skip: bool = False
    #: One-line description shown by ``repro.methods.describe()``.
    description: str = ""

    def probability(
        self,
        engine: "MVQueryEngine",
        lineage: DNF,
        statistics: IntersectStatistics | None = None,
    ) -> float:
        """``P(Q)`` of one answer lineage on ``engine``'s MVDB.

        Implementations receive the full engine, so they can use the
        translated INDB, the lineage of ``W``, the variable order and (when
        built) the MV-index.  ``statistics``, when given, should be filled
        with the work counters the evaluation performed.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "exact" if self.exact else "approximate"
        return f"{type(self).__name__}({self.name!r}, {kind})"


class _TheoremOneMethod(InferenceMethod):
    """Shared scaffolding: Eq. 5, ``P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))``.

    Subclasses supply the underlying ``P0`` computation on the translated
    INDB; this class routes the no-views case (an ordinary
    tuple-independent database) and the Theorem 1 combination.
    """

    def probability(self, engine, lineage, statistics=None):
        if lineage.is_false:
            return 0.0
        if engine.w_lineage.is_false:
            # No MarkoViews: this is an ordinary tuple-independent database.
            return self._independent(engine, lineage, statistics)
        p0_w = engine.p0_w()
        combined = lineage.or_(engine.w_lineage)
        p0_q_or_w = self._combined(engine, lineage, combined, statistics)
        return theorem1_probability(p0_q_or_w, p0_w)

    def _independent(self, engine, lineage, statistics) -> float:
        raise NotImplementedError

    def _combined(self, engine, lineage, combined, statistics) -> float:
        raise NotImplementedError


class _IntersectMethod(InferenceMethod):
    """Online evaluation against the pre-compiled MV-index (Sect. 4)."""

    supports_skip = True

    #: The intersection algorithm (set by subclasses).
    _intersect = None

    def probability(self, engine, lineage, statistics=None, skip=None):
        if lineage.is_false:
            return 0.0
        if engine.w_lineage.is_false:
            # No MarkoViews, hence no index: exact Shannon expansion.
            return shannon_probability(lineage, engine.probabilities)
        if engine.mv_index is None:
            raise InferenceError(
                "the MV-index was not built (build_index=False); use method='obdd' or 'shannon'"
            )
        # Condition on the touched components only: the untouched
        # ``P0(¬W_k)`` factors cancel between numerator and denominator, and
        # materialising them underflows to 0/0 once the index holds a few
        # thousand components (the 10^5+ tuple scales of Sect. 5).
        index = engine.mv_index
        numerator = type(self)._intersect(
            index,
            lineage,
            engine.probabilities,
            statistics=statistics,
            include_untouched=False,
            skip=skip,
        )
        touched_keys = {c.key for c in index.touched_components(lineage.variables())}
        if skip is not None and not touched_keys <= skip.relevant_keys:
            # Defensive fallback: a sound analysis always covers the touched
            # set, so this only fires on stale summaries — and then the
            # unrestricted scan keeps the answer correct regardless.
            skip = None
        if skip is not None:
            # The analysis proved touched ⊆ relevant, so the denominator
            # fold never has to scan the skipped components; same relative
            # order as the full scan, hence a bit-identical product.
            denominator = index.touched_factor_of(touched_keys)
        else:
            denominator = index.touched_factor(touched_keys)
        if denominator == 0.0:
            raise InferenceError(
                "P0(¬W) = 0: the MarkoView hard constraints are violated in every world"
            )
        value = numerator / denominator
        return clamp_probability(value, context=f"P0(Q ∧ ¬W) / P0(¬W) via {self.name!r}")


class MvIndexMethod(_IntersectMethod):
    """CC-MVIntersect: the cache-conscious flat-array traversal (default)."""

    name = "mvindex"
    description = "MV-index intersection via cache-conscious CC-MVIntersect"
    _intersect = staticmethod(cc_mv_intersect)


class MvIndexPointerMethod(_IntersectMethod):
    """MVIntersect: the pointer-based simultaneous traversal."""

    name = "mvindex-mv"
    description = "MV-index intersection via pointer-based MVIntersect"
    _intersect = staticmethod(mv_intersect)


class ObddMethod(_TheoremOneMethod):
    """Construct the OBDD of ``Q ∨ W`` from scratch for every query.

    The "augmented OBDD" line of Figs. 5/6 — correct but pays the full
    construction cost online.
    """

    name = "obdd"
    description = "from-scratch OBDD construction of Q ∨ W per query"

    def _independent(self, engine, lineage, statistics):
        order = engine.order.extend(sorted(lineage.variables()))
        compiled = build_obdd(lineage, order)
        if statistics is not None:
            statistics.query_obdd_nodes += compiled.size
        return compiled.probability(engine.probabilities)

    def _combined(self, engine, lineage, combined, statistics):
        order = engine.order.extend(sorted(lineage.variables()))
        compiled = build_obdd(combined, order, method="concat")
        if statistics is not None:
            statistics.query_obdd_nodes += compiled.size
        return compiled.probability(engine.probabilities)


class ShannonMethod(_TheoremOneMethod):
    """Exact DPLL-style Shannon expansion on the lineage."""

    name = "shannon"
    description = "exact Shannon expansion (DPLL-style) on the lineage"

    def _independent(self, engine, lineage, statistics):
        return shannon_probability(lineage, engine.probabilities)

    def _combined(self, engine, lineage, combined, statistics):
        return shannon_probability(combined, engine.probabilities)


class EnumerationMethod(_TheoremOneMethod):
    """Brute-force possible-world enumeration (tiny inputs only)."""

    name = "enumeration"
    description = "brute-force world enumeration (exponential; tiny inputs)"

    def _independent(self, engine, lineage, statistics):
        return brute_force_probability(lineage, engine.probabilities)

    def _combined(self, engine, lineage, combined, statistics):
        return brute_force_probability(combined, engine.probabilities)


class SamplingMethod(InferenceMethod):
    """Monte-Carlo estimation — the pluggable approximate fallback.

    Draws independent worlds over the variables appearing in the formulas
    and estimates ``P(Q)`` by the fraction of satisfying worlds (with the
    Theorem 1 correction when MarkoViews are present).  Sampling cannot
    draw from probabilities outside ``[0, 1]``, so the registry's
    capability check rejects it on engines whose translation produced
    negative weights (positive correlations).
    """

    name = "sampling"
    exact = False
    supports_negative_weights = False
    description = "Monte-Carlo estimate (approximate; rejects negative weights)"

    def __init__(self, samples: int = 4096, seed: int = 0) -> None:
        self.samples = samples
        self.seed = seed

    def probability(self, engine, lineage, statistics=None):
        if lineage.is_false:
            return 0.0
        rng = random.Random(self.seed)
        probabilities = engine.probabilities
        w_lineage = engine.w_lineage
        variables = sorted(lineage.variables() | w_lineage.variables())
        q_hits = w_hits = 0
        for _ in range(self.samples):
            world = {
                variable: rng.random() < probabilities.get(variable, 0.0)
                for variable in variables
            }
            q_true = _satisfied(lineage, world)
            w_true = not w_lineage.is_false and _satisfied(w_lineage, world)
            if q_true or w_true:
                q_hits += 1
            if w_true:
                w_hits += 1
        p_q_or_w = q_hits / self.samples
        if w_lineage.is_false:
            return p_q_or_w
        p_w = w_hits / self.samples
        if p_w >= 1.0:
            raise InferenceError(
                "sampling estimated P0(W) = 1; the MarkoView constraints leave "
                "no sampled world — use an exact method"
            )
        return theorem1_probability(p_q_or_w, p_w)


def _satisfied(formula: DNF, world: Mapping[int, bool]) -> bool:
    """Whether a (monotone) DNF holds in a sampled world."""
    return any(all(world[variable] for variable in clause) for clause in formula.clauses)


# ---------------------------------------------------------------- the registry
_registry: dict[str, InferenceMethod] = {}


def register(
    name: str,
    method: InferenceMethod | type[InferenceMethod],
    *,
    replace: bool = False,
) -> InferenceMethod:
    """Register an inference method under ``name``.

    ``method`` may be an instance or an :class:`InferenceMethod` subclass
    (instantiated with no arguments).  Registering an already-taken name
    raises unless ``replace=True`` — silent shadowing of e.g. ``"mvindex"``
    would change every caller's results.  The registry name is
    authoritative: the instance's ``name`` attribute is set to ``name``
    (session caches and typed results are keyed by it, so a stale
    class-level name would mislabel results and collide cache entries) —
    consequently one instance belongs to exactly one registered name.
    Returns the registered instance.
    """
    if isinstance(method, type):
        if not issubclass(method, InferenceMethod):
            raise InferenceError(
                f"inference methods must subclass InferenceMethod, got {method!r}"
            )
        method = method()
    if not isinstance(method, InferenceMethod):
        raise InferenceError(
            f"inference methods must be InferenceMethod instances, got {method!r}"
        )
    if name in _registry and not replace:
        raise InferenceError(
            f"inference method {name!r} is already registered "
            f"({_registry[name]!r}); pass replace=True to override"
        )
    if any(existing is method for key, existing in _registry.items() if key != name):
        raise InferenceError(
            f"this {type(method).__name__} instance is already registered under "
            "another name; register a separate instance per name"
        )
    method.name = name
    _registry[name] = method
    return method


def unregister(name: str) -> InferenceMethod:
    """Remove a method from the registry (mainly for tests) and return it."""
    try:
        return _registry.pop(name)
    except KeyError:
        raise InferenceError(f"unknown evaluation method {name!r}; nothing to unregister") from None


def get(name: str | InferenceMethod) -> InferenceMethod:
    """Resolve a method name (instances pass through unchanged)."""
    if isinstance(name, InferenceMethod):
        return name
    method = _registry.get(name)
    if method is None:
        raise InferenceError(
            f"unknown evaluation method {name!r}; choose from {names()}"
        )
    return method


def names() -> tuple[str, ...]:
    """Registered method names, sorted."""
    return tuple(sorted(_registry))


def registered() -> dict[str, InferenceMethod]:
    """A snapshot of the registry (name → instance)."""
    return dict(_registry)


def describe() -> str:
    """A human-readable table of the registered methods."""
    lines = []
    for name in names():
        method = _registry[name]
        flags = []
        flags.append("exact" if method.exact else "approximate")
        if not method.supports_negative_weights:
            flags.append("no negative weights")
        lines.append(f"{name:<12} [{', '.join(flags)}] {method.description}")
    return "\n".join(lines)


# The built-in strategies of the paper's Sect. 5 comparison, plus the
# approximate sampling fallback.
register("mvindex", MvIndexMethod)
register("mvindex-mv", MvIndexPointerMethod)
register("obdd", ObddMethod)
register("shannon", ShannonMethod)
register("enumeration", EnumerationMethod)
register("sampling", SamplingMethod)
