"""End-to-end tests of the HTTP serving tier, over a real socket.

Covers the issue's serving contract: transport parity (the HTTP answers
must be byte-identical to the in-process facade's), the batch endpoint,
admission control (429 + Retry-After under a flooded queue), the health /
stats / metrics schemas, extend-while-serving consistency (the shared
generation-counter invalidation path), and structured 400s for malformed
requests.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

import repro
from repro.dblp.config import DblpConfig
from repro.dblp.workload import build_mvdb
from repro.errors import AdmissionError, InferenceError, ParseError, ServingError
from repro.query.parser import parse_query, to_datalog
from repro.results import QueryResult
from repro.serving.dispatch import Dispatcher
from repro.serving.loadgen import WorkloadMix, fetch_stats, run_closed
from repro.serving.server import ProbServer
from repro.serving.session import QuerySession

GROUPS = 4
SEED = 0

QUERIES = [
    "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
    "n1 like '%Advisor 0%'",
    "Q(aid1) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
    "n like '%Student 1-0%'",
    "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Advisor 1%'",
    # A union (two rules, same head) and a Boolean query.
    "Q(aid) :- Student(aid, year), Advisor(aid, a), Author(a, n), n like '%Advisor 0%' ; "
    "Q(aid) :- Student(aid, year), Advisor(aid, a), Author(a, n), n like '%Advisor 2%'",
    "Q :- Student(aid, year), Advisor(aid, aid1)",
]


def _dblp_extender(spec):
    views = tuple(spec.get("views", ["V1", "V2", "V3"]))
    return build_mvdb(
        DblpConfig(group_count=spec.get("groups", GROUPS), seed=spec.get("seed", SEED)),
        include_views=views,
    ).mvdb


@pytest.fixture(scope="module")
def db():
    workload = build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED))
    return repro.connect(workload.mvdb)


@pytest.fixture(scope="module")
def server(db):
    server = ProbServer(
        db.engine, port=0, workers=2, max_queue=32, extender=_dblp_extender
    ).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def remote(server):
    return repro.connect_remote(server.url)


def _answers_json(result: QueryResult) -> str:
    return json.dumps(result.to_json()["answers"], sort_keys=True)


def _raw_request(server, method, path, body=None, headers=None):
    """A raw HTTP exchange, for status/header/protocol assertions."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


class TestTransportParity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_single_query_byte_identical(self, db, remote, query):
        assert _answers_json(remote.query(query)) == _answers_json(db.query(query))

    def test_result_metadata_survives_the_wire(self, db, remote):
        result = remote.query(QUERIES[0])
        assert result.method == "mvindex"
        assert result.exact is True
        assert all(answer.lineage_size > 0 for answer in result)

    def test_parsed_queries_travel_via_to_datalog(self, db, remote):
        ucq = parse_query(QUERIES[3])
        assert parse_query(to_datalog(ucq)).disjuncts == ucq.disjuncts
        assert _answers_json(remote.query(ucq)) == _answers_json(db.query(ucq))

    def test_methods_parity(self, db, remote):
        for method in ("shannon", "obdd"):
            assert _answers_json(remote.query(QUERIES[0], method=method)) == _answers_json(
                db.query(QUERIES[0], method=method)
            )

    def test_batch_matches_in_process_and_order(self, db, remote):
        local = db.query_batch(QUERIES)
        wire = remote.query_batch(QUERIES)
        assert [_answers_json(r) for r in wire] == [_answers_json(r) for r in local]

    def test_batch_workers_parameter(self, db, remote):
        wire = remote.query_batch(QUERIES[:3], workers=2)
        local = db.query_batch(QUERIES[:3])
        assert [_answers_json(r) for r in wire] == [_answers_json(r) for r in local]

    def test_boolean_probability(self, db, remote):
        assert remote.boolean_probability(QUERIES[4]) == db.boolean_probability(QUERIES[4])
        with pytest.raises(InferenceError):
            remote.boolean_probability(QUERIES[0])


class TestProtocolSchemas:
    def test_healthz_schema(self, remote):
        health = remote.healthz()
        assert health["status"] == "ok"
        assert isinstance(health["generation"], int)
        assert health["uptime_s"] > 0
        assert health["workers"] == 2

    def test_stats_schema(self, remote):
        remote.query(QUERIES[0])
        stats = remote.stats()
        assert {
            "generation",
            "workers",
            "max_queue",
            "queue_depth",
            "in_flight",
            "throughput",
            "latency_ms",
            "admission",
            "errors",
            "cache",
            "uptime_s",
        } <= set(stats)
        assert stats["throughput"]["requests_total"] >= 1
        assert {"p50_ms", "p95_ms", "p99_ms", "count"} <= set(stats["latency_ms"])
        for tier in ("string", "result", "lineage"):
            assert {"hits", "misses", "hit_ratio", "entries"} <= set(stats["cache"][tier])

    def test_metrics_exposition(self, remote):
        text = remote.metrics_text()
        for name in (
            "repro_requests_total",
            "repro_rejected_total",
            "repro_qps",
            "repro_queue_depth",
            "repro_generation",
            'repro_request_latency_ms{quantile="0.95"}',
            'repro_cache_hits_total{tier="string"}',
        ):
            assert name in text

    def test_string_tier_serves_exact_repeats(self, server, remote):
        query = QUERIES[1]
        remote.query(query)
        before = server.dispatcher.cache_stats()["string"]["hits"]
        repeat = remote.query(query)
        assert repeat.cached is True
        assert server.dispatcher.cache_stats()["string"]["hits"] == before + 1

    def test_responses_carry_generation(self, server):
        status, __, payload = _raw_request(
            server,
            "POST",
            "/v1/query",
            body=json.dumps({"query": QUERIES[0]}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        document = json.loads(payload)
        assert document["generation"] == server.dispatcher.generation
        assert "result" in document


class TestProtocolErrors:
    def test_unknown_path_is_404(self, server):
        status, __, payload = _raw_request(server, "GET", "/nope")
        assert status == 404
        assert json.loads(payload)["error"]["type"] == "not_found"

    def test_wrong_verb_is_405(self, server):
        for method, path in (("GET", "/v1/query"), ("POST", "/healthz")):
            status, __, payload = _raw_request(server, method, path)
            assert status == 405
            assert json.loads(payload)["error"]["type"] == "method_not_allowed"

    @pytest.mark.parametrize(
        "body",
        [
            "this is not json",
            json.dumps([1, 2, 3]),
            json.dumps({}),
            json.dumps({"query": 7}),
            json.dumps({"query": "   "}),
            json.dumps({"query": QUERIES[0], "method": 5}),
        ],
    )
    def test_malformed_query_requests_are_structured_400s(self, server, body):
        status, __, payload = _raw_request(
            server, "POST", "/v1/query", body=body, headers={"Content-Type": "application/json"}
        )
        assert status == 400
        error = json.loads(payload)["error"]
        assert error["type"] == "bad_request"
        assert error["status"] == 400
        assert error["message"]

    @pytest.mark.parametrize(
        "body",
        [
            json.dumps({"queries": []}),
            json.dumps({"queries": "Q :- R(x)"}),
            json.dumps({"queries": [QUERIES[0], 9]}),
            json.dumps({"queries": [QUERIES[0]], "workers": "four"}),
        ],
    )
    def test_malformed_batch_requests_are_structured_400s(self, server, body):
        status, __, payload = _raw_request(
            server,
            "POST",
            "/v1/query_batch",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert json.loads(payload)["error"]["type"] == "bad_request"

    def test_parse_errors_map_to_typed_400(self, server, remote):
        status, __, payload = _raw_request(
            server,
            "POST",
            "/v1/query",
            body=json.dumps({"query": "Q(x) :- !!!"}),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert json.loads(payload)["error"]["type"] == "parse_error"
        with pytest.raises(ParseError):
            remote.query("Q(x) :- !!!")

    def test_unknown_method_maps_to_typed_400(self, remote):
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            remote.query(QUERIES[0], method="divination")

    def test_missing_body_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/query")
            connection.endheaders()
            response = connection.getresponse()
            payload = response.read()
        finally:
            connection.close()
        assert response.status == 400
        assert json.loads(payload)["error"]["type"] == "bad_request"

    def test_connect_remote_refuses_dead_server(self):
        with pytest.raises(ServingError):
            repro.connect_remote("http://127.0.0.1:1", timeout=2)

    def test_error_paths_do_not_desync_keepalive_connections(self, db):
        # Error responses that short-circuit before reading the body (501,
        # 404, 405, oversized 400) must still leave the HTTP/1.1 connection
        # usable: an undrained body would be parsed as the next request.
        server = ProbServer(db.engine, port=0, workers=1).start()  # no extender -> 501
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            probes = [
                ("/v1/extend", json.dumps({"views": ["V1"]}), 501),
                ("/v1/unknown", json.dumps({"pad": "x" * 256}), 404),
                ("/healthz", json.dumps({"pad": "y" * 64}), 405),
            ]
            for path, body, expected in probes:
                connection.request(
                    "POST", path, body=body, headers={"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                response.read()
                assert response.status == expected
                # The SAME connection must then serve a normal query.
                connection.request(
                    "POST",
                    "/v1/query",
                    body=json.dumps({"query": QUERIES[0]}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                assert response.status == 200, payload
                assert "result" in json.loads(payload)
        finally:
            connection.close()
            server.stop()

    def test_to_datalog_rejects_unserializable_constants(self):
        from repro.query.atoms import Atom
        from repro.query.cq import ConjunctiveQuery
        from repro.query.terms import Constant

        trailing = ConjunctiveQuery((), [Atom("R", [Constant("a\\")])])
        with pytest.raises(ParseError, match="backslash"):
            to_datalog(trailing)
        both_quotes = ConjunctiveQuery((), [Atom("R", [Constant("a'\"b")])])
        with pytest.raises(ParseError, match="quote"):
            to_datalog(both_quotes)
        # A mid-string backslash round-trips verbatim (no unescaping).
        fine = ConjunctiveQuery((), [Atom("R", [Constant("a\\b")])])
        rendered = to_datalog(fine)
        assert parse_query(rendered).disjuncts[0].atoms == fine.atoms


class TestAdmissionControl:
    def test_zero_capacity_rejects_with_retry_after(self, db):
        server = ProbServer(db.engine, port=0, workers=1, max_queue=0).start()
        try:
            status, headers, payload = _raw_request(
                server,
                "POST",
                "/v1/query",
                body=json.dumps({"query": QUERIES[0]}),
                headers={"Content-Type": "application/json"},
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            error = json.loads(payload)["error"]
            assert error["type"] == "admission_error"
            remote = repro.connect_remote(server.url)
            with pytest.raises(AdmissionError) as excinfo:
                remote.query(QUERIES[0])
            assert excinfo.value.retry_after >= 1
        finally:
            server.stop()

    def test_flooded_queue_429s_without_5xx(self, db):
        server = ProbServer(db.engine, port=0, workers=1, max_queue=2).start()
        statuses: list[int] = []
        lock = threading.Lock()
        flood = 6

        def one_request(index: int) -> None:
            # Distinct queries so neither coalescing nor the string tier
            # absorbs the flood before admission control sees it.
            query = (
                "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
                f"n1 like '%Advisor {index}%'"
            )
            status, __, ___ = _raw_request(
                server,
                "POST",
                "/v1/query",
                body=json.dumps({"query": query}),
                headers={"Content-Type": "application/json"},
            )
            with lock:
                statuses.append(status)

        try:
            with server.dispatcher._rwlock.write_locked():
                threads = [
                    threading.Thread(target=one_request, args=(index,)) for index in range(flood)
                ]
                for thread in threads:
                    thread.start()
                deadline = time.monotonic() + 10
                # Wait until the queue is saturated and the overflow rejected.
                while time.monotonic() < deadline:
                    if (
                        server.dispatcher.queue_depth >= 2
                        and server.dispatcher.metrics.rejected_total >= flood - 2
                    ):
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("queue never saturated")
            for thread in threads:
                thread.join(timeout=30)
            assert sorted(statuses).count(429) == flood - 2
            assert sorted(statuses).count(200) == 2
            stats = fetch_stats(server.url)
            assert stats["admission"]["rejected_total"] == flood - 2
            assert stats["errors"]["total"] == 0
        finally:
            server.stop()

    def test_coalescing_shares_one_future(self, db):
        dispatcher = Dispatcher(db.engine, workers=1, max_queue=8)
        try:
            query = QUERIES[2]
            with dispatcher._rwlock.write_locked():
                first = dispatcher.submit(query)
                second = dispatcher.submit(query)
                assert second is first
                assert dispatcher.metrics.coalesced_total == 1
            result, generation = first.result(timeout=30)
            assert generation == 0
            assert _answers_json(result) == _answers_json(db.query(query))
        finally:
            dispatcher.close()


class TestExtendWhileServing:
    def test_extend_is_consistent_and_bumps_generation(self):
        workload = build_mvdb(DblpConfig(group_count=3, seed=SEED), include_views=("V1", "V2"))
        db = repro.connect(workload.mvdb)
        server = ProbServer(
            db.engine, port=0, workers=2, max_queue=64, extender=_dblp_extender
        ).start()
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            connection = None
            from repro.serving.loadgen import _Connection

            connection = _Connection(server.url, timeout=30)
            try:
                while not stop.is_set():
                    status, __ = connection.post_query(QUERIES[0], "mvindex")
                    if status not in (200, 429):
                        failures.append(f"reader saw HTTP {status}")
            finally:
                connection.close()

        readers = [threading.Thread(target=reader) for __ in range(3)]
        try:
            remote = repro.connect_remote(server.url)
            generation_before = remote.healthz()["generation"]
            # An affiliation query is the kind whose probabilities V3 changes
            # (Student 0-0 has an affiliation at this scale).
            affiliation = (
                "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Student 0-0%'"
            )
            before = remote.query(affiliation)
            for thread in readers:
                thread.start()
            time.sleep(0.2)
            added = remote.extend({"groups": 3, "seed": SEED, "views": ["V1", "V2", "V3"]})
            time.sleep(0.2)
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not failures, failures
            assert added >= 1
            assert remote.healthz()["generation"] == generation_before + 1

            # Post-extend probabilities must be byte-identical to an
            # in-process ProbDB that performed the same extension — no cache
            # tier may serve the old view set's values.  (A from-scratch
            # build can differ in the last ulp: the incremental compile
            # appends components, changing the product's association order.)
            fresh = repro.connect(
                build_mvdb(DblpConfig(group_count=3, seed=SEED), include_views=("V1", "V2")).mvdb
            )
            fresh.extend(build_mvdb(DblpConfig(group_count=3, seed=SEED)).mvdb)
            after = remote.query(affiliation)
            assert _answers_json(after) == _answers_json(fresh.query(affiliation))
            assert _answers_json(after) != _answers_json(before)
            assert _answers_json(remote.query(QUERIES[0])) == _answers_json(
                fresh.query(QUERIES[0])
            )

            # The same extension again is a no-op but keeps invalidating.
            assert remote.extend({"groups": 3, "seed": SEED, "views": ["V1", "V2", "V3"]}) == 0
            assert remote.healthz()["generation"] == generation_before + 2
        finally:
            stop.set()
            server.stop()

    def test_stop_before_start_does_not_hang(self, db):
        server = ProbServer(db.engine, port=0, workers=1)
        server.stop()  # never started: must return, not block in shutdown()
        server.stop()  # and stay idempotent

    def test_extend_without_extender_is_501(self, db):
        server = ProbServer(db.engine, port=0, workers=1).start()
        try:
            status, __, payload = _raw_request(
                server,
                "POST",
                "/v1/extend",
                body=json.dumps({"views": ["V1"]}),
                headers={"Content-Type": "application/json"},
            )
            assert status == 501
            assert json.loads(payload)["error"]["type"] == "unsupported"
        finally:
            server.stop()


class TestSessionGenerationGuard:
    """The satellite fix: one invalidation path, checked per request."""

    def test_invalidate_bumps_generation(self, db):
        session = QuerySession(db.engine)
        generation = session.generation
        session.invalidate()
        assert session.generation == generation + 1
        assert session.cache_info()["generation"] == generation + 1

    def test_straggler_compute_cannot_repollute_caches(self, db, monkeypatch):
        session = QuerySession(db.engine)
        query = parse_query(QUERIES[0])
        original = session._typed_probabilities

        def racing(lineages, method, skip=None):
            computed = original(lineages, method, skip=skip)
            # An extend() lands between this request's computation and its
            # cache publication — exactly the stale-probability race.
            session.invalidate()
            return computed

        monkeypatch.setattr(session, "_typed_probabilities", racing)
        stale = session.execute(query)
        monkeypatch.undo()
        assert session.cache_info()["result_entries"] == 0
        assert session.cache_info()["lineage_entries"] == 0
        fresh = session.execute(query)
        assert fresh.cached is False  # recomputed, not served stale
        assert fresh.to_dict() == stale.to_dict()  # same engine -> same values

    def test_straggler_batch_cannot_repollute_caches(self, db, monkeypatch):
        session = QuerySession(db.engine)
        queries = [parse_query(text) for text in QUERIES[:3]]
        original = session._typed_probabilities

        def racing(lineages, method, skip=None):
            computed = original(lineages, method, skip=skip)
            session.invalidate()
            return computed

        monkeypatch.setattr(session, "_typed_probabilities", racing)
        session.execute_batch(queries)
        monkeypatch.undo()
        assert session.cache_info()["result_entries"] == 0
        assert session.cache_info()["lineage_entries"] == 0

    def test_dispatcher_string_tier_shares_the_invalidation_path(self, db):
        dispatcher = Dispatcher(db.engine, workers=1, max_queue=8)
        try:
            dispatcher.execute(QUERIES[0])
            assert dispatcher.cache_stats()["string"]["entries"] == 1
            workload = build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED))
            added, generation = dispatcher.extend(workload.mvdb)
            assert added == []  # same views: nothing new to compile
            assert generation == 1
            assert dispatcher.cache_stats()["string"]["entries"] == 0
            for session in dispatcher.sessions:
                assert session.generation == 1
        finally:
            dispatcher.close()


class TestLoadGenerator:
    def test_workload_mix_population_and_skew(self):
        mix = WorkloadMix(entities=4, zipf_exponent=1.0)
        queries, weights = mix.population()
        assert len(queries) == len(weights) == 4 * len(mix.mix)
        # Within one template, popularity must decay with entity rank.
        assert weights[0] > weights[1] > weights[2] > weights[3]
        assert all("like" in query for query in queries)

    def test_unknown_template_rejected(self):
        with pytest.raises(ServingError, match="unknown workload template"):
            WorkloadMix(mix=(("nope", 1.0),)).population()

    def test_closed_loop_round_trip(self, server):
        report = run_closed(
            server.url, duration_s=0.5, concurrency=2, mix=WorkloadMix(entities=2), seed=1
        )
        assert report.error_free
        assert report.ok > 0
        assert report.qps > 0
        assert report.latency_ms["p95_ms"] >= report.latency_ms["p50_ms"]
        parsed = json.loads(json.dumps(report.to_json()))
        assert parsed["requests"] == report.requests

    def test_transport_errors_are_counted_not_raised(self):
        report = run_closed(
            "http://127.0.0.1:1", duration_s=0.2, concurrency=1, mix=WorkloadMix(entities=1)
        )
        assert report.transport_errors == report.requests > 0
        assert not report.error_free

    def test_bad_urls_fail_fast_instead_of_hanging(self):
        # https:// (or any non-http scheme) must raise in the caller's
        # thread — in run_open a raising worker used to leak its semaphore
        # slot and deadlock the arrival loop.
        from repro.serving.loadgen import run_open

        with pytest.raises(ServingError, match="http://"):
            run_closed("https://example.com", duration_s=0.2, concurrency=1)
        with pytest.raises(ServingError, match="http://"):
            run_open("https://example.com", duration_s=0.2, rate=10)

    def test_open_loop_counts_dead_server_as_transport_errors(self):
        from repro.serving.loadgen import run_open

        report = run_open(
            "http://127.0.0.1:1",
            duration_s=0.3,
            rate=20,
            mix=WorkloadMix(entities=1),
            max_outstanding=4,
        )
        assert report.transport_errors == report.requests > 0


class TestQueryResultJsonRoundTrip:
    def test_from_json_inverts_to_json(self, db):
        result = db.query(QUERIES[0])
        rebuilt = QueryResult.from_json(json.loads(json.dumps(result.to_json())))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.method == result.method
        assert rebuilt.steps == result.steps
        assert _answers_json(rebuilt) == _answers_json(result)

    def test_malformed_document_raises(self):
        with pytest.raises(InferenceError, match="malformed QueryResult"):
            QueryResult.from_json({"answers": [{"values": [1]}]})


class TestServeCli:
    def test_serve_and_loadtest_across_processes(self, tmp_path):
        import os
        import re
        import subprocess
        import sys
        from pathlib import Path

        from repro.cli import main

        repo_src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--groups",
                "3",
                "--views",
                "V1,V2",
                "--port",
                "0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline() + process.stdout.readline()
            match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
            assert match, f"no URL in serve output: {banner!r}"
            url = match.group(1)
            code = main(
                [
                    "loadtest",
                    "--url",
                    url,
                    "--duration",
                    "1",
                    "--concurrency",
                    "2",
                    "--entities",
                    "2",
                    "--json",
                ]
            )
            assert code == 0
            remote = repro.connect_remote(url)
            assert remote.healthz()["status"] == "ok"
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_loadtest_against_dead_server_fails(self, capsys):
        from repro.cli import main

        code = main(
            ["loadtest", "--url", "http://127.0.0.1:1", "--duration", "0.2",
             "--concurrency", "1"]
        )
        assert code == 1
        assert "errors" in capsys.readouterr().err
