"""Property-based differential tests for the data-skipping layer.

The skip layer's one contract is that it is invisible: restricting the
MV-index work to the summary-proven relevant set must return *bit-identical*
probabilities to the unrestricted evaluation, on both storage backends,
before and after extend/append deltas.  The suite checks that contract the
same way ``test_differential.py`` checks the sqlite backend — raw IEEE-754
bytes, not approx — plus the structural invariants behind it:

* **soundness**: the analysis' relevant set is a superset of every answer's
  touched component set (the premise of the Theorem-1 cancellation that
  makes skipping exact), and a batch analysis is a superset of each of its
  queries' single analyses;
* **maintenance**: the O(delta) summary updates applied on extend/append
  produce a store bit-equal (via ``export_state``) to a fresh scan of the
  mutated index;
* **persistence**: ``export_state``/``from_state`` round-trips losslessly
  and the restored store analyses identically;
* **serving surface**: the session threads ``skipped_components`` and
  ``skip_analysis_ms`` into :class:`repro.QueryResult`;
* **attribution**: the subscription evaluator credits each provable skip to
  the summary that was decisive (relation signature vs variable bitmap).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import MVDB, MarkoView, parse_query
from repro.core.engine import MVQueryEngine
from repro.db import SqliteBackend
from repro.mvindex.summaries import SummaryStore
from repro.query.ucq import as_ucq
from repro.serving.dispatch import Dispatcher
from repro.subscribe import SubscriptionService

#: Queries mixing variables-only bodies (relation-signature pruning) with
#: constant positions (sketch probes) and a union.  All are answerable over
#: the random instances below.
QUERY_POOL = (
    "Q :- R(x), S(x, y)",
    "Q(x) :- R(x)",
    "Q :- R('a0')",
    "Q :- S(x, 0)",
    "Q(y) :- S('a0', y)",
    "Q :- R('a1') ; Q :- S(x, 1)",
)


@st.composite
def skip_cases(draw):
    """Pure-data spec of one random MVDB + queries + an append batch.

    Returning data (not objects) lets each test materialise the *same*
    instance on both backends with identical insertion order, hence
    identical variable ids — the precondition for bit-level comparison.
    """
    weights = st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
    r_size = draw(st.integers(min_value=1, max_value=3))
    s_size = draw(st.integers(min_value=1, max_value=4))
    r_rows = [((f"a{i}",), draw(weights)) for i in range(r_size)]
    s_rows = []
    for j in range(s_size):
        owner = draw(st.integers(min_value=0, max_value=r_size - 1))
        s_rows.append(((f"a{owner}", j), draw(weights)))
    view_weights = [draw(st.sampled_from([0.0, 0.2, 0.5, 2.0, 5.0]))]
    if draw(st.booleans()):
        view_weights.append(draw(st.sampled_from([0.3, 4.0])))
    queries = draw(
        st.lists(st.sampled_from(QUERY_POOL), min_size=1, max_size=3, unique=True)
    )
    append = {
        "R": [((f"b{i}",), draw(weights)) for i in range(draw(st.integers(0, 2)))],
        "S": [(("a0", 90 + j), draw(weights)) for j in range(draw(st.integers(0, 2)))],
    }
    append = {name: rows for name, rows in append.items() if rows}
    return r_rows, s_rows, view_weights, queries, append


def build_mvdb(case) -> MVDB:
    r_rows, s_rows, view_weights, __, __ = case
    mvdb = MVDB()
    mvdb.add_probabilistic_table("R", ["x"], r_rows)
    mvdb.add_probabilistic_table("S", ["x", "y"], s_rows)
    mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), view_weights[0]))
    if len(view_weights) > 1:
        mvdb.add_markoview(MarkoView("V2", parse_query("V2(x, y) :- S(x, y)"), view_weights[1]))
    return mvdb


def bits(answers: dict) -> dict:
    """Probabilities as raw IEEE-754 bytes: equality here is bit-identity."""
    return {answer: struct.pack("<d", value) for answer, value in answers.items()}


def touched_components(engine: MVQueryEngine, query) -> "set[int]":
    """Union of every answer's touched component set, from the lineages."""
    from repro.query.evaluator import evaluate_ucq

    ucq = as_ucq(parse_query(query) if isinstance(query, str) else query)
    result = evaluate_ucq(ucq, engine.indb.database, engine.indb)
    touched: set[int] = set()
    for lineage in result.lineages().values():
        variables = lineage.variables()
        for key, component in engine.mv_index.components.items():
            if variables & set(component.variables):
                touched.add(key)
    return touched


def assert_skip_invariants(engine: MVQueryEngine, queries) -> None:
    """The per-engine contract: soundness + bit-identical answers."""
    for text in queries:
        query = parse_query(text)
        with_skip = engine.query(query)
        without_skip = engine.query(query, use_skip=False)
        assert bits(with_skip) == bits(without_skip), text
        if engine.summaries is None:
            continue
        analysis = engine.skip_analysis(as_ucq(query))
        assert touched_components(engine, query) <= analysis.relevant_keys, text
        assert analysis.relevant_count + analysis.skipped_count == len(engine.summaries)


class TestSkipDifferentialProperty:
    @given(skip_cases())
    @settings(max_examples=30, deadline=None)
    def test_skip_is_invisible_on_both_backends(self, case):
        __, __, __, queries, __ = case
        memory = MVQueryEngine(build_mvdb(case))
        sqlite = MVQueryEngine(build_mvdb(case), backend=SqliteBackend())
        try:
            assert_skip_invariants(memory, queries)
            assert_skip_invariants(sqlite, queries)
            for text in queries:
                query = parse_query(text)
                assert bits(memory.query(query)) == bits(sqlite.query(query)), text
        finally:
            sqlite.indb.database.close()

    @given(skip_cases())
    @settings(max_examples=30, deadline=None)
    def test_append_maintains_summaries_and_identity(self, case):
        __, __, __, queries, append = case
        if not append:
            return
        memory = MVQueryEngine(build_mvdb(case))
        sqlite = MVQueryEngine(build_mvdb(case), backend=SqliteBackend())
        try:
            for engine in (memory, sqlite):
                engine.append_facts(append)
                if engine.summaries is not None:
                    fresh = SummaryStore.from_index(engine.mv_index, engine.indb.tuple_of)
                    assert engine.summaries.export_state() == fresh.export_state()
                assert_skip_invariants(engine, queries)
            for text in queries:
                query = parse_query(text)
                assert bits(memory.query(query)) == bits(sqlite.query(query)), text
        finally:
            sqlite.indb.database.close()

    @given(skip_cases())
    @settings(max_examples=20, deadline=None)
    def test_batch_analysis_is_superset_of_singles(self, case):
        __, __, __, queries, __ = case
        engine = MVQueryEngine(build_mvdb(case))
        if engine.summaries is None:
            return
        ucqs = [as_ucq(parse_query(text)) for text in queries]
        batch = engine.skip_analysis(ucqs)
        for ucq in ucqs:
            single = engine.skip_analysis(ucq)
            assert single.relevant_keys <= batch.relevant_keys


def _small_engine() -> MVQueryEngine:
    mvdb = MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 0.5)])
    mvdb.add_probabilistic_table(
        "S", ["x", "y"], [(("a", 1), 2.0), (("b", 1), 0.8)]
    )
    mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), 2.0))
    return MVQueryEngine(mvdb)


class TestSummaryStoreContract:
    def test_constant_probe_prunes_disjoint_component(self):
        # R(a)/S(a,1) and R(b)/S(b,1) compile into disjoint components; the
        # 'a'-constant query must prove the 'b' component irrelevant.
        engine = _small_engine()
        analysis = engine.skip_analysis(as_ucq(parse_query("Q :- R('a'), S('a', y)")))
        assert analysis.skipped_count >= 1
        assert_skip_invariants(engine, ["Q :- R('a'), S('a', y)"])

    def test_export_import_round_trip_is_lossless(self):
        engine = _small_engine()
        state = engine.summaries.export_state()
        restored = SummaryStore.from_state(state)
        assert restored.export_state() == state
        query = as_ucq(parse_query("Q :- R('a'), S('a', y)"))
        assert restored.analyze(query).relevant_keys == (
            engine.summaries.analyze(query).relevant_keys
        )

    def test_extend_maintains_summaries_and_identity(self):
        engine = _small_engine()
        spec = MVDB()
        spec.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 0.5)])
        spec.add_probabilistic_table(
            "S", ["x", "y"], [(("a", 1), 2.0), (("b", 1), 0.8)]
        )
        spec.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), 2.0))
        spec.add_markoview(MarkoView("V2", parse_query("V2(x, y) :- S(x, y)"), 0.5))
        engine.extend_views(spec)
        fresh = SummaryStore.from_index(engine.mv_index, engine.indb.tuple_of)
        assert engine.summaries.export_state() == fresh.export_state()
        assert_skip_invariants(
            engine, ["Q :- R(x), S(x, y)", "Q :- R('a'), S('a', y)", "Q(x) :- R(x)"]
        )

    def test_disable_skipping_drops_the_layer(self):
        engine = _small_engine()
        query = parse_query("Q :- R('a'), S('a', y)")
        expected = bits(engine.query(query))
        engine.disable_skipping()
        assert engine.skip_analysis(as_ucq(query)) is None
        assert bits(engine.query(query)) == expected


class TestServingSurface:
    def test_query_result_reports_skipped_components(self):
        db = repro.connect(_small_engine().mvdb)
        result = db.query("Q :- R('a'), S('a', y)")
        assert result.skipped_components >= 1
        assert result.skip_analysis_ms >= 0.0
        # Cache hits replay the recorded skip accounting unchanged.
        again = db.query("Q :- R('a'), S('a', y)")
        assert again.skipped_components == result.skipped_components

    def test_result_json_round_trips_skip_fields(self):
        from repro.results import QueryResult

        db = repro.connect(_small_engine().mvdb)
        result = db.query("Q :- R('a'), S('a', y)")
        restored = QueryResult.from_json(result.to_json())
        assert restored.skipped_components == result.skipped_components
        assert restored.skip_analysis_ms == result.skip_analysis_ms


class TestSubscriptionAttribution:
    def _service(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 0.5)])
        mvdb.add_probabilistic_table(
            "S", ["x", "y"], [(("a", 1), 2.0), (("b", 1), 0.8)]
        )
        mvdb.add_probabilistic_table("T", ["x"], [(("t0",), 1.5)])
        mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), 2.0))
        dispatcher = Dispatcher(MVQueryEngine(mvdb), workers=2)
        return dispatcher, SubscriptionService(dispatcher)

    def test_skips_attributed_to_decisive_summary(self):
        dispatcher, service = self._service()
        try:
            # T is in no view: deltas over R/S are provably disjoint from it.
            service.subscribe({"query": "Q(x) :- T(x)"}, persist=False)

            # A new S derivation recompiles V1 components -> the delta
            # carries a non-empty component bitmap: bitmap-attributed skip.
            dispatcher.append_facts({"S": [[["a", 99], 1.0]]})
            stats = service.stats()
            assert stats["skips_bitmap_total"] == 1
            assert stats["skips_signature_total"] == 0

            # A T append touches no component at all (bitmap 0); a second
            # subscription over R/S is cleared by the signature alone.
            service.subscribe({"query": "Q :- R(x), S(x, y)"}, persist=False)
            dispatcher.append_facts({"T": [[["t1"], 1.5]]})
            stats = service.stats()
            assert stats["skips_signature_total"] == 1
            assert stats["skips_bitmap_total"] == 1

            (t_sub, rs_sub) = service.registry.ordered()
            assert t_sub.skips_bitmap == 1 and t_sub.skips_signature == 0
            # The T subscription overlaps its own delta, so it re-evaluated.
            assert t_sub.evaluations >= 2
            assert rs_sub.skips_signature == 1 and rs_sub.skips_bitmap == 0
            assert {"skips_signature", "skips_bitmap"} <= set(t_sub.describe())
        finally:
            service.close()
            dispatcher.close()

    @pytest.mark.parametrize("kind", ["signature", "bitmap"])
    def test_skipped_answers_match_fresh_queries(self, kind):
        dispatcher, service = self._service()
        try:
            doc = service.subscribe({"query": "Q(x) :- T(x)"}, persist=False)
            facts = (
                {"R": [[["c"], 0.7]]} if kind == "signature" else {"S": [[["a", 99], 1.0]]}
            )
            before = dispatcher.generation
            dispatcher.append_facts(facts)
            subscription = service.registry.ordered()[0]
            assert subscription.sub_id == doc["id"]
            assert subscription.last_generation == before  # provably skipped
            fresh = dispatcher.sessions[0].execute(as_ucq(parse_query("Q(x) :- T(x)")))
            expected = {answer.values: answer.probability for answer in fresh.answers}
            assert bits(subscription.answers) == bits(expected)
        finally:
            service.close()
            dispatcher.close()
