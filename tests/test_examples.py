"""Every example must run end-to-end on the facade, without deprecation leaks.

Each ``examples/*.py`` script executes in a fresh subprocess with
``-W error::DeprecationWarning``: the examples are written against the
unified client API, so any ``DeprecationWarning`` escaping from the
facade's own code paths (or from an example regressing to the old
surface) fails the suite.  CI runs the same scripts via ``make examples``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

#: Extra argv per example, to keep the suite fast (dblp_advisors defaults to
#: 12 research groups; 4 is plenty to exercise the whole pipeline).
ARGS = {"dblp_advisors.py": ["4"]}


def test_every_example_is_covered():
    assert [path.name for path in EXAMPLES] == [
        "custom_correlations.py",
        "dblp_advisors.py",
        "negative_probabilities.py",
        "quickstart.py",
    ]


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_without_deprecation_warnings(example: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", str(example)]
        + ARGS.get(example.name, []),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{example.name} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example.name} printed nothing"
