"""Streaming ingest and the non-blocking write path.

Covers the issue's write-path contract at the engine and dispatcher layers:

* differential append — streaming facts into a live engine must give
  *bit-identical* answers to a from-scratch build over the grown base, on
  both storage backends (the memory/sqlite pair must also agree with each
  other bit-for-bit);
* sealed artifacts — a leader-prepared :class:`PendingExtend`, serialized
  through JSON and applied on a follower, leaves both engines with
  byte-identical state; a stale artifact (epoch moved on) is rejected;
* the concurrency contract — with the compile half of an extend padded to
  a known duration, reader threads hammering :meth:`Dispatcher.execute`
  must keep completing *during* the compile with latencies far below the
  pad (the old design excluded readers for the whole compile), every
  thread must observe a monotonically non-decreasing generation, and the
  post-swap answers must reflect the new view set — no stale cache hits.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro
from repro.core.pending import PendingExtend
from repro.dblp.config import DblpConfig
from repro.dblp.workload import build_mvdb
from repro.errors import ServingError
from repro.serving.artifact import engine_state
from repro.serving.dispatch import Dispatcher
from repro.serving.loadgen import dblp_ingest_facts

GROUPS = 3
SEED = 0

AFFILIATION = (
    "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Student 0-0%'"
)
STUDENTS = (
    "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
    "n1 like '%Advisor 0%'"
)

#: Disjoint ingest rows: ids far above the generated DBLP id space, joining
#: none of the workload queries' entities — appends change lineages without
#: changing any answer set, which is exactly the streaming-ingest shape.
FACTS = {
    "Author": [[990001, "Ingest Author 990001"], [990002, "Ingest Author 990002"]],
    "Student": [[[990001, 2020], 1.5], [[990002, 2021], 0.5]],
}


def _config() -> DblpConfig:
    return DblpConfig(group_count=GROUPS, seed=SEED)


def _state(engine) -> str:
    return json.dumps(engine_state(engine), sort_keys=True)


def _answers(db, query) -> dict:
    return {row.values: row.probability for row in db.query(query)}


def _grown_rebuild(backend=None):
    """A from-scratch build whose base already contains ``FACTS``."""
    mvdb = build_mvdb(_config(), backend=backend).mvdb
    for row in FACTS["Author"]:
        mvdb.database.insert("Author", row)
    for row, weight in FACTS["Student"]:
        mvdb.add_probabilistic_tuple("Student", row, weight)
    return repro.connect(mvdb)


# ------------------------------------------------------------- differential
class TestAppendDifferential:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_append_matches_rebuild_bit_identically(self, backend):
        appended = repro.connect(build_mvdb(_config(), backend=backend).mvdb)
        # Warm the caches first: the append must invalidate them, so any
        # stale entry leaking through shows up as a mismatch below.
        appended.query(AFFILIATION)
        assert appended.append_facts(FACTS) == 4

        rebuilt = _grown_rebuild(backend=backend)
        for query in (AFFILIATION, STUDENTS):
            assert _answers(appended, query) == _answers(rebuilt, query), (
                f"append differs from rebuild on {backend} for {query!r}"
            )

    def test_memory_and_sqlite_appends_agree_bit_identically(self):
        results = {}
        for backend in ("memory", "sqlite"):
            db = repro.connect(build_mvdb(_config(), backend=backend).mvdb)
            db.append_facts(FACTS)
            results[backend] = {
                query: _answers(db, query) for query in (AFFILIATION, STUDENTS)
            }
        assert results["memory"] == results["sqlite"]

    def test_loadgen_ingest_facts_are_appendable(self):
        # The ingest loadgen's fact batches must be valid engine input and
        # disjoint across batch indices (no duplicate-row no-ops).
        db = repro.connect(build_mvdb(_config()).mvdb)
        first = dblp_ingest_facts(0, batch_size=3)
        second = dblp_ingest_facts(1, batch_size=3)
        assert db.append_facts(first) == 6
        assert db.append_facts(second) == 6


# ---------------------------------------------------------- sealed artifacts
class TestSealedArtifacts:
    def test_sealed_append_round_trip_is_byte_identical(self):
        leader = repro.connect(build_mvdb(_config()).mvdb).engine
        pending = leader.prepare_append(FACTS)
        sealed = json.loads(json.dumps(pending.sealed()))
        leader.apply_pending(pending)

        follower = repro.connect(build_mvdb(_config()).mvdb).engine
        follower.apply_pending(PendingExtend.from_sealed(sealed))
        assert _state(leader) == _state(follower)

    def test_sealed_extend_round_trip_is_byte_identical(self):
        leader = repro.connect(
            build_mvdb(_config(), include_views=("V1", "V2")).mvdb
        ).engine
        pending = leader.prepare_extend(build_mvdb(_config()).mvdb)
        sealed = json.loads(json.dumps(pending.sealed()))
        leader.apply_pending(pending)

        follower = repro.connect(
            build_mvdb(_config(), include_views=("V1", "V2")).mvdb
        ).engine
        follower.apply_pending(
            PendingExtend.from_sealed(sealed, mvdb=build_mvdb(_config()).mvdb)
        )
        assert _state(leader) == _state(follower)

    def test_stale_sealed_artifact_is_rejected(self):
        engine = repro.connect(build_mvdb(_config()).mvdb).engine
        pending = engine.prepare_append(FACTS)
        sealed = json.loads(json.dumps(pending.sealed()))
        engine.apply_pending(pending)  # the epoch moves on
        with pytest.raises(ServingError, match="stale"):
            engine.apply_pending(PendingExtend.from_sealed(sealed))

    def test_malformed_artifact_is_rejected(self):
        with pytest.raises(ServingError):
            PendingExtend.from_sealed({"kind": "mystery"})


# ------------------------------------------------------ concurrency contract
#: The compile pad.  Under the old design readers were excluded for the
#: whole compile, so read latency during an extend was >= the pad; the
#: epoch-swap design must keep reads an order of magnitude below it.
PAD_S = 0.8
READ_LATENCY_BOUND_S = PAD_S / 2


class TestNonBlockingWritePath:
    def test_reads_proceed_during_a_padded_compile(self, monkeypatch):
        engine = repro.connect(
            build_mvdb(_config(), include_views=("V1", "V2")).mvdb
        ).engine
        dispatcher = Dispatcher(engine, workers=4)
        try:
            dispatcher.execute(STUDENTS)  # warm: lineage + caches

            real_prepare = type(engine).prepare_extend

            def padded_prepare(self, mvdb):
                pending = real_prepare(self, mvdb)
                time.sleep(PAD_S)
                return pending

            monkeypatch.setattr(type(engine), "prepare_extend", padded_prepare)

            stop = threading.Event()
            samples: list[list[tuple[float, float, int]]] = [[] for _ in range(3)]
            errors: list[BaseException] = []

            def hammer(slot: int) -> None:
                while not stop.is_set():
                    begin = time.monotonic()
                    try:
                        __, generation = dispatcher.execute(STUDENTS, timeout=30)
                    except BaseException as exc:  # noqa: BLE001 - recorded for the assert
                        errors.append(exc)
                        return
                    samples[slot].append((begin, time.monotonic(), generation))

            threads = [
                threading.Thread(target=hammer, args=(slot,)) for slot in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.1)  # steady-state reads before the write begins

            write_begin = time.monotonic()
            added, generation = dispatcher.extend(build_mvdb(_config()).mvdb)
            write_end = time.monotonic()

            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, f"reader thread failed: {errors[0]!r}"
            assert added and generation == 1
            assert write_end - write_begin >= PAD_S  # the pad was really in play

            flat = [item for per_thread in samples for item in per_thread]
            during = [
                end - begin
                for begin, end, __ in flat
                if begin >= write_begin and end <= write_end
            ]
            # Reads must keep *completing* inside the compile window...
            assert len(during) >= 5, (
                f"only {len(during)} reads completed during the {PAD_S}s compile"
            )
            # ...and none of them may have waited out the compile.
            assert max(during) < READ_LATENCY_BOUND_S, (
                f"a read stalled {max(during):.3f}s during the compile "
                f"(bound {READ_LATENCY_BOUND_S}s)"
            )
            # Every thread observes a monotonically non-decreasing epoch.
            for per_thread in samples:
                generations = [generation for __, __, generation in per_thread]
                assert generations == sorted(generations)
            observed = {generation for __, __, generation in flat}
            assert observed <= {0, 1}
        finally:
            dispatcher.close()
        monkeypatch.undo()

        # No stale cache answers after the swap: the dispatcher must now
        # agree bit-for-bit with a reference that extended the same way.
        reference = repro.connect(
            build_mvdb(_config(), include_views=("V1", "V2")).mvdb
        )
        reference.extend(build_mvdb(_config()).mvdb)
        post = Dispatcher(engine, workers=1)
        try:
            result, __ = post.execute(AFFILIATION)
            swapped = {row.values: row.probability for row in result}
            assert swapped == _answers(reference, AFFILIATION)
        finally:
            post.close()

    def test_append_through_the_dispatcher_bumps_the_generation(self):
        engine = repro.connect(build_mvdb(_config()).mvdb).engine
        dispatcher = Dispatcher(engine, workers=2)
        try:
            __, before = dispatcher.execute(STUDENTS)
            count, generation, sealed = dispatcher.append_facts(FACTS)
            assert count == 4
            assert generation == before + 1
            assert sealed["kind"] == "append"
            result, after = dispatcher.execute(STUDENTS)
            assert after == generation
            assert {row.values: row.probability for row in result} == _answers(
                _grown_rebuild(), STUDENTS
            )
        finally:
            dispatcher.close()
