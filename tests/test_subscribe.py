"""Standing-query subscription service: parity, predicates, exactly-once.

The heart of the file is the tick-parity loop of the issue's acceptance
bar: after **every** ingest tick, every subscription's stored answers —
fired *and* skipped alike — must be bit-identical to a fresh
``ProbDB.query`` over an independent reference database that replayed the
same appends, on the memory and sqlite backends.  A skipped subscription
whose answers drifted would falsify the delta-overlap skip rule; a fired
one would falsify the evaluator itself.

Around that: predicate semantics (change vs threshold), the notification
log's cursor/long-poll contract, registry persistence and restart
re-arming, log-replay determinism (the fleet's exactly-once foundation:
replaying the same op log regenerates a byte-identical notification
stream), the HTTP surface, and the loadgen's op tagging (subscription ops
must never leak into the query-only latency headline).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro
from repro.dblp.config import DblpConfig
from repro.dblp.workload import build_mvdb
from repro.errors import ParseError, ServingError
from repro.serving.dispatch import Dispatcher
from repro.serving.fleet import replay_entry
from repro.serving.loadgen import _summarize, subscription_batch_facts
from repro.serving.server import ProbServer
from repro.subscribe import (
    NotificationLog,
    SubscriptionRegistry,
    SubscriptionService,
    canonical_predicate,
    canonical_sink,
)

GROUPS = 4
SEED = 0
ENTITIES = 2

#: One standing query per workload template, plus a union.
STANDING_QUERIES = [
    "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
    "n1 like '%Advisor 0%'",
    "Q(aid1) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
    "n like '%Student 1-0%'",
    "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Advisor 0%'",
    "Q(aid) :- Student(aid, year), Advisor(aid, a), Author(a, n), n like '%Advisor 0%' ; "
    "Q(aid) :- Student(aid, year), Advisor(aid, a), Author(a, n), n like '%Advisor 1%'",
]

THRESHOLD = {"kind": "threshold", "op": ">=", "value": 0.5}


def _fresh_engine(backend=None):
    workload = build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED), backend=backend)
    return repro.connect(workload.mvdb).engine


def _service(backend=None, path=None):
    dispatcher = Dispatcher(_fresh_engine(backend), workers=2)
    return dispatcher, SubscriptionService(dispatcher, path=path)


def _answers(result):
    return {answer.values: answer.probability for answer in result.answers}


# --------------------------------------------------------------- tick parity
@pytest.mark.parametrize("backend", [None, "sqlite"])
def test_every_tick_fired_and_skipped_answers_match_fresh_queries(backend):
    """The acceptance bar: per-tick bit-identical parity on both backends."""
    dispatcher, service = _service(backend=backend)
    reference = repro.connect(
        build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED), backend=backend).mvdb
    )
    try:
        for index, query in enumerate(STANDING_QUERIES):
            spec = {"query": query}
            if index % 2:
                spec["predicate"] = THRESHOLD
            service.subscribe(spec, persist=False)

        saw_skip = False
        for batch_index in range(6):  # two full fire/skip/quiet rotations
            facts = subscription_batch_facts(batch_index, batch_size=3, entities=ENTITIES)
            dispatcher.append_facts(facts)
            reference.append_facts(facts)
            generation = dispatcher.generation
            for subscription in service.registry.ordered():
                expected = _answers(reference.query(subscription.query))
                assert subscription.answers == expected, (
                    f"tick {batch_index}: subscription {subscription.sub_id} "
                    f"({'skipped' if subscription.last_generation != generation else 'fired'}) "
                    "drifted from a fresh query"
                )
                if subscription.last_generation != generation:
                    saw_skip = True
        assert saw_skip, "the rotation never skipped a subscription"
        assert service.stats()["skips_total"] > 0
    finally:
        service.close()
        dispatcher.close()


def test_affiliation_only_delta_skips_disjoint_subscriptions():
    """The skip rule's driver case: fresh-id Affiliation rows leave every
    Student/Advisor-template subscription provably untouched."""
    dispatcher, service = _service()
    try:
        advisor_doc = service.subscribe({"query": STANDING_QUERIES[0]}, persist=False)
        affiliation_doc = service.subscribe({"query": STANDING_QUERIES[2]}, persist=False)
        before = dispatcher.generation
        dispatcher.append_facts(
            {"Affiliation": [[[990001, "Fresh Inst"], 1.5]]}
        )
        by_id = {s.sub_id: s for s in service.registry.ordered()}
        assert by_id[advisor_doc["id"]].last_generation == before  # skipped
        assert by_id[affiliation_doc["id"]].last_generation == dispatcher.generation
        stats = service.stats()
        assert stats["skips_total"] == 1
        assert stats["evaluations_total"] == 1
    finally:
        service.close()
        dispatcher.close()


# ---------------------------------------------------------------- predicates
def test_change_predicate_fires_only_when_answers_move():
    dispatcher, service = _service()
    try:
        service.subscribe({"query": STANDING_QUERIES[2]}, persist=False)
        # Quiet batch: overlaps via Author but changes no answer -> no fire.
        dispatcher.append_facts(subscription_batch_facts(2, batch_size=3, entities=ENTITIES))
        assert service.notifications()["head"] == 0
        # Hot batch: a fresh author named 'Advisor 0' with an affiliation.
        dispatcher.append_facts(subscription_batch_facts(0, batch_size=3, entities=ENTITIES))
        batch = service.notifications()
        assert batch["head"] == 1
        payload = batch["notifications"][0]
        assert payload["kind"] == "change"
        assert payload["seq"] == 1
        assert payload["generation"] == dispatcher.generation
        previous = {tuple(values): p for values, p in payload["previous"]}
        current = {tuple(values): p for values, p in payload["answers"]}
        assert previous != current
        assert not any("time" in key or "stamp" in key for key in payload)
    finally:
        service.close()
        dispatcher.close()


def test_threshold_predicate_fires_on_set_membership_changes():
    dispatcher, service = _service()
    try:
        service.subscribe(
            {"query": STANDING_QUERIES[2], "predicate": THRESHOLD}, persist=False
        )
        # Weight 3.0 -> probability above 0.5: the new answer ENTERS the set.
        dispatcher.append_facts(subscription_batch_facts(0, batch_size=1, entities=ENTITIES))
        first = service.notifications()
        assert first["head"] == 1
        payload = first["notifications"][0]
        assert payload["kind"] == "threshold"
        assert payload["entered"] and not payload["left"]
        # A second hot batch for the same entity (6 % 2 == 0) adds MORE
        # matching answers (entered changes again); a quiet batch afterwards
        # must not fire.
        dispatcher.append_facts(subscription_batch_facts(6, batch_size=1, entities=ENTITIES))
        dispatcher.append_facts(subscription_batch_facts(2, batch_size=1, entities=ENTITIES))
        assert service.notifications()["head"] == 2
    finally:
        service.close()
        dispatcher.close()


def test_predicate_and_sink_validation():
    assert canonical_predicate(None) == {"kind": "change"}
    assert canonical_predicate(THRESHOLD)["value"] == 0.5
    with pytest.raises(ServingError):
        canonical_predicate({"kind": "threshold", "op": "!=", "value": 0.5})
    with pytest.raises(ServingError):
        canonical_predicate({"kind": "threshold", "op": ">", "value": "high"})
    with pytest.raises(ServingError):
        canonical_predicate({"kind": "sometimes"})
    assert canonical_sink(None) == {"kind": "memory"}
    webhook = canonical_sink({"kind": "webhook", "url": "http://127.0.0.1:1/x"})
    assert webhook["retries"] == 3
    with pytest.raises(ServingError):
        canonical_sink({"kind": "webhook"})  # no url
    with pytest.raises(ServingError):
        canonical_sink({"kind": "carrier-pigeon"})


def test_subscribe_rejects_bad_queries_and_unknown_unsubscribe():
    dispatcher, service = _service()
    try:
        with pytest.raises(ParseError):
            service.subscribe({"query": "this is not datalog"}, persist=False)
        assert service.list()["active"] == 0  # registration rolled back
        with pytest.raises(ServingError):
            service.unsubscribe("sub-404", persist=False)
    finally:
        service.close()
        dispatcher.close()


# ---------------------------------------------------------- notification log
def test_notification_log_cursor_and_ring():
    log = NotificationLog(capacity=3)
    for index in range(5):
        log.append({"payload": index})
    batch = log.read(since=0)
    assert batch["head"] == 5
    assert batch["oldest"] == 3
    assert batch["dropped"] == 2
    assert [entry["seq"] for entry in batch["notifications"]] == [3, 4, 5]
    assert batch["next"] == 5
    assert log.read(since=5)["notifications"] == []


def test_notification_log_long_poll_wakes_on_append():
    log = NotificationLog()
    result = {}

    def poll():
        result["batch"] = log.read(since=0, wait_s=5.0)

    thread = threading.Thread(target=poll)
    thread.start()
    time.sleep(0.05)
    log.append({"payload": "news"})
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert [entry["seq"] for entry in result["batch"]["notifications"]] == [1]


# ------------------------------------------------------ persistence / replay
def test_registry_persists_and_restart_rearms(tmp_path):
    path = str(tmp_path / "index.subs.json")
    dispatcher, service = _service(path=path)
    try:
        students = service.subscribe({"query": STANDING_QUERIES[0]})
        service.subscribe({"query": STANDING_QUERIES[2], "predicate": THRESHOLD})
        dropped = service.subscribe({"query": STANDING_QUERIES[1]})
        service.unsubscribe(dropped["id"])
    finally:
        service.close()
        dispatcher.close()

    dispatcher2, service2 = _service(path=path)
    try:
        listing = service2.list()
        assert listing["active"] == 2  # the unsubscribe persisted too
        by_id = {doc["id"]: doc for doc in listing["subscriptions"]}
        assert dropped["id"] not in by_id
        survivor = by_id[students["id"]]
        assert survivor["predicate"] == {"kind": "change"}
        assert survivor["answers"]  # baseline re-evaluated on re-arm
        # Ticks keep working against the re-armed registry.
        dispatcher2.append_facts(subscription_batch_facts(0, batch_size=1, entities=ENTITIES))
        assert service2.notifications()["head"] == 1
    finally:
        service2.close()
        dispatcher2.close()

    registry = SubscriptionRegistry(str(tmp_path / "missing.json"))
    assert registry.load_specs() == []


def test_log_replay_regenerates_identical_notification_stream():
    """The fleet's exactly-once foundation, in-process: replaying the same
    interleaved op log produces a byte-identical notification stream."""
    dispatcher_a, service_a = _service()
    log_entries = []
    try:
        for index, query in enumerate(STANDING_QUERIES[:3]):
            spec = {"query": query}
            if index % 2:
                spec["predicate"] = THRESHOLD
            document = service_a.subscribe(spec, persist=False)
            log_entries.append(
                {"kind": "subscribe", "subscription": {**spec, "id": document["id"]}}
            )
        for batch_index in range(4):
            facts = subscription_batch_facts(batch_index, batch_size=2, entities=ENTITIES)
            __, __, artifact = dispatcher_a.append_facts(facts)
            log_entries.append({"kind": "append", "facts": facts, "artifact": artifact})
        stream_a = service_a.notifications(limit=10000)["notifications"]
    finally:
        service_a.close()
        dispatcher_a.close()

    dispatcher_b, service_b = _service()
    try:
        for entry in log_entries:
            replay_entry(dispatcher_b, None, entry)
        stream_b = service_b.notifications(limit=10000)["notifications"]
    finally:
        service_b.close()
        dispatcher_b.close()

    assert stream_a, "the replayed run never fired a notification"
    assert json.dumps(stream_a, sort_keys=True) == json.dumps(stream_b, sort_keys=True)


def test_replay_subscription_entry_without_service_is_an_error():
    dispatcher = Dispatcher(_fresh_engine(), workers=1)
    try:
        with pytest.raises(ServingError):
            replay_entry(dispatcher, None, {"kind": "subscribe", "subscription": {}})
    finally:
        dispatcher.close()


# ------------------------------------------------------------- HTTP surface
@pytest.fixture(scope="module")
def server():
    server = ProbServer(_fresh_engine(), port=0, workers=2, max_queue=32).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def remote(server):
    return repro.connect_remote(server.url)


def test_http_subscribe_notify_unsubscribe_roundtrip(server, remote):
    document = remote.subscribe(STANDING_QUERIES[2], predicate=THRESHOLD)
    assert document["id"]
    assert document["predicate"] == dict(THRESHOLD)
    listing = remote.subscriptions()
    assert listing["active"] == 1

    head_before = remote.notifications()["head"]
    remote.append_facts(subscription_batch_facts(0, batch_size=1, entities=ENTITIES))
    batch = remote.notifications(since=head_before, wait_s=5.0)
    assert batch["notifications"], "threshold crossing must notify over HTTP"
    payload = batch["notifications"][0]
    assert payload["kind"] == "threshold"
    assert payload["subscription"] == document["id"]
    assert batch["next"] == payload["seq"]

    stats = remote.stats()["subscriptions"]
    assert stats["active"] == 1
    assert stats["notifications_total"] >= 1
    metrics = remote.metrics_text()
    assert "repro_subscriptions_active 1" in metrics
    assert "repro_notifications_total" in metrics

    assert remote.unsubscribe(document["id"])["removed"] is True
    assert remote.subscriptions()["active"] == 0
    with pytest.raises(ServingError):
        remote.unsubscribe(document["id"])


def test_http_notification_validation(remote):
    with pytest.raises(ServingError):
        remote.notifications(since=-1)
    with pytest.raises(ServingError):
        remote.subscribe("Q(x) :- Student(x, y)", predicate={"kind": "nope"})


# ------------------------------------------------------------ loadgen tagging
def test_load_report_headline_latency_stays_query_only():
    samples = [
        ("query", 200, 0.010, 2),
        ("sub", 200, 5.000, 0),
        ("notify", 200, 9.000, 0),
        ("append", 200, 7.000, 0),
    ]
    report = _summarize("subscriptions", 1.0, 1, None, samples)
    assert report.latency_ms["max_ms"] == pytest.approx(10.0)
    assert set(report.ops) == {"query", "sub", "notify", "append"}
    assert report.op_latency_ms["notify"]["max_ms"] == pytest.approx(9000.0)
    assert report.op_latency_ms["sub"]["count"] == 1
