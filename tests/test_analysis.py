"""Tests for query structural analysis: root variables, separators, inversion-freeness."""

from repro.obdd import find_separator, has_separator, is_inversion_free, root_variables
from repro.query import Variable, parse_query, parse_rule


class TestRootVariables:
    def test_root_variable_in_all_atoms(self):
        cq = parse_rule("Q :- R(x), S(x, y)")
        assert root_variables(cq) == {Variable("x")}

    def test_no_root_variable(self):
        cq = parse_rule("Q :- R(x), S(y, z)")
        assert root_variables(cq) == set()

    def test_deterministic_atoms_ignored(self):
        cq = parse_rule("Q :- R(x), D(y), S(x, z)")
        assert root_variables(cq, probabilistic={"R", "S"}) == {Variable("x")}


class TestSeparator:
    def test_single_cq_separator(self):
        query = parse_query("Q :- R(x), S(x, y)")
        separator = find_separator(query)
        assert separator == {0: Variable("x")}

    def test_ucq_separator_consistent_positions(self):
        # Example from Sect. 4.2: R(x1),S(x1,y1) ∨ T(x2),S(x2,y2): z is a separator.
        query = parse_query("Q :- R(x1), S(x1, y1)\nQ :- T(x2), S(x2, y2)")
        assert has_separator(query)

    def test_no_separator_when_positions_conflict(self):
        # R(x1),S(x1,y1) ∨ S(x2,y2),T(y2): the shared symbol S carries the root
        # variable on different positions — the classic non-separator example.
        query = parse_query("Q :- R(x1), S(x1, y1)\nQ :- S(x2, y2), T(y2)")
        assert find_separator(query) is None

    def test_separator_ignores_deterministic_relations(self):
        query = parse_query("Q :- R(x), Det(y, x), S(x, z)")
        assert has_separator(query, probabilistic={"R", "S"})


class TestInversionFree:
    def test_simple_hierarchical_query(self):
        assert is_inversion_free(parse_query("Q :- R(x), S(x, y)"))

    def test_union_with_separator(self):
        assert is_inversion_free(parse_query("Q :- R(x), S(x, y)\nQ :- T(x), S(x, y)"))

    def test_inversion_query_is_not_inversion_free(self):
        query = parse_query("Q :- R(x), S(x, y)\nQ :- S(x, y), T(y)")
        assert not is_inversion_free(query)

    def test_independent_union(self):
        assert is_inversion_free(parse_query("Q :- R(x)\nQ :- T(y), U(y, z)"))

    def test_single_atom(self):
        assert is_inversion_free(parse_query("Q :- R(x, y)"))

    def test_deterministic_only_query(self):
        assert is_inversion_free(parse_query("Q :- D(x)"), probabilistic=set())

    def test_markoview_w1_has_separator(self):
        """The translated W1 of Fig. 2: aid1 occurs in every probabilistic atom
        at a consistent position, so it is a separator variable (Sect. 5.4:
        "the MarkoViews have a separator")."""
        w1 = parse_query(
            "W :- NV1(aid1, aid2), Advisor(aid1, aid2), Student(aid1, year), "
            "Wrote(aid1, pid), Wrote(aid2, pid), Pub(pid, title, year)"
        )
        assert has_separator(w1, probabilistic={"NV1", "Advisor", "Student"})

    def test_denial_view_w2_is_inversion_free(self):
        """W2 (the denial view) only involves Advisor twice sharing aid1: it has a
        separator and is inversion-free, which is why Fig. 7 grows linearly."""
        w2 = parse_query("W :- Advisor(aid1, aid2), Advisor(aid1, aid3), aid2 <> aid3")
        assert has_separator(w2, probabilistic={"Advisor"})
