"""End-to-end tests of the MVQueryEngine: all methods agree with the MLN oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MVDB, MarkoView, parse_query
from repro.core.engine import MVQueryEngine
from repro.errors import InferenceError


def small_mvdb():
    """Two probabilistic relations, three MarkoViews (positive, negative, denial)."""
    mvdb = MVDB()
    mvdb.add_deterministic_table("Name", ["x", "n"], [(("a"), "Ann"), (("b"), "Bob")])
    mvdb.add_probabilistic_table(
        "R", ["x"], [(("a",), 1.0), (("b",), 0.5)]
    )
    mvdb.add_probabilistic_table(
        "S", ["x", "y"], [(("a", 1), 2.0), (("a", 2), 1.0), (("b", 1), 0.8)]
    )
    mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), 2.0))
    mvdb.add_markoview(MarkoView("V2", parse_query("V2(x, y) :- S(x, y)"), 0.5))
    return mvdb


class TestEngineCorrectness:
    @pytest.mark.parametrize("method", ["mvindex", "mvindex-mv", "obdd", "shannon"])
    def test_boolean_query_matches_oracle(self, method):
        mvdb = small_mvdb()
        engine = MVQueryEngine(mvdb)
        query = parse_query("Q :- R(x), S(x, y)")
        expected = mvdb.exact_query_probability(query)
        assert engine.boolean_probability(query, method=method) == pytest.approx(expected)

    @pytest.mark.parametrize("method", ["mvindex", "obdd", "shannon"])
    def test_non_boolean_query_matches_oracle(self, method):
        mvdb = small_mvdb()
        engine = MVQueryEngine(mvdb)
        query = parse_query("Q(x) :- R(x), S(x, y)")
        expected = mvdb.exact_answer_probabilities(query)
        actual = engine.query(query, method=method)
        assert set(actual) == set(expected)
        for answer in expected:
            assert actual[answer] == pytest.approx(expected[answer]), answer

    def test_query_with_deterministic_join_and_selection(self):
        mvdb = small_mvdb()
        engine = MVQueryEngine(mvdb)
        query = parse_query("Q(x) :- R(x), Name(x, n), n like '%Ann%'")
        expected = mvdb.exact_answer_probabilities(query)
        actual = engine.query(query)
        assert set(actual) == {("a",)}
        assert actual[("a",)] == pytest.approx(expected[("a",)])

    def test_denial_view(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 1.0)])
        mvdb.add_markoview(
            MarkoView("OnlyOne", parse_query("OnlyOne(x, y) :- R(x), R(y), x <> y"), 0.0)
        )
        engine = MVQueryEngine(mvdb)
        query = parse_query("Q :- R(x)")
        expected = mvdb.exact_query_probability(query)
        assert engine.boolean_probability(query) == pytest.approx(expected)
        # Under the denial constraint at most one tuple may be present:
        # worlds {}, {a}, {b} have weights 1, 1, 1 → P(Q) = 2/3.
        assert expected == pytest.approx(2.0 / 3.0)

    def test_engine_without_views_is_plain_indb(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 3.0)])
        engine = MVQueryEngine(mvdb)
        assert engine.w_lineage_size == 0
        assert engine.p0_w() == 0.0
        probability = engine.boolean_probability(parse_query("Q :- R(x)"))
        assert probability == pytest.approx(1 - 0.5 * 0.25)

    def test_answer_absent_from_query(self):
        engine = MVQueryEngine(small_mvdb())
        assert engine.boolean_probability(parse_query("Q :- R(x), S(x, 99)")) == 0.0

    def test_query_over_nv_relations_rejected(self):
        engine = MVQueryEngine(small_mvdb())
        with pytest.raises(InferenceError):
            engine.query(parse_query("Q :- NV_V1(x)"))

    def test_unknown_method_rejected(self):
        engine = MVQueryEngine(small_mvdb())
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            engine.query(parse_query("Q :- R(x)"), method="no-such-method")

    def test_incapable_method_rejected(self):
        # small_mvdb's V1 has weight 2 (> 1): the translation produces
        # negative weights, which the sampling method cannot draw from.
        engine = MVQueryEngine(small_mvdb())
        assert engine.has_nonstandard_probabilities
        with pytest.raises(InferenceError, match="negative tuple"):
            engine.query(parse_query("Q :- R(x)"), method="sampling")

    def test_boolean_probability_rejects_free_variables(self):
        engine = MVQueryEngine(small_mvdb())
        with pytest.raises(InferenceError, match="free head variables"):
            engine.boolean_probability(parse_query("Q(x) :- R(x)"))

    def test_index_not_built(self):
        engine = MVQueryEngine(small_mvdb(), build_index=False)
        query = parse_query("Q :- R(x), S(x, y)")
        with pytest.raises(InferenceError):
            engine.query(query, method="mvindex")
        expected = small_mvdb().exact_query_probability(query)
        assert engine.boolean_probability(query, method="shannon") == pytest.approx(expected)

    def test_p0_w_consistent_between_index_and_shannon(self):
        mvdb = small_mvdb()
        with_index = MVQueryEngine(mvdb, build_index=True)
        without_index = MVQueryEngine(mvdb, build_index=False)
        assert with_index.p0_w() == pytest.approx(without_index.p0_w())

    def test_probabilities_in_unit_interval(self):
        engine = MVQueryEngine(small_mvdb())
        for probability in engine.query(parse_query("Q(x, y) :- S(x, y)")).values():
            assert 0.0 <= probability <= 1.0


@st.composite
def random_mvdbs(draw):
    """Small random MVDBs with 2 relations and 1-2 MarkoViews of mixed sign."""
    r_size = draw(st.integers(min_value=1, max_value=3))
    s_size = draw(st.integers(min_value=1, max_value=4))
    weights = st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
    mvdb = MVDB()
    mvdb.add_probabilistic_table(
        "R", ["x"], [((f"a{i}",), draw(weights)) for i in range(r_size)]
    )
    s_rows = []
    for j in range(s_size):
        owner = draw(st.integers(min_value=0, max_value=r_size - 1))
        s_rows.append(((f"a{owner}", j), draw(weights)))
    mvdb.add_probabilistic_table("S", ["x", "y"], s_rows)
    view_weight = draw(st.sampled_from([0.0, 0.2, 0.5, 2.0, 5.0]))
    mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x, y)"), view_weight))
    if draw(st.booleans()):
        second_weight = draw(st.sampled_from([0.3, 1.0, 4.0]))
        mvdb.add_markoview(MarkoView("V2", parse_query("V2(x, y) :- S(x, y)"), second_weight))
    query = draw(
        st.sampled_from(
            ["Q :- R(x), S(x, y)", "Q :- S(x, y)", "Q(x) :- R(x), S(x, y)", "Q(x) :- R(x)"]
        )
    )
    return mvdb, query


class TestTheorem1Property:
    @given(random_mvdbs())
    @settings(max_examples=40, deadline=None)
    def test_all_methods_match_world_enumeration(self, case):
        mvdb, query_text = case
        query = parse_query(query_text)
        expected = mvdb.exact_answer_probabilities(query)
        engine = MVQueryEngine(mvdb)
        for method in ("mvindex", "obdd", "shannon"):
            actual = engine.query(query, method=method)
            for answer, value in expected.items():
                assert actual.get(answer, 0.0) == pytest.approx(value, abs=1e-9), (
                    method,
                    answer,
                )
