"""Differential test harness: memory vs. sqlite backends must agree exactly.

Each case builds the *same* seeded random tuple-independent instance on both
storage backends (identical insertion order, hence identical probabilistic
variable ids), runs the same seeded random CQ/UCQ workload on each, and
asserts that the two evaluations are indistinguishable:

* identical answer sets,
* identical canonical lineage DNFs (frozensets of int-variable clauses),
* bit-identical answer probabilities (compared via ``struct.pack`` so that
  even a 1-ulp divergence fails the test).

The harness runs ``INSTANCES_PER_RUN * QUERIES_PER_INSTANCE`` (>= 200)
instance/query pairs, which is the acceptance bar for the disk-backed
relational layer: any ordering or typing discrepancy introduced by the sqlite
backend (row order, value affinity, duplicate handling) shows up here as a
probability diff.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.db import SqliteBackend
from repro.indb import TupleIndependentDatabase, probability_to_weight
from repro.query import answer_probabilities, evaluate_ucq, parse_query

INSTANCES_PER_RUN = 20
QUERIES_PER_INSTANCE = 10

#: (name, column types, probabilistic?) — the relational signature every
#: random instance draws from.  ``int`` columns feed comparisons; the ``str``
#: columns exercise sqlite's text storage class and LIKE predicates.
SIGNATURE = (
    ("R", (int,), True),
    ("S", (int, int), True),
    ("T", (int, str), True),
    ("D", (int, int), False),
    ("E", (str,), False),
)

INT_DOMAIN = tuple(range(8))
STR_DOMAIN = ("alpha", "beta", "gamma", "delta", "epsilon")
VARIABLES = ("x", "y", "z", "w")
COMPARISON_OPS = ("<", "<=", ">", ">=", "!=")


# ------------------------------------------------------------------ instances
def instance_spec(seed: int) -> dict[str, list]:
    """A pure-data description of one random instance (backend-independent)."""
    rng = random.Random(seed)
    spec: dict[str, list] = {}
    for name, types, probabilistic in SIGNATURE:
        rows: list = []
        seen: set = set()
        for _ in range(rng.randint(3, 14)):
            row = tuple(
                rng.choice(INT_DOMAIN) if t is int else rng.choice(STR_DOMAIN)
                for t in types
            )
            if row in seen:
                continue
            seen.add(row)
            if probabilistic:
                rows.append((row, probability_to_weight(rng.uniform(0.05, 0.95))))
            else:
                rows.append(row)
        spec[name] = rows
    return spec


def load_instance(spec: dict[str, list], backend) -> TupleIndependentDatabase:
    """Materialise a spec on a backend, preserving exact insertion order."""
    indb = TupleIndependentDatabase(backend=backend)
    for name, types, probabilistic in SIGNATURE:
        attributes = [f"a{i}" for i in range(len(types))]
        if probabilistic:
            indb.add_probabilistic_table(name, attributes, spec[name])
        else:
            indb.add_deterministic_table(name, attributes, spec[name])
    return indb


# -------------------------------------------------------------------- queries
def _random_body(rng: random.Random) -> "tuple[list, list[str]]":
    """One random CQ body: ``(body parts, variables in first-use order)``.

    Parts are ``("atom", name, [terms])`` or ``("cmp", var, op, const)``;
    variable terms are bare names from VARIABLES, constants are rendered text.
    """
    atom_count = rng.randint(1, 3)
    parts: list = []
    var_types: dict[str, set] = {}
    order: list[str] = []
    for _ in range(atom_count):
        name, types, _ = SIGNATURE[rng.randrange(len(SIGNATURE))]
        terms = []
        for column_type in types:
            if rng.random() < 0.15:
                if column_type is int:
                    terms.append(str(rng.choice(INT_DOMAIN)))
                else:
                    terms.append(f"'{rng.choice(STR_DOMAIN)}'")
            else:
                variable = rng.choice(VARIABLES)
                terms.append(variable)
                var_types.setdefault(variable, set()).add(column_type)
                if variable not in order:
                    order.append(variable)
        parts.append(("atom", name, terms))

    int_vars = [v for v in order if var_types[v] == {int}]
    if int_vars and rng.random() < 0.4:
        variable = rng.choice(int_vars)
        op = rng.choice(COMPARISON_OPS)
        parts.append(("cmp", variable, op, str(rng.choice(INT_DOMAIN))))
    return parts, order


def _render(parts: list, head_vars: "list[str]", rename: "dict[str, str]") -> str:
    """Render one disjunct, applying a variable renaming to body and head."""

    def var(v: str) -> str:
        return rename.get(v, v)

    pieces = []
    for part in parts:
        if part[0] == "atom":
            _, name, terms = part
            rendered = [var(t) if t in VARIABLES else t for t in terms]
            pieces.append(f"{name}({', '.join(rendered)})")
        else:
            _, variable, op, const = part
            pieces.append(f"{var(variable)} {op} {const}")
    head = f"Q({', '.join(var(v) for v in head_vars)})" if head_vars else "Q"
    return f"{head} :- {', '.join(pieces)}"


def random_query(rng: random.Random) -> str:
    """A random CQ, or (35% of the time) a two-disjunct UCQ."""
    parts, order = _random_body(rng)
    arity = rng.randint(0, min(2, len(order)))
    head_vars = order[:arity]
    text = _render(parts, head_vars, {})
    if rng.random() < 0.35:
        other_parts, other_order = _random_body(rng)
        while len(other_order) < arity:
            other_parts, other_order = _random_body(rng)
        # Alpha-rename the second disjunct so its head variables carry the
        # same names as the first's (a UCQ invariant of the parser).
        rename = dict(zip(other_order[:arity], head_vars))
        spare_src = [v for v in VARIABLES if v not in rename]
        spare_dst = [v for v in VARIABLES if v not in rename.values()]
        rename.update(zip(spare_src, spare_dst))
        text = f"{text}\n{_render(other_parts, other_order[:arity], rename)}"
    return text


# ----------------------------------------------------------------- comparison
def canonical_dnfs(result) -> dict:
    """Answer -> canonical lineage clause set (absorption-normalised)."""
    return {answer: dnf.clauses for answer, dnf in result.lineages().items()}


def bits(probabilities: dict) -> dict:
    """Probabilities as raw IEEE-754 bytes: equality here is bit-identity."""
    return {
        answer: struct.pack("<d", value) for answer, value in probabilities.items()
    }


def run_differential_case(seed: int, build_budget: "int | None" = None) -> int:
    """One instance, QUERIES_PER_INSTANCE queries, both backends. Returns #pairs."""
    spec = instance_spec(seed)
    memory_indb = load_instance(spec, backend="memory")
    sqlite_indb = load_instance(spec, backend=SqliteBackend())
    try:
        assert memory_indb.probabilities() == sqlite_indb.probabilities()
        query_rng = random.Random(10_000 + seed)
        pairs = 0
        for _ in range(QUERIES_PER_INSTANCE):
            query = parse_query(random_query(query_rng))
            reference = evaluate_ucq(
                query, memory_indb.database, memory_indb, build_budget=build_budget
            )
            candidate = evaluate_ucq(
                query, sqlite_indb.database, sqlite_indb, build_budget=build_budget
            )
            assert set(reference.answers()) == set(candidate.answers())
            assert canonical_dnfs(reference) == canonical_dnfs(candidate)
            reference_probs = answer_probabilities(
                reference, memory_indb.probabilities()
            )
            candidate_probs = answer_probabilities(
                candidate, sqlite_indb.probabilities()
            )
            assert bits(reference_probs) == bits(candidate_probs)
            pairs += 1
        return pairs
    finally:
        sqlite_indb.database.close()


class TestDifferentialBackends:
    @pytest.mark.parametrize("seed", range(INSTANCES_PER_RUN))
    def test_seeded_instance_agrees_across_backends(self, seed):
        assert run_differential_case(seed) == QUERIES_PER_INSTANCE

    def test_run_covers_acceptance_bar(self):
        assert INSTANCES_PER_RUN * QUERIES_PER_INSTANCE >= 200

    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_grace_partition_path_agrees(self, seed):
        # A tiny build budget forces the hash join into its grace-partitioned
        # spill path on every atom; answers must still be bit-identical.
        assert run_differential_case(seed, build_budget=2) == QUERIES_PER_INSTANCE


class TestWorkloadIsNonTrivial:
    """Guard against the generator degenerating into all-empty results."""

    def test_some_queries_have_answers_and_probabilistic_lineage(self):
        answered = 0
        probabilistic = 0
        for seed in range(INSTANCES_PER_RUN):
            spec = instance_spec(seed)
            indb = load_instance(spec, backend="memory")
            query_rng = random.Random(10_000 + seed)
            for _ in range(QUERIES_PER_INSTANCE):
                query = parse_query(random_query(query_rng))
                result = evaluate_ucq(query, indb.database, indb)
                if len(result):
                    answered += 1
                    if any(
                        any(clause for clause in dnf.clauses)
                        for dnf in result.lineages().values()
                    ):
                        probabilistic += 1
        # Loose floors: the exact counts are seed-dependent, but a healthy
        # generator answers a large fraction and exercises real lineage.
        assert answered >= 50
        assert probabilistic >= 30
